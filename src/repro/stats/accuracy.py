"""Estimation-accuracy heuristics.

Remos attaches "a measure of estimation accuracy" to every dynamic value
(§4.4) — e.g. an average over few samples deserves less trust than one over
many.  The heuristic here combines sample count and relative variability;
both the exact shape and its parameters are implementation choices (the
paper prescribes the *existence* of the measure, not a formula).
"""

from __future__ import annotations

import math

try:  # numpy is the optional ``repro[fast]`` accelerator
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy smoke test
    np = None

from repro.stats.quartiles import percentiles


def sample_accuracy(values) -> float:
    """Accuracy in [0, 1] from sample count and coefficient of variation.

    * grows with the number of samples (saturating around ~30 samples,
      the usual small-sample threshold);
    * shrinks with relative dispersion (IQR/median), since a highly
      variable series pins down the "true" level less well.
    """
    if np is not None:
        values = np.asarray(values, dtype=float)
        n = values.size
        if n == 0:
            return 0.0
        count_term = 1.0 - np.exp(-n / 10.0)
        if n == 1:
            return float(0.5 * count_term)
        q1, median, q3 = np.percentile(values, [25, 50, 75])
    else:
        values = [float(v) for v in values]
        n = len(values)
        if n == 0:
            return 0.0
        count_term = 1.0 - math.exp(-n / 10.0)
        if n == 1:
            return float(0.5 * count_term)
        q1, median, q3 = percentiles(sorted(values), [25, 50, 75])
    scale = max(abs(median), 1e-12)
    dispersion = (q3 - q1) / scale
    dispersion_term = 1.0 / (1.0 + dispersion)
    return min(1.0, max(0.0, float(count_term * dispersion_term)))
