"""Statistical machinery behind Remos answers.

The paper (§4.4) requires every dynamic quantity to be reported as
"probabilistic quartile measures along with a measure of estimation
accuracy", because network measurements are variable, often bimodal, and
not normally distributed — quartiles are "the best choice for an unknown
data distribution" (Jain 1991).

* :class:`StatMeasure` — the five-number summary plus accuracy that
  annotates every dynamic quantity Remos returns;
* :class:`TimeSeries` — bounded (time, value) series kept per metric by the
  collectors;
* predictors — turn a historical series into an expectation of *future*
  behaviour for ``Timeframe.future(...)`` queries.
"""

from repro.stats.quartiles import StatMeasure
from repro.stats.series import TimeSeries
from repro.stats.predictors import (
    AutoPredictor,
    EWMAPredictor,
    HoltWintersPredictor,
    LastValuePredictor,
    Predictor,
    QuantileRegressionPredictor,
    SlidingMeanPredictor,
    known_predictors,
    make_predictor,
)
from repro.stats.accuracy import sample_accuracy
from repro.stats.forecast import Backtester, band_coverage, pinball_loss

__all__ = [
    "StatMeasure",
    "TimeSeries",
    "Predictor",
    "LastValuePredictor",
    "SlidingMeanPredictor",
    "EWMAPredictor",
    "HoltWintersPredictor",
    "QuantileRegressionPredictor",
    "AutoPredictor",
    "known_predictors",
    "make_predictor",
    "sample_accuracy",
    "Backtester",
    "band_coverage",
    "pinball_loss",
]
