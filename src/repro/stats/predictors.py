"""Future-timeframe predictors.

"Initial implementations may only support historical performance, or use a
simplistic model to predict future performance from current and historical
data" (§4.4).  These are exactly such simplistic models: each turns a
historical :class:`~repro.stats.series.TimeSeries` into a
:class:`~repro.stats.quartiles.StatMeasure` describing expected behaviour
over the next *horizon* seconds, with accuracy degraded to reflect that it
is a prediction.
"""

from __future__ import annotations

from typing import Protocol

from repro.stats.quartiles import StatMeasure
from repro.stats.series import TimeSeries
from repro.util.errors import ConfigurationError

# Predictions are inherently less trustworthy than measurements of the same
# window; every predictor multiplies its accuracy by this.
PREDICTION_DISCOUNT = 0.8


class Predictor(Protocol):
    """Turns history into an expectation of the next *horizon* seconds."""

    def predict(self, series: TimeSeries, now: float, horizon: float) -> StatMeasure:
        """Expected behaviour over [now, now + horizon]."""
        ...  # pragma: no cover


class LastValuePredictor:
    """Naive persistence: the future looks like the latest sample.

    Variability is borrowed from recent history so the quartiles are not
    falsely tight.
    """

    def __init__(self, history_window: float = 60.0):
        self.history_window = history_window

    def predict(self, series: TimeSeries, now: float, horizon: float) -> StatMeasure:
        if series.empty:
            raise ConfigurationError("cannot predict from an empty series")
        last = series.latest_value()
        recent = series.window(now - self.history_window, now)
        if recent.size >= 2:
            base = StatMeasure.from_samples(recent)
            shift = last - base.median
            return base.shifted(shift).degraded(PREDICTION_DISCOUNT)
        return StatMeasure.constant(last).degraded(0.5 * PREDICTION_DISCOUNT)


class SlidingMeanPredictor:
    """The future behaves like the quartiles of the recent window."""

    def __init__(self, history_window: float = 60.0):
        if history_window <= 0:
            raise ConfigurationError("history window must be positive")
        self.history_window = history_window

    def predict(self, series: TimeSeries, now: float, horizon: float) -> StatMeasure:
        recent = series.window(now - self.history_window, now)
        if recent.size == 0:
            raise ConfigurationError("no samples in prediction history window")
        return StatMeasure.from_samples(recent).degraded(PREDICTION_DISCOUNT)


class EWMAPredictor:
    """Exponentially-weighted mean as the centre, historical spread around it.

    ``alpha`` is the per-sample smoothing factor (higher = more reactive).
    """

    def __init__(self, alpha: float = 0.3, history_window: float = 120.0):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0,1], got {alpha}")
        self.alpha = alpha
        self.history_window = history_window

    def predict(self, series: TimeSeries, now: float, horizon: float) -> StatMeasure:
        recent = series.window(now - self.history_window, now)
        if recent.size == 0:
            raise ConfigurationError("no samples in prediction history window")
        smoothed = recent[0]
        for value in recent[1:]:
            smoothed = self.alpha * value + (1 - self.alpha) * smoothed
        base = StatMeasure.from_samples(recent)
        shift = float(smoothed) - base.median
        return base.shifted(shift).degraded(PREDICTION_DISCOUNT)


_PREDICTORS = {
    "last": LastValuePredictor,
    "mean": SlidingMeanPredictor,
    "ewma": EWMAPredictor,
}


def make_predictor(name: str = "ewma", **kwargs) -> Predictor:
    """Factory: ``"last"``, ``"mean"`` or ``"ewma"``."""
    try:
        factory = _PREDICTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown predictor {name!r}; expected one of {sorted(_PREDICTORS)}"
        ) from None
    return factory(**kwargs)
