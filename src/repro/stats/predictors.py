"""Future-timeframe predictors.

"Initial implementations may only support historical performance, or use a
simplistic model to predict future performance from current and historical
data" (§4.4).  These are exactly such simplistic models: each turns a
historical :class:`~repro.stats.series.TimeSeries` into a
:class:`~repro.stats.quartiles.StatMeasure` describing expected behaviour
over the next *horizon* seconds, with accuracy degraded to reflect that it
is a prediction.
"""

from __future__ import annotations

from typing import Protocol

from repro.stats.quartiles import StatMeasure
from repro.stats.series import TimeSeries
from repro.util.errors import ConfigurationError

# Predictions are inherently less trustworthy than measurements of the same
# window; every predictor multiplies its accuracy by this.
PREDICTION_DISCOUNT = 0.8


class Predictor(Protocol):
    """Turns history into an expectation of the next *horizon* seconds."""

    def predict(self, series: TimeSeries, now: float, horizon: float) -> StatMeasure:
        """Expected behaviour over [now, now + horizon]."""
        ...  # pragma: no cover


class LastValuePredictor:
    """Naive persistence: the future looks like the latest sample.

    Variability is borrowed from recent history so the quartiles are not
    falsely tight.
    """

    def __init__(self, history_window: float = 60.0):
        self.history_window = history_window

    def predict(self, series: TimeSeries, now: float, horizon: float) -> StatMeasure:
        if series.empty:
            raise ConfigurationError("cannot predict from an empty series")
        last = series.latest_value()
        recent = series.window(now - self.history_window, now)
        if recent.size >= 2:
            base = StatMeasure.from_samples(recent)
            shift = last - base.median
            return base.shifted(shift).degraded(PREDICTION_DISCOUNT)
        return StatMeasure.constant(last).degraded(0.5 * PREDICTION_DISCOUNT)


class SlidingMeanPredictor:
    """The future behaves like the quartiles of the recent window."""

    def __init__(self, history_window: float = 60.0):
        if history_window <= 0:
            raise ConfigurationError("history window must be positive")
        self.history_window = history_window

    def predict(self, series: TimeSeries, now: float, horizon: float) -> StatMeasure:
        recent = series.window(now - self.history_window, now)
        if recent.size == 0:
            raise ConfigurationError("no samples in prediction history window")
        return StatMeasure.from_samples(recent).degraded(PREDICTION_DISCOUNT)


class EWMAPredictor:
    """Exponentially-weighted mean as the centre, historical spread around it.

    ``alpha`` is the per-sample smoothing factor (higher = more reactive).
    """

    def __init__(self, alpha: float = 0.3, history_window: float = 120.0):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0,1], got {alpha}")
        self.alpha = alpha
        self.history_window = history_window

    def predict(self, series: TimeSeries, now: float, horizon: float) -> StatMeasure:
        recent = series.window(now - self.history_window, now)
        if recent.size == 0:
            raise ConfigurationError("no samples in prediction history window")
        smoothed = recent[0]
        for value in recent[1:]:
            smoothed = self.alpha * value + (1 - self.alpha) * smoothed
        base = StatMeasure.from_samples(recent)
        shift = float(smoothed) - base.median
        return base.shifted(shift).degraded(PREDICTION_DISCOUNT)


class HoltWintersPredictor:
    """Holt's linear smoothing: level + trend, projected over the horizon.

    The one model in the registry that can *extrapolate*: a steadily
    rising (or falling) series keeps rising in its forecast instead of
    snapping back to the recent mean.  ``alpha`` smooths the level,
    ``beta`` the trend; both are per-sample factors, and the trend is
    tracked per second of sample spacing so irregular polling does not
    skew the projection.  The historical spread is carried around the
    projected level (floored so no quartile goes negative — the predicted
    quantities are rates and utilizations).
    """

    def __init__(
        self, alpha: float = 0.5, beta: float = 0.3, history_window: float = 120.0
    ):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0,1], got {alpha}")
        if not 0.0 < beta <= 1.0:
            raise ConfigurationError(f"beta must be in (0,1], got {beta}")
        self.alpha = alpha
        self.beta = beta
        self.history_window = history_window

    def predict(self, series: TimeSeries, now: float, horizon: float) -> StatMeasure:
        since = now - self.history_window
        values = list(series.window(since, now))
        if not values:
            raise ConfigurationError("no samples in prediction history window")
        times = list(series.times(since, now))
        if len(values) < 3:
            last = values[-1]
            return StatMeasure.constant(last).degraded(0.5 * PREDICTION_DISCOUNT)
        level = values[0]
        trend = 0.0  # per second
        previous_t = times[0]
        for t, value in zip(times[1:], values[1:]):
            dt = max(t - previous_t, 1e-9)
            previous_t = t
            forecast = level + trend * dt
            new_level = self.alpha * value + (1 - self.alpha) * forecast
            new_trend = (
                self.beta * ((new_level - level) / dt) + (1 - self.beta) * trend
            )
            level, trend = new_level, new_trend
        # Centre the forecast on the middle of the predicted interval, so
        # the measure describes [now, now + horizon] rather than its edge.
        projected = level + trend * (now - previous_t + horizon / 2.0)
        base = StatMeasure.from_samples(values)
        shift = projected - base.median
        shift = max(shift, -base.minimum)  # rates never fall below zero
        return base.shifted(shift).degraded(PREDICTION_DISCOUNT)


class QuantileRegressionPredictor:
    """Robust linear quantile forecast over the quartile series.

    Fits one robust slope (Theil–Sen: the median of pairwise sample
    slopes) and projects the *residual* quantiles along it — each
    predicted quartile is the corresponding residual quantile translated
    to the middle of the forecast interval, a cheap stand-in for five
    independent pinball-loss fits that keeps the quartile ordering by
    construction.  Deliberately pure Python: at the bounded window sizes
    collectors retain, the pairwise-slope set is small (capped by
    ``max_fit_samples`` subsampling).
    """

    def __init__(self, history_window: float = 120.0, max_fit_samples: int = 40):
        if history_window <= 0:
            raise ConfigurationError("history window must be positive")
        if max_fit_samples < 3:
            raise ConfigurationError("max_fit_samples must be at least 3")
        self.history_window = history_window
        self.max_fit_samples = max_fit_samples

    def predict(self, series: TimeSeries, now: float, horizon: float) -> StatMeasure:
        since = now - self.history_window
        values = list(series.window(since, now))
        if not values:
            raise ConfigurationError("no samples in prediction history window")
        times = list(series.times(since, now))
        if len(values) < 3:
            last = values[-1]
            return StatMeasure.constant(last).degraded(0.5 * PREDICTION_DISCOUNT)
        if len(values) > self.max_fit_samples:
            step = len(values) / self.max_fit_samples
            picks = [int(i * step) for i in range(self.max_fit_samples)]
            fit_t = [times[i] for i in picks]
            fit_v = [values[i] for i in picks]
        else:
            fit_t, fit_v = times, values
        slopes = [
            (fit_v[j] - fit_v[i]) / (fit_t[j] - fit_t[i])
            for i in range(len(fit_v))
            for j in range(i + 1, len(fit_v))
            if fit_t[j] > fit_t[i]
        ]
        if not slopes:
            slope = 0.0
        else:
            slopes.sort()
            mid = len(slopes) // 2
            slope = (
                slopes[mid]
                if len(slopes) % 2
                else 0.5 * (slopes[mid - 1] + slopes[mid])
            )
        target = now + horizon / 2.0  # centre of the forecast interval
        residuals = sorted(v - slope * t for t, v in zip(times, values))
        from repro.stats.quartiles import percentiles

        quartiles = [
            max(0.0, r + slope * target)
            for r in percentiles(residuals, [0, 25, 50, 75, 100])
        ]
        mean = max(
            0.0, sum(residuals) / len(residuals) + slope * target
        )
        mean = min(max(mean, quartiles[0]), quartiles[4])
        from repro.stats.accuracy import sample_accuracy

        accuracy = sample_accuracy(values) * PREDICTION_DISCOUNT
        return StatMeasure.presorted(quartiles, mean, len(values), accuracy)


class AutoPredictor:
    """The ``"auto"`` registry entry: defer model choice to measured skill.

    The evaluation layer resolves ``"auto"`` per series through the
    :class:`~repro.stats.forecast.Backtester` (best measured pinball loss
    wins) before ever constructing a predictor; standalone users without a
    backtest record get the registry default's behaviour.
    """

    #: Models "auto" arbitrates between (each must be in the registry).
    CANDIDATES: tuple[str, ...] = ("last", "mean", "ewma", "holt", "quantile")

    #: The model used before any candidate has a measured record.
    DEFAULT = "ewma"

    def __init__(self, history_window: float = 120.0):
        self.history_window = history_window

    def predict(self, series: TimeSeries, now: float, horizon: float) -> StatMeasure:
        fallback = make_predictor(self.DEFAULT, history_window=self.history_window)
        return fallback.predict(series, now, horizon)


_PREDICTORS = {
    "last": LastValuePredictor,
    "mean": SlidingMeanPredictor,
    "ewma": EWMAPredictor,
    "holt": HoltWintersPredictor,
    "quantile": QuantileRegressionPredictor,
    "auto": AutoPredictor,
}


def known_predictors() -> frozenset:
    """Registered predictor names, for parse-time Timeframe validation."""
    return frozenset(_PREDICTORS)


def make_predictor(name: str = "ewma", **kwargs) -> Predictor:
    """Factory over the registry: ``"last"``, ``"mean"``, ``"ewma"``,
    ``"holt"``, ``"quantile"`` or ``"auto"``."""
    try:
        factory = _PREDICTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown predictor {name!r}; expected one of {sorted(_PREDICTORS)}"
        ) from None
    return factory(**kwargs)
