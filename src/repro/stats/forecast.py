"""Online backtesting: honest, measured accuracy for predictions.

The paper requires "a measure of estimation accuracy" on every dynamic
value (§4.4).  For FUTURE answers the original implementation attached a
fixed discount (``PREDICTION_DISCOUNT = 0.8``) — a prior, not a
measurement.  This module makes the accuracy *earned*: every prediction a
predictor makes is remembered, and once its horizon has elapsed it is
scored against the samples that actually landed in the predicted interval.

Two standard proper scores are used:

* **pinball (quantile) loss** — the canonical score for quantile
  forecasts, evaluated at the three inner quartile levels (0.25 → q1,
  0.5 → median, 0.75 → q3) and averaged over the realized samples;
* **quartile-band coverage** — the fraction of realized samples that fell
  inside the predicted [q1, q3] band (nominally 0.5; a band that covers
  much *less* is overconfident).

Scores are folded into per-``(series, predictor, horizon)`` exponential
moving averages by the :class:`Backtester`, which then answers two
questions for the evaluation layer:

* :meth:`Backtester.accuracy` — the measured accuracy to stamp on the next
  FUTURE answer from that cell (replacing the fixed discount once enough
  predictions have been settled);
* :meth:`Backtester.best` — which registered predictor currently scores
  the lowest normalized pinball loss for a cell, backing the ``"auto"``
  predictor.

Everything here is pure Python (no numpy dependency) and thread-safe: the
service's reader threads settle and record concurrently under one lock.
"""

from __future__ import annotations

import math
import threading
from typing import Hashable, Iterable, Sequence

from repro.stats.quartiles import StatMeasure

#: Inner quartile levels a StatMeasure commits to, with their attributes.
QUANTILE_LEVELS: tuple[tuple[float, str], ...] = (
    (0.25, "q1"),
    (0.50, "median"),
    (0.75, "q3"),
)

#: Settled predictions required before a cell's measured accuracy is
#: trusted over the predictor's built-in prior discount.
MIN_SETTLED = 3


def pinball_loss(measure: StatMeasure, realized: Iterable[float]) -> float:
    """Mean pinball loss of *measure*'s inner quartiles over *realized*.

    For quantile level ``q`` and prediction ``z`` the loss on outcome
    ``y`` is ``max(q * (y - z), (q - 1) * (y - z))`` — the piecewise
    linear score minimized in expectation by the true ``q``-quantile.
    Lower is better; 0 means every sample matched every quartile exactly.
    """
    values = [float(v) for v in realized]
    if not values:
        raise ValueError("pinball loss needs at least one realized sample")
    total = 0.0
    for y in values:
        for level, attr in QUANTILE_LEVELS:
            diff = y - getattr(measure, attr)
            total += max(level * diff, (level - 1.0) * diff)
    return total / (len(values) * len(QUANTILE_LEVELS))


def band_coverage(measure: StatMeasure, realized: Iterable[float]) -> float:
    """Fraction of *realized* samples inside the predicted [q1, q3] band."""
    values = [float(v) for v in realized]
    if not values:
        raise ValueError("band coverage needs at least one realized sample")
    hits = sum(1 for y in values if measure.q1 <= y <= measure.q3)
    return hits / len(values)


def score_accuracy(measure: StatMeasure, realized: Sequence[float]) -> float:
    """One settled prediction's accuracy in [0, 1].

    Combines a loss term (normalized pinball loss — scale-free, so links
    of very different capacities score comparably) with a coverage term
    that only penalizes *under*-coverage: a [q1, q3] band catching fewer
    than its nominal 50% of outcomes is overconfident, while a band that
    catches more is already paying for its width through the pinball loss.
    """
    values = sorted(float(v) for v in realized)
    loss = pinball_loss(measure, values)
    coverage = band_coverage(measure, values)
    mid = values[len(values) // 2]
    scale = max(abs(mid), max(abs(values[0]), abs(values[-1])) * 0.1, 1e-12)
    loss_term = 1.0 / (1.0 + loss / scale)
    coverage_term = min(1.0, coverage / 0.5)
    return max(0.0, min(1.0, loss_term * coverage_term))


class _Pending:
    """One outstanding prediction awaiting its horizon."""

    __slots__ = ("made_at", "horizon", "measure")

    def __init__(self, made_at: float, horizon: float, measure: StatMeasure):
        self.made_at = made_at
        self.horizon = horizon
        self.measure = measure


class _Cell:
    """Scores for one (series, predictor, horizon) combination."""

    __slots__ = ("pending", "settled", "loss_ewma", "coverage_ewma", "accuracy_ewma")

    def __init__(self):
        self.pending: list[_Pending] = []
        self.settled = 0
        self.loss_ewma: float | None = None  # normalized (scale-free)
        self.coverage_ewma: float | None = None
        self.accuracy_ewma: float | None = None


class Backtester:
    """Scores past predictions as their horizons mature.

    One instance is shared across every snapshot epoch of a facade (the
    Modeler passes it through :meth:`~repro.core.modeler.Modeler.fork`
    exactly like its :class:`~repro.core.cachestats.CacheStats`), so the
    accuracy record survives sweeps.  All methods are thread-safe.

    Parameters
    ----------
    alpha:
        EWMA weight for folding each newly settled score into the cell.
    min_settled:
        Settled predictions a cell needs before :meth:`accuracy` /
        :meth:`best` report it (fewer would let one lucky score dominate).
    max_pending:
        Outstanding predictions kept per cell; recording beyond it drops
        the oldest (bounded memory under pathological horizons).
    max_cells:
        Total cells kept; new cells beyond it are not tracked (bounded
        memory under adversarial query mixes).
    """

    def __init__(
        self,
        alpha: float = 0.3,
        min_settled: int = MIN_SETTLED,
        max_pending: int = 64,
        max_cells: int = 65536,
    ):
        self._alpha = alpha
        self._min_settled = min_settled
        self._max_pending = max_pending
        self._max_cells = max_cells
        self._cells: dict[tuple, _Cell] = {}
        self._by_series: dict[Hashable, set[tuple]] = {}
        self._lock = threading.Lock()
        self.recorded = 0
        self.settled = 0
        self.expired = 0

    @staticmethod
    def _horizon_bucket(horizon: float) -> float:
        """The scoring key a horizon falls in (exact, rounding float noise)."""
        return round(float(horizon), 6)

    def _cell(self, series_key: Hashable, predictor: str, horizon: float) -> _Cell | None:
        key = (series_key, predictor, self._horizon_bucket(horizon))
        cell = self._cells.get(key)
        if cell is None:
            if len(self._cells) >= self._max_cells:
                return None
            cell = self._cells[key] = _Cell()
            self._by_series.setdefault(series_key, set()).add(key)
        return cell

    def record(
        self,
        series_key: Hashable,
        predictor: str,
        horizon: float,
        made_at: float,
        measure: StatMeasure,
    ) -> None:
        """Remember a just-issued prediction for later scoring."""
        with self._lock:
            cell = self._cell(series_key, predictor, horizon)
            if cell is None:
                return
            if cell.pending and cell.pending[-1].made_at == made_at:
                return  # same epoch, same cell: already on file
            cell.pending.append(_Pending(made_at, horizon, measure))
            if len(cell.pending) > self._max_pending:
                del cell.pending[0]
            self.recorded += 1

    def settle(self, series_key: Hashable, series, now: float) -> int:
        """Score every matured prediction for *series_key* against *series*.

        *series* is any object exposing ``window(since, until)`` returning
        the realized samples (a :class:`~repro.stats.series.TimeSeries`).
        Matured predictions whose interval retained no samples are dropped
        (counted in :attr:`expired`) — there is nothing to score them on.
        Returns the number of predictions settled.
        """
        with self._lock:
            keys = self._by_series.get(series_key)
            if not keys:
                return 0
            settled = 0
            for key in keys:
                cell = self._cells[key]
                if not cell.pending:
                    continue
                remaining: list[_Pending] = []
                for pending in cell.pending:
                    if pending.made_at + pending.horizon > now:
                        remaining.append(pending)
                        continue
                    realized = series.window(
                        pending.made_at, pending.made_at + pending.horizon
                    )
                    if realized.size == 0:
                        self.expired += 1
                        continue
                    self._score(cell, pending.measure, list(realized))
                    settled += 1
                cell.pending = remaining
            self.settled += settled
            return settled

    def _score(self, cell: _Cell, measure: StatMeasure, realized: list[float]) -> None:
        values = sorted(float(v) for v in realized)
        loss = pinball_loss(measure, values)
        coverage = band_coverage(measure, values)
        accuracy = score_accuracy(measure, values)
        mid = values[len(values) // 2]
        scale = max(abs(mid), max(abs(values[0]), abs(values[-1])) * 0.1, 1e-12)
        nloss = loss / scale
        alpha = self._alpha
        if cell.settled == 0:
            cell.loss_ewma = nloss
            cell.coverage_ewma = coverage
            cell.accuracy_ewma = accuracy
        else:
            cell.loss_ewma = alpha * nloss + (1 - alpha) * cell.loss_ewma
            cell.coverage_ewma = alpha * coverage + (1 - alpha) * cell.coverage_ewma
            cell.accuracy_ewma = alpha * accuracy + (1 - alpha) * cell.accuracy_ewma
        cell.settled += 1

    def accuracy(
        self, series_key: Hashable, predictor: str, horizon: float
    ) -> float | None:
        """Measured accuracy for the cell, or None before enough evidence."""
        with self._lock:
            key = (series_key, predictor, self._horizon_bucket(horizon))
            cell = self._cells.get(key)
            if cell is None or cell.settled < self._min_settled:
                return None
            return cell.accuracy_ewma

    def best(
        self, series_key: Hashable, horizon: float, candidates: Iterable[str]
    ) -> str | None:
        """The candidate with the lowest measured pinball loss, if any.

        Only candidates with at least ``min_settled`` settled predictions
        for this (series, horizon) compete; None when none qualify yet —
        the caller falls back to its default predictor.
        """
        with self._lock:
            bucket = self._horizon_bucket(horizon)
            winner: str | None = None
            winner_loss = math.inf
            for name in candidates:
                cell = self._cells.get((series_key, name, bucket))
                if cell is None or cell.settled < self._min_settled:
                    continue
                if cell.loss_ewma is not None and cell.loss_ewma < winner_loss:
                    winner_loss = cell.loss_ewma
                    winner = name
            return winner

    def cell_report(
        self, series_key: Hashable, predictor: str, horizon: float
    ) -> dict | None:
        """One cell's scores as plain data (telemetry / tests)."""
        with self._lock:
            key = (series_key, predictor, self._horizon_bucket(horizon))
            cell = self._cells.get(key)
            if cell is None:
                return None
            return {
                "settled": cell.settled,
                "pending": len(cell.pending),
                "loss_ewma": cell.loss_ewma,
                "coverage_ewma": cell.coverage_ewma,
                "accuracy_ewma": cell.accuracy_ewma,
            }

    def to_dict(self) -> dict:
        """Aggregate counters for the telemetry report."""
        with self._lock:
            pending = sum(len(c.pending) for c in self._cells.values())
            scored = [
                c.accuracy_ewma
                for c in self._cells.values()
                if c.settled >= self._min_settled and c.accuracy_ewma is not None
            ]
            return {
                "cells": len(self._cells),
                "recorded": self.recorded,
                "settled": self.settled,
                "expired": self.expired,
                "pending": pending,
                "measured_cells": len(scored),
                "mean_measured_accuracy": (
                    sum(scored) / len(scored) if scored else None
                ),
            }
