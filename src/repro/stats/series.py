"""Bounded time series of measurements.

Collectors append (time, value) samples; the Modeler summarises windows of
them into :class:`~repro.stats.quartiles.StatMeasure`.  Storage is a ring
buffer so long-running collectors stay bounded.
"""

from __future__ import annotations

try:  # numpy is the optional ``repro[fast]`` accelerator
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy smoke test
    np = None

from repro.stats.quartiles import StatMeasure
from repro.util.errors import ConfigurationError
from repro.util.ringbuf import RingBuffer


class _FloatVector(list):
    """No-numpy stand-in for the 1-D arrays ``window()`` etc. return.

    Callers touch only ``.size``, ``.mean()``, iteration and indexing, so a
    thin list subclass keeps the scalar fallback API-compatible.
    """

    @property
    def size(self) -> int:
        return len(self)

    def mean(self) -> float:
        return sum(self) / len(self)


def _vector(data: "list[float]"):
    if np is not None:
        return np.array(data, dtype=float)
    return _FloatVector(data)


class TimeSeries:
    """Append-only (time, value) samples with window queries."""

    def __init__(self, capacity: int = 4096, name: str = ""):
        self.name = name
        self._buffer: RingBuffer[tuple[float, float]] = RingBuffer(capacity)
        self._last_time = -float("inf")
        self._version = 0
        self._frozen = False

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def version(self) -> int:
        """Samples ever appended (monotone; survives ring-buffer eviction).

        The Modeler stamps per-resource cache entries with this counter, so
        a cached estimate is valid exactly while the series it summarised
        has not grown.  Shared series objects (the collector master adopts
        child series by reference) carry one counter visible to every
        holder.
        """
        return self._version

    @property
    def empty(self) -> bool:
        """True if no samples recorded yet."""
        return len(self._buffer) == 0

    @property
    def frozen(self) -> bool:
        """True for immutable clones published inside a snapshot."""
        return self._frozen

    def frozen_clone(self) -> "TimeSeries":
        """An immutable copy with identical samples and version stamp.

        Published snapshots hold these: readers see exactly the data the
        writer assembled, and the live collector can keep appending to the
        source series without the snapshot ever observing it.  The version
        counter is preserved so cached estimates stamped against the source
        validate identically against the clone.
        """
        clone = TimeSeries.__new__(TimeSeries)
        clone.name = self.name
        clone._buffer = self._buffer.copy()
        clone._last_time = self._last_time
        clone._version = self._version
        clone._frozen = True
        return clone

    def add(self, time: float, value: float) -> None:
        """Append a sample; times must be non-decreasing."""
        if self._frozen:
            raise ConfigurationError(
                f"series {self.name!r} is frozen (published in a snapshot); "
                "append to the live collector series instead"
            )
        if time < self._last_time:
            raise ConfigurationError(
                f"series {self.name!r}: sample time {time} precedes {self._last_time}"
            )
        self._last_time = time
        self._version += 1
        self._buffer.append((time, float(value)))

    def latest(self) -> tuple[float, float]:
        """Most recent (time, value)."""
        if self.empty:
            raise ConfigurationError(f"series {self.name!r} is empty")
        return self._buffer.newest()

    def latest_value(self) -> float:
        """Most recent value."""
        return self.latest()[1]

    def window(self, since: float, until: float = float("inf")):
        """Values with ``since <= t <= until``, oldest first (may be empty)."""
        return _vector([v for t, v in self._buffer if since <= t <= until])

    def times(self, since: float = -float("inf"), until: float = float("inf")):
        """Sample times within the window, oldest first."""
        return _vector([t for t, _ in self._buffer if since <= t <= until])

    def values(self):
        """Every retained value, oldest first."""
        return _vector([v for _, v in self._buffer])

    def has_sample_in(self, since: float, before: float) -> bool:
        """True if any retained sample falls in the half-open ``[since, before)``.

        The Modeler's incremental cache asks this to decide whether moving a
        summary window forward in time changed its contents (samples ageing
        out of the old window live in exactly this interval).  Samples are
        stored oldest-first, so the scan stops at the first time >= *before*
        — O(aged-out prefix), not O(len).
        """
        for t, _ in self._buffer:
            if t >= before:
                return False
            if t >= since:
                return True
        return False

    def span(self) -> float:
        """Time covered by retained samples."""
        if len(self._buffer) < 2:
            return 0.0
        return self._buffer.newest()[0] - self._buffer.oldest()[0]

    def summarise(
        self, since: float, until: float = float("inf"), accuracy: float | None = None
    ) -> StatMeasure:
        """Quartile summary of the window (raises if the window is empty)."""
        values = self.window(since, until)
        if values.size == 0:
            raise ConfigurationError(
                f"series {self.name!r}: no samples in window [{since}, {until}]"
            )
        return StatMeasure.from_samples(values, accuracy=accuracy)

    def mean_over(self, since: float, until: float = float("inf")) -> float:
        """Arithmetic mean of the window (raises if empty)."""
        values = self.window(since, until)
        if values.size == 0:
            raise ConfigurationError(
                f"series {self.name!r}: no samples in window [{since}, {until}]"
            )
        return float(values.mean())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimeSeries {self.name!r} n={len(self)}>"
