"""Quartile-based statistical summaries.

A :class:`StatMeasure` is the unit in which Remos reports every dynamic
quantity: five quartiles (min, q1, median, q3, max), the mean (for
convenience), the sample count, and an *accuracy* in [0, 1] expressing how
much the estimate should be trusted (1 = invariant physical property,
lower = fewer/noisier samples or a prediction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable

try:  # numpy is the optional ``repro[fast]`` accelerator
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy smoke test
    np = None

from repro.util.errors import ConfigurationError


def percentiles(ordered: "list[float]", percents: Iterable[float]) -> list[float]:
    """Linear-interpolated percentiles of an already-sorted list.

    The pure-Python twin of ``np.percentile``'s default method, used when
    numpy is not installed.  Interpolation follows the same
    ``a + (b - a) * frac`` form so the two paths agree to rounding.
    """
    n = len(ordered)
    results = []
    for percent in percents:
        rank = (percent / 100.0) * (n - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        frac = rank - low
        results.append(ordered[low] + (ordered[high] - ordered[low]) * frac)
    return results


@dataclass(frozen=True)
class StatMeasure:
    """Five-number summary + accuracy for one network quantity."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    n_samples: int
    accuracy: float

    def __post_init__(self) -> None:
        ordered = (self.minimum, self.q1, self.median, self.q3, self.maximum)
        if any(b < a - 1e-9 * max(abs(a), 1.0) for a, b in zip(ordered, ordered[1:])):
            raise ConfigurationError(f"quartiles must be non-decreasing, got {ordered}")
        if not 0.0 <= self.accuracy <= 1.0:
            raise ConfigurationError(f"accuracy must be in [0,1], got {self.accuracy}")
        if self.n_samples < 0:
            raise ConfigurationError("n_samples must be non-negative")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_samples(
        cls, values: Iterable[float], accuracy: float | None = None
    ) -> "StatMeasure":
        """Summarise raw samples; accuracy defaults to a sample-count heuristic."""
        if np is not None:
            data = np.asarray(list(values), dtype=float)
            if data.size == 0:
                raise ConfigurationError("cannot summarise zero samples")
            quartiles = np.percentile(data, [0, 25, 50, 75, 100])
            mean = float(data.mean())
            count = int(data.size)
        else:
            data = [float(v) for v in values]
            if not data:
                raise ConfigurationError("cannot summarise zero samples")
            quartiles = percentiles(sorted(data), [0, 25, 50, 75, 100])
            mean = sum(data) / len(data)
            count = len(data)
        if accuracy is None:
            from repro.stats.accuracy import sample_accuracy

            accuracy = sample_accuracy(data)
        return cls(
            minimum=float(quartiles[0]),
            q1=float(quartiles[1]),
            median=float(quartiles[2]),
            q3=float(quartiles[3]),
            maximum=float(quartiles[4]),
            mean=mean,
            n_samples=count,
            accuracy=float(accuracy),
        )

    @classmethod
    def presorted(
        cls,
        quartiles: "tuple[float, float, float, float, float] | list[float]",
        mean: float,
        n_samples: int,
        accuracy: float,
    ) -> "StatMeasure":
        """Construct from an already-sorted five-number summary.

        Skips the ``__post_init__`` re-validation: with *quartiles* coming
        out of a sort the ordering invariant holds by construction (and
        NaN entries disable the tolerance comparison exactly as they do in
        the validating path), so this is behaviour-preserving.  The hot
        answer-assembly loop of the vectorized flow evaluator builds tens
        of thousands of these per batch.
        """
        if not 0.0 <= accuracy <= 1.0:
            raise ConfigurationError(f"accuracy must be in [0,1], got {accuracy}")
        self = object.__new__(cls)
        setattr_ = object.__setattr__
        setattr_(self, "minimum", quartiles[0])
        setattr_(self, "q1", quartiles[1])
        setattr_(self, "median", quartiles[2])
        setattr_(self, "q3", quartiles[3])
        setattr_(self, "maximum", quartiles[4])
        setattr_(self, "mean", mean)
        setattr_(self, "n_samples", n_samples)
        setattr_(self, "accuracy", accuracy)
        return self

    @classmethod
    def constant(cls, value: float) -> "StatMeasure":
        """A physically invariant quantity (link capacity): accuracy 1."""
        return cls(
            minimum=value,
            q1=value,
            median=value,
            q3=value,
            maximum=value,
            mean=value,
            n_samples=1,
            accuracy=1.0,
        )

    # -- derived quantities -----------------------------------------------------

    @property
    def iqr(self) -> float:
        """Interquartile range — the paper's preferred variability measure."""
        return self.q3 - self.q1

    @property
    def spread(self) -> float:
        """Full range max - min."""
        return self.maximum - self.minimum

    @property
    def is_constant(self) -> bool:
        """True when all quartiles coincide (no observed variability)."""
        return self.maximum == self.minimum

    # -- arithmetic ---------------------------------------------------------------

    def scaled(self, factor: float) -> "StatMeasure":
        """Multiply every quantile by *factor* (e.g. utilization -> bits/s)."""
        if factor < 0:
            # Negative scaling flips the ordering.
            return StatMeasure(
                minimum=self.maximum * factor,
                q1=self.q3 * factor,
                median=self.median * factor,
                q3=self.q1 * factor,
                maximum=self.minimum * factor,
                mean=self.mean * factor,
                n_samples=self.n_samples,
                accuracy=self.accuracy,
            )
        return replace(
            self,
            minimum=self.minimum * factor,
            q1=self.q1 * factor,
            median=self.median * factor,
            q3=self.q3 * factor,
            maximum=self.maximum * factor,
            mean=self.mean * factor,
        )

    def shifted(self, offset: float) -> "StatMeasure":
        """Add *offset* to every quantile (e.g. add a latency term)."""
        return replace(
            self,
            minimum=self.minimum + offset,
            q1=self.q1 + offset,
            median=self.median + offset,
            q3=self.q3 + offset,
            maximum=self.maximum + offset,
            mean=self.mean + offset,
        )

    def complement_of(self, total: float) -> "StatMeasure":
        """``total - self``, clamped at zero: turns *used* into *available*.

        Used-bandwidth quartiles map to available-bandwidth quartiles with
        the order reversed (heaviest use = least available).
        """
        clamp = lambda v: max(0.0, total - v)
        return StatMeasure(
            minimum=clamp(self.maximum),
            q1=clamp(self.q3),
            median=clamp(self.median),
            q3=clamp(self.q1),
            maximum=clamp(self.minimum),
            mean=clamp(self.mean),
            n_samples=self.n_samples,
            accuracy=self.accuracy,
        )

    def degraded(self, factor: float) -> "StatMeasure":
        """Copy with accuracy multiplied by *factor* (predictions, merges)."""
        if not 0.0 <= factor <= 1.0:
            raise ConfigurationError(f"degradation factor must be in [0,1], got {factor}")
        return replace(self, accuracy=self.accuracy * factor)

    @staticmethod
    def min_of(a: "StatMeasure", b: "StatMeasure") -> "StatMeasure":
        """Element-wise minimum: the bottleneck of two series resources.

        Exact distributional combination is unknowable from quartiles; the
        element-wise min is the standard conservative approximation when
        collapsing a chain of links into one logical link.
        """
        return StatMeasure(
            minimum=min(a.minimum, b.minimum),
            q1=min(a.q1, b.q1),
            median=min(a.median, b.median),
            q3=min(a.q3, b.q3),
            maximum=min(a.maximum, b.maximum),
            mean=min(a.mean, b.mean),
            n_samples=min(a.n_samples, b.n_samples),
            accuracy=min(a.accuracy, b.accuracy),
        )

    def to_dict(self) -> dict:
        """Plain-data form for JSON export."""
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "mean": self.mean,
            "n_samples": self.n_samples,
            "accuracy": self.accuracy,
        }

    def __str__(self) -> str:
        return (
            f"[{self.minimum:.3g} | {self.q1:.3g} | {self.median:.3g} | "
            f"{self.q3:.3g} | {self.maximum:.3g}] "
            f"(n={self.n_samples}, acc={self.accuracy:.2f})"
        )
