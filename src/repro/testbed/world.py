"""The World: everything needed to run an experiment, wired together."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collector import SNMPCollector
from repro.core import Remos
from repro.fx import FxRuntime
from repro.net import Topology
from repro.netsim import FluidNetwork
from repro.sim import Engine
from repro.snmp import SNMPAgent
from repro.util.errors import ConfigurationError


@dataclass
class World:
    """A simulated network plus its monitoring stack.

    Build one with :func:`repro.testbed.build_cmu_testbed` (or wire your
    own), then::

        remos = world.start_monitoring()   # fast-forwards until ready
        runtime = world.runtime()
    """

    env: Engine
    topology: Topology
    net: FluidNetwork
    agents: dict[str, SNMPAgent] = field(default_factory=dict)
    collector: SNMPCollector | None = None
    _remos: Remos | None = None

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        poll_interval: float = 2.0,
        agent_nodes: list[str] | None = None,
        monitor_hosts: bool = False,
    ) -> "World":
        """Build a world: fluid net + agents on routers + SNMP collector.

        ``monitor_hosts=True`` also runs agents on every compute node, so
        the collector picks up CPU-load counters (for node_info queries
        and compute-aware selection).
        """
        env = Engine()
        net = FluidNetwork(env, topology)
        if agent_nodes is not None:
            names = list(agent_nodes)
        else:
            names = [n.name for n in topology.network_nodes]
            if monitor_hosts:
                names += [n.name for n in topology.compute_nodes]
        agents = {name: SNMPAgent(name, net) for name in names}
        collector = SNMPCollector(net, agents, poll_interval=poll_interval)
        return cls(
            env=env, topology=topology, net=net, agents=agents, collector=collector
        )

    def start_monitoring(self, warmup: float = 0.0) -> Remos:
        """Start the collector, run until ready (+ warmup), return Remos."""
        if self.collector is None:
            raise ConfigurationError("world has no collector")
        if not self.collector.ready:
            ready = self.collector.start()
            self.env.run(until=ready)
        if warmup > 0:
            self.env.run(until=self.env.now + warmup)
        return self.make_remos()

    def make_remos(self) -> Remos:
        """The Remos instance bound to this world's collector."""
        if self._remos is None:
            if self.collector is None:
                raise ConfigurationError("world has no collector")
            self._remos = Remos(self.collector)
        return self._remos

    def runtime(self) -> FxRuntime:
        """A fresh Fx runtime over this world's network."""
        return FxRuntime(self.net)

    def settle(self, seconds: float) -> None:
        """Advance simulated time (let traffic and polling run)."""
        self.env.run(until=self.env.now + seconds)
