"""The example network of Figure 1.

"Nodes A and B are network nodes, and nodes 1-8 are compute nodes": hosts
1-4 on A, 5-8 on B, all access links 10 Mbps, a 100 Mbps link between A
and B.  The paper reads the figure twice:

* routers with ample internal bandwidth (>= 100 Mbps): the 10 Mbps access
  links bottleneck, so "all nodes can send and receive messages at up to
  10 Mbps simultaneously";
* routers with 10 Mbps internal bandwidth: the routers themselves
  bottleneck, capping the aggregate of nodes 1-4 (and 5-8) at 10 Mbps —
  equivalent to two shared 10 Mbps Ethernet segments joined by a fast
  link.
"""

from __future__ import annotations

from repro.net import Topology, TopologyBuilder

FIG1_HOSTS = [f"n{i}" for i in range(1, 9)]


def build_figure1_network(router_internal_bandwidth: float | str = float("inf")) -> Topology:
    """Fig. 1's network; the router crossbar capacity is the knob."""
    builder = (
        TopologyBuilder("figure-1")
        .router("A", internal_bandwidth=router_internal_bandwidth)
        .router("B", internal_bandwidth=router_internal_bandwidth)
    )
    for host in FIG1_HOSTS:
        builder.host(host)
    for i in range(1, 5):
        builder.link(f"n{i}", "A", "10Mbps", "0.1ms")
    for i in range(5, 9):
        builder.link(f"n{i}", "B", "10Mbps", "0.1ms")
    builder.link("A", "B", "100Mbps", "0.1ms")
    return builder.build()
