"""The CMU IP testbed of Figures 3 and 4.

Endpoints ``m-1`` .. ``m-8`` (DEC Alphas in the paper), routers ``aspen``,
``timberline`` and ``whiteface`` (Pentium Pro PCs running NetBSD), all
links 100 Mbps point-to-point Ethernet.

Host attachment follows Fig. 4's traffic route (``m-6 -> timberline ->
whiteface -> m-8``) and node-selection outcome (start ``m-4``, traffic on
the timberline-whiteface side, selected ``{m-1, m-2, m-4, m-5}``):

* aspen:      m-1, m-2, m-3
* timberline: m-4, m-5, m-6
* whiteface:  m-7, m-8
* backbone:   aspen -- timberline -- whiteface

Every compute node is reachable from every other within 3 router hops, as
the paper states.
"""

from __future__ import annotations

from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.net import TopologyBuilder
from repro.testbed.world import World
from repro.traffic import TrafficScenario, TrafficSpec

CMU_HOSTS = ["m-1", "m-2", "m-3", "m-4", "m-5", "m-6", "m-7", "m-8"]
CMU_ROUTERS = ["aspen", "timberline", "whiteface"]

_ATTACHMENT = {
    "aspen": ["m-1", "m-2", "m-3"],
    "timberline": ["m-4", "m-5", "m-6"],
    "whiteface": ["m-7", "m-8"],
}


def build_cmu_topology(calibration: Calibration = DEFAULT_CALIBRATION):
    """The raw topology (no simulation attached)."""
    builder = TopologyBuilder("cmu-testbed").defaults(
        capacity=calibration.link_capacity, latency=calibration.link_latency
    )
    for router in CMU_ROUTERS:
        builder.router(router)
    for router, hosts in _ATTACHMENT.items():
        for host in hosts:
            builder.host(
                host,
                compute_speed=calibration.alpha_flops,
                memory_bytes=calibration.host_memory_bytes,
            )
            builder.link(host, router)
    builder.link("aspen", "timberline")
    builder.link("timberline", "whiteface")
    return builder.build()


def build_cmu_testbed(
    calibration: Calibration = DEFAULT_CALIBRATION,
    poll_interval: float = 2.0,
    monitor_hosts: bool = False,
) -> World:
    """The testbed as a ready-to-run :class:`~repro.testbed.world.World`."""
    return World.from_topology(
        build_cmu_topology(calibration),
        poll_interval=poll_interval,
        monitor_hosts=monitor_hosts,
    )


def TRAFFIC_M6_M8(calibration: Calibration = DEFAULT_CALIBRATION) -> TrafficScenario:
    """Table 2's competing load: heavy synthetic traffic m-6 -> m-8.

    The route is m-6 -> timberline -> whiteface -> m-8 (Fig. 4), loading
    m-6's access link and the timberline-whiteface backbone link.
    """
    return TrafficScenario(
        "traffic(m-6,m-8)",
        [
            TrafficSpec(
                "m-6",
                "m-8",
                kind="cbr",
                rate=calibration.traffic_rate,
                weight=calibration.traffic_weight,
            )
        ],
    )


def interfering_traffic_1(calibration: Calibration = DEFAULT_CALIBRATION) -> TrafficScenario:
    """Table 3 'Interfering Traffic-1': load across the hosts the program
    starts on (timberline side)."""
    return TrafficScenario(
        "interfering-1",
        [
            TrafficSpec(
                "m-4",
                "m-7",
                kind="cbr",
                rate=calibration.traffic_rate,
                weight=calibration.traffic_weight,
            )
        ],
    )


def interfering_traffic_2(calibration: Calibration = DEFAULT_CALIBRATION) -> TrafficScenario:
    """Table 3 'Interfering Traffic-2': heavier interference — a
    bidirectional blast between m-4 and m-7 that loads *both* directions of
    the timberline-whiteface backbone plus both hosts' access links, so the
    fixed node set suffers on every cross-router flow while the aspen side
    (plus m-5, m-6) stays clean for the adaptive version to find."""
    return TrafficScenario(
        "interfering-2",
        [
            TrafficSpec(
                "m-4",
                "m-7",
                kind="cbr",
                rate=calibration.traffic_rate,
                weight=calibration.traffic_weight,
            ),
            TrafficSpec(
                "m-7",
                "m-4",
                kind="cbr",
                rate=calibration.traffic_rate,
                weight=calibration.traffic_weight,
            ),
        ],
    )


def non_interfering_traffic(calibration: Calibration = DEFAULT_CALIBRATION) -> TrafficScenario:
    """Table 3 'Non-interfering Traffic': load away from the start nodes.

    Traffic between m-1 and m-3 stays on aspen's access links.
    """
    return TrafficScenario(
        "non-interfering",
        [
            TrafficSpec(
                "m-1",
                "m-3",
                kind="cbr",
                rate=calibration.traffic_rate,
                weight=calibration.traffic_weight,
            )
        ],
    )
