"""The paper's networks, ready to simulate.

* :func:`build_cmu_testbed` — the dedicated IP testbed of Figs. 3/4:
  8 DEC Alpha endpoints ``m-1`` .. ``m-8`` behind three PC routers
  (``aspen``, ``timberline``, ``whiteface``) on 100 Mbps point-to-point
  Ethernet;
* :func:`build_figure1_network` — the 8-host, 2-router example of Fig. 1,
  parameterised by the routers' internal bandwidth (the knob the paper
  uses to move the bottleneck);
* :class:`World` — one bundle of engine + network + agents + collector +
  Remos + runtime, with a helper to fast-forward until monitoring is live.
"""

from repro.testbed.world import World
from repro.testbed.cmu import build_cmu_testbed, CMU_HOSTS, CMU_ROUTERS, TRAFFIC_M6_M8
from repro.testbed.figures import build_figure1_network

__all__ = [
    "World",
    "build_cmu_testbed",
    "build_figure1_network",
    "CMU_HOSTS",
    "CMU_ROUTERS",
    "TRAFFIC_M6_M8",
]
