"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro info
    python -m repro query --hosts m-1,m-4 --traffic m-6:m-8:90
    python -m repro select --start m-4 --nodes 4 --traffic m-6:m-8:90
    python -m repro table2 --rows "FFT (512)/2,Airshed/3"
    python -m repro table3

Everything runs the deterministic simulation; nothing touches a real
network.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs
from repro._version import __version__
from repro.adapt import select_nodes
from repro.bench import Table, format_seconds, percent_increase
from repro.bench.experiments import (
    TABLE3_SCENARIOS,
    run_adaptive,
    run_fixed,
    run_selected,
)
from repro.core import Flow, Timeframe
from repro.testbed import CMU_HOSTS, TRAFFIC_M6_M8, build_cmu_testbed
from repro.traffic import TrafficScenario, TrafficSpec
from repro.util import format_bandwidth
from repro.util.errors import ReproError

TABLE2_ROWS = {
    "FFT (512)/2": ("FFT (512)", 2, ["m-4", "m-6"]),
    "FFT (512)/4": ("FFT (512)", 4, ["m-4", "m-5", "m-6", "m-7"]),
    "FFT (1K)/2": ("FFT (1K)", 2, ["m-4", "m-6"]),
    "FFT (1K)/4": ("FFT (1K)", 4, ["m-4", "m-5", "m-6", "m-7"]),
    "Airshed/3": ("Airshed", 3, ["m-4", "m-5", "m-6"]),
    "Airshed/5": ("Airshed", 5, ["m-4", "m-5", "m-6", "m-7", "m-8"]),
}


def _parse_traffic(spec: str | None) -> TrafficScenario | None:
    """Parse ``src:dst:rateMbps`` (comma-separated for several streams)."""
    if not spec:
        return None
    streams = []
    for piece in spec.split(","):
        parts = piece.split(":")
        if len(parts) != 3:
            raise ReproError(f"traffic spec {piece!r} is not src:dst:rateMbps")
        src, dst, rate = parts
        streams.append(
            TrafficSpec(src, dst, kind="cbr", rate=float(rate) * 1e6, weight=1000.0)
        )
    return TrafficScenario("cli-traffic", streams)


def cmd_info(args) -> int:
    print(f"repro {__version__} — reproduction of Remos (HPDC 1998)")
    print("testbed hosts:", ", ".join(CMU_HOSTS))
    print("commands: info, query, select, serve, stats, table2, table3, top")
    return 0


def cmd_stats(args) -> int:
    """Run a warm query workload with observability on; report telemetry."""
    obs.configure_observability(
        metrics=True,
        tracing=True,
        logging=args.log,
        log_level="debug" if args.log else "info",
    )
    world = build_cmu_testbed(poll_interval=1.0)
    scenario = _parse_traffic(args.traffic)
    if scenario:
        scenario.start(world.net)
    remos = world.start_monitoring(warmup=args.warmup)
    hosts = args.hosts.split(",")
    if len(hosts) < 2:
        raise ReproError("--hosts needs at least two comma-separated hosts")
    flows = [
        Flow(src, dst, name=f"{src}->{dst}")
        for src in hosts
        for dst in hosts
        if src != dst
    ]
    timeframe = Timeframe.history(args.warmup)
    # First pass fills the generation-stamped caches; the rest are the warm
    # repeated queries an adapting application would issue.
    for _ in range(max(2, args.repeat)):
        remos.flow_info(variable_flows=flows, timeframe=timeframe)
        remos.get_graph(hosts, timeframe)

    telemetry = remos.telemetry()
    if args.json:
        print(json.dumps(telemetry, indent=2))
        return 0
    if args.prom:
        print(obs.get_registry().to_prometheus(), end="")
        return 0

    cache = telemetry["cache"]
    collector = telemetry["collector"] or {}
    view = telemetry["view"] or {}
    table = Table("repro stats — warm query telemetry", ["Metric", "Value"])
    table.add_row("queries answered", cache["queries"])
    table.add_row("mean query time", f"{cache['mean_query_time'] * 1e3:.3f} ms")
    table.add_row("cache hit rate", f"{cache['hit_rate']:.2%}")
    table.add_row("cache invalidations", cache["invalidations"])
    table.add_row("collector sweeps", collector.get("sweeps", "n/a"))
    table.add_row("view generation", view.get("generation", "n/a"))
    staleness = view.get("staleness_seconds")
    table.add_row(
        "view staleness", f"{staleness:.3f} s" if staleness is not None else "n/a"
    )
    stages = telemetry["metrics"].get(obs.STAGE_HISTOGRAM, {"series": []})
    for series in stages["series"]:
        summary = series["summary"]
        if summary is None:
            continue
        stage = series["labels"].get("stage", "?")
        table.add_row(
            f"stage {stage}",
            f"median {summary['median'] * 1e3:.3f} ms "
            f"(q1 {summary['q1'] * 1e3:.3f} / q3 {summary['q3'] * 1e3:.3f}, "
            f"n={series['count']})",
        )
    table.print()
    trace = obs.get_tracer().last_trace("query.flow_info")
    if trace is not None:
        print("\nlast flow_info trace:")
        print(trace.format_tree())
    return 0


def cmd_query(args) -> int:
    world = build_cmu_testbed(poll_interval=1.0)
    scenario = _parse_traffic(args.traffic)
    if scenario:
        scenario.start(world.net)
    remos = world.start_monitoring(warmup=args.warmup)
    hosts = args.hosts.split(",")
    if len(hosts) < 2:
        raise ReproError("--hosts needs at least two comma-separated hosts")
    flows = [
        Flow(src, dst, name=f"{src}->{dst}")
        for src in hosts
        for dst in hosts
        if src != dst
    ]
    result = remos.flow_info(
        variable_flows=flows, timeframe=Timeframe.history(args.warmup)
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    table = Table(
        f"simultaneous flow query among {args.hosts}",
        ["Flow", "median bw", "quartiles", "accuracy"],
    )
    for answer in result.variable:
        table.add_row(
            answer.label,
            format_bandwidth(answer.bandwidth.median),
            str(answer.bandwidth),
            f"{answer.bandwidth.accuracy:.2f}",
        )
    table.print()
    return 0


def cmd_select(args) -> int:
    world = build_cmu_testbed(poll_interval=1.0)
    scenario = _parse_traffic(args.traffic)
    if scenario:
        scenario.start(world.net)
    remos = world.start_monitoring(warmup=args.warmup)
    timeframe = Timeframe.static() if args.static else Timeframe.current()
    selection = select_nodes(
        remos, CMU_HOSTS, k=args.nodes, start=args.start, timeframe=timeframe
    )
    mode = "static capacities" if args.static else "dynamic measurements"
    if args.json:
        print(json.dumps({"mode": mode, "hosts": selection.hosts, "cost": selection.cost}))
        return 0
    print(f"selected ({mode}): {', '.join(selection.hosts)}")
    print(f"expected-communication cost: {selection.cost:.3e}")
    return 0


def cmd_table2(args) -> int:
    rows = args.rows.split(",") if args.rows else list(TABLE2_ROWS)
    table = Table(
        "Table 2 — node selection with external traffic m-6 -> m-8",
        ["Program", "Nodes", "Remos set", "t", "Static set", "t", "%inc"],
    )
    for row in rows:
        if row not in TABLE2_ROWS:
            raise ReproError(f"unknown row {row!r}; choose from {list(TABLE2_ROWS)}")
        program, k, static_hosts = TABLE2_ROWS[row]
        dynamic = run_selected(program, k=k, start="m-4", scenario=TRAFFIC_M6_M8())
        static = run_fixed(program, static_hosts, scenario=TRAFFIC_M6_M8())
        table.add_row(
            program, k,
            ",".join(dynamic.hosts), format_seconds(dynamic.elapsed),
            ",".join(static_hosts), format_seconds(static.elapsed),
            f"{percent_increase(dynamic.elapsed, static.elapsed):+.0f}%",
        )
    table.print()
    return 0


def cmd_table3(args) -> int:
    table = Table(
        "Table 3 — adaptive vs fixed Airshed (compiled for 8, run on 5)",
        ["Node set", "Pattern", "t", "migrations"],
    )
    start_hosts = ["m-4", "m-5", "m-6", "m-7", "m-8"]
    for mode in ("Fixed", "Adaptive"):
        for pattern, make_scenario in TABLE3_SCENARIOS.items():
            result = run_adaptive(
                scenario=make_scenario(),
                start_hosts=start_hosts,
                adaptive=(mode == "Adaptive"),
            )
            migrations = (
                result.adaptation.migrations if result.adaptation is not None else 0
            )
            table.add_row(mode, pattern, format_seconds(result.elapsed), migrations)
    table.print()
    return 0


def cmd_serve(args) -> int:
    """Run the concurrent query service over the testbed, fronted by HTTP.

    Three front doors share one application layer: the default asyncio
    event loop, ``--threaded`` (the legacy thread-per-connection server),
    and ``--workers N`` (N pre-forked asyncio processes on a shared
    socket; the parent keeps the single-writer sweeper and broadcasts
    each published epoch to the workers).
    """
    import threading
    import time as _time

    from repro.service import (
        MultiProcessServer,
        RemosService,
        serve_aio,
        serve_http,
    )

    if args.threaded and args.workers > 0:
        print("--threaded and --workers are mutually exclusive", file=sys.stderr)
        return 2
    if args.federation > 0 and args.workers > 0:
        # The multi-process front door replicates one cell's epochs; a
        # federation has per-shard publishers the replicas can't mirror yet.
        print("--federation and --workers are mutually exclusive", file=sys.stderr)
        return 2
    # Tracing is on by default so slow-query records carry full span trees;
    # the request path is instrumented anyway, and `repro serve` exists to
    # be observed.  --no-tracing restores the bare-metal path.
    obs.configure_observability(
        metrics=True, tracing=not args.no_tracing, logging=args.log, log_level="info"
    )
    front_end = dict(
        sweep_interval=args.sweep_interval,
        sim_step=args.sim_step,
        workers=args.threads,
        slow_query_threshold=args.slow_threshold,
        max_epoch_age=args.max_epoch_age,
        max_sweep_seconds=args.max_sweep_seconds,
        admission_mode=args.admission_mode,
        admission_threshold_qps=args.admission_threshold_qps,
        admission_horizon=args.admission_horizon,
        admission_retry_after=args.admission_retry_after,
    )
    if args.federation > 0:
        from repro.federation import FederationService, FederationWorld

        world = FederationWorld.build(
            poll_interval=args.poll_interval,
            shards=args.federation,
            leaves=args.fed_leaves,
            spines=args.fed_spines,
            hosts_per_leaf=args.fed_hosts_per_leaf,
        )
        service = FederationService(world, **front_end)
    else:
        world = build_cmu_testbed(poll_interval=args.poll_interval)
        service = RemosService.from_world(world, **front_end)
    scenario = _parse_traffic(args.traffic)
    if scenario:
        scenario.start(world.net)
    threaded_server = None
    if args.workers > 0:
        server = MultiProcessServer(
            service,
            host=args.host,
            port=args.port,
            workers=args.workers,
            warmup=args.warmup,
        ).start()
        address = server.address
        mode = f"{args.workers} worker processes"
    elif args.threaded:
        service.start(warmup=args.warmup)
        threaded_server = serve_http(service, host=args.host, port=args.port)
        threading.Thread(
            target=threaded_server.serve_forever, daemon=True
        ).start()
        server = threaded_server
        address = threaded_server.server_address
        mode = "threaded"
    else:
        service.start(warmup=args.warmup)
        server = serve_aio(service, host=args.host, port=args.port)
        address = server.address
        mode = "asyncio"
    print(
        f"remos service listening on http://{address[0]}:{address[1]} ({mode})"
    )
    print(
        "endpoints: /healthz /metrics /telemetry /graph?nodes=a,b /node/<host> "
        "POST /flow_info /debug/slow /debug/slo /debug/profile?seconds=N"
    )
    try:
        deadline = None if args.duration is None else _time.time() + args.duration
        while deadline is None or _time.time() < deadline:
            _time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        if threaded_server is not None:
            threaded_server.shutdown()
            threaded_server.server_close()
        else:
            server.stop()
        service.stop()
        print(
            f"served {service.remos.queries_answered} queries over "
            f"{service.sweeps} sweeps ({service.publishes} snapshots published)"
        )
    return 0


def _fetch(url: str, timeout: float) -> tuple[int, bytes]:
    """GET *url*, returning (status, body) — error statuses are data here."""
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        # /healthz answers 503 with a JSON body when degraded; that is a
        # reading, not a failure.
        return error.code, error.read()


def _top_snapshot(base: str, timeout: float) -> dict:
    """One poll of /healthz + /metrics + /debug/slow for the dashboard."""
    from repro.obs import promparse

    status, health_raw = _fetch(f"{base}/healthz", timeout)
    health = json.loads(health_raw.decode("utf-8"))
    _, metrics_raw = _fetch(f"{base}/metrics", timeout)
    families = promparse.parse(metrics_raw.decode("utf-8"))
    _, slow_raw = _fetch(f"{base}/debug/slow?limit=8", timeout)
    slow = json.loads(slow_raw.decode("utf-8"))

    def counter_sum(family_name: str, sample_name: str | None = None) -> float:
        family = families.get(family_name)
        if family is None:
            return 0.0
        wanted = sample_name or family_name
        return sum(v for name, _, v in family.samples if name == wanted)

    def quantiles(family_name: str) -> dict[str, dict[str, float]]:
        """Per-label-set quantile rows of a summary family."""
        family = families.get(family_name)
        rows: dict[str, dict[str, float]] = {}
        if family is None:
            return rows
        for name, labels, value in family.samples:
            key = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items()) if k != "quantile"
            )
            row = rows.setdefault(key, {})
            if name == family_name and "quantile" in labels:
                row[labels["quantile"]] = value
            elif name == f"{family_name}_count":
                row["count"] = value
        return rows

    def gauge(family_name: str, labels: dict | None = None) -> float | None:
        family = families.get(family_name)
        return None if family is None else family.value(labels)

    return {
        "health": health,
        "http_status": status,
        "queries_total": counter_sum("remos_query_seconds", "remos_query_seconds_count"),
        "sweeps_total": counter_sum("remos_service_sweeps_total"),
        "batches_total": counter_sum("remos_service_batches_total"),
        "epoch_age": gauge("remos_snapshot_age_seconds"),
        "hit_rate": gauge("remos_cache_hit_rate"),
        "query_latency": quantiles("remos_query_seconds"),
        "http_latency": quantiles("remos_http_request_seconds"),
        "budget": {
            labels.get("endpoint", "?"): value
            for _, labels, value in (
                families["remos_slo_error_budget_remaining"].samples
                if "remos_slo_error_budget_remaining" in families
                else []
            )
        },
        "slow": slow,
    }


def _render_top(base: str, snap: dict, previous: dict | None, elapsed: float) -> str:
    """One screenful of dashboard text from a `_top_snapshot` poll."""
    import time as _time

    health = snap["health"]
    lines = []
    age = snap["epoch_age"]
    if age is None:
        age = health.get("epoch_age_seconds")
    lines.append(
        f"remos top — {base} — {_time.strftime('%H:%M:%S')}   "
        f"health: {health.get('status', '?')} "
        f"(epoch {health.get('epoch', '?')}"
        + (f", age {age:.2f}s" if isinstance(age, (int, float)) else "")
        + ")"
    )
    for reason in health.get("reasons", []):
        lines.append(
            f"  !! {reason.get('monitor')}: {reason.get('reason', 'unhealthy')}"
            + (
                f" (reading {reason['reading']:.3g} > max {reason['maximum']:.3g})"
                if reason.get("reading") is not None
                else ""
            )
        )
    if previous is not None and elapsed > 0:
        qps = (snap["queries_total"] - previous["queries_total"]) / elapsed
        sps = (snap["sweeps_total"] - previous["sweeps_total"]) / elapsed
        rates = f"qps {qps:7.2f}   sweeps/s {sps:6.2f}"
    else:
        rates = "qps     n/a   sweeps/s    n/a   (first poll)"
    hit = snap["hit_rate"]
    lines.append(
        f"{rates}   queries {snap['queries_total']:.0f}   "
        f"batches {snap['batches_total']:.0f}"
        + (f"   cache hit {hit:.1%}" if hit is not None else "")
    )
    lines.append("")
    lines.append("query latency (s):          p50       p75       max     count")
    for key, row in sorted(snap["query_latency"].items()):
        label = key.split("=", 1)[-1] or "?"
        lines.append(
            f"  {label:<22}{row.get('0.5', 0.0):9.4f} {row.get('0.75', 0.0):9.4f} "
            f"{row.get('1', 0.0):9.4f} {row.get('count', 0):9.0f}"
        )
    if snap["http_latency"]:
        lines.append("http latency (s):           p50       p75       max     count")
        for key, row in sorted(snap["http_latency"].items()):
            label = key.split("=", 1)[-1] or "?"
            budget = snap["budget"].get(label)
            budget_text = f"   budget {budget:+.2f}" if budget is not None else ""
            lines.append(
                f"  {label:<22}{row.get('0.5', 0.0):9.4f} {row.get('0.75', 0.0):9.4f} "
                f"{row.get('1', 0.0):9.4f} {row.get('count', 0):9.0f}{budget_text}"
            )
    slow = snap["slow"]
    lines.append("")
    lines.append(
        f"slow queries (>{slow.get('threshold_seconds', 0):g}s, "
        f"{slow.get('recorded', 0)} recorded):"
    )
    for record in slow.get("records", [])[:8]:
        stamp = _time.strftime("%H:%M:%S", _time.localtime(record.get("ts", 0)))
        trace = record.get("trace_id") or "-"
        lines.append(
            f"  {stamp}  {record.get('endpoint', '?'):<10} "
            f"{record.get('duration', 0):7.3f}s  epoch {record.get('epoch', '?')}  "
            f"trace {trace[:16]}"
        )
    if not slow.get("records"):
        lines.append("  (none)")
    return "\n".join(lines)


def cmd_top(args) -> int:
    """Live one-screen ops dashboard over a running `repro serve`."""
    import time as _time

    base = args.url.rstrip("/")
    previous = None
    last_poll = _time.monotonic()
    iterations = 0
    try:
        while True:
            snap = _top_snapshot(base, args.timeout)
            now = _time.monotonic()
            text = _render_top(base, snap, previous, now - last_poll)
            previous, last_poll = snap, now
            if not args.no_clear and iterations > 0:
                print("\x1b[2J\x1b[H", end="")
            print(text)
            iterations += 1
            if args.iterations and iterations >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except OSError as error:
        raise ReproError(f"cannot reach {base}: {error}") from error


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Remos reproduction (HPDC 1998) experiment runner"
    )
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="package and testbed summary").set_defaults(
        func=cmd_info
    )

    query = subparsers.add_parser("query", help="simultaneous flow query on the testbed")
    query.add_argument("--hosts", required=True, help="comma-separated host list")
    query.add_argument("--traffic", help="competing traffic: src:dst:rateMbps[,...]")
    query.add_argument("--warmup", type=float, default=10.0, help="measurement time (s)")
    query.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    query.set_defaults(func=cmd_query)

    select = subparsers.add_parser("select", help="Remos-driven node selection")
    select.add_argument("--start", default="m-4", help="start node (default m-4)")
    select.add_argument("--nodes", type=int, default=4, help="cluster size")
    select.add_argument("--traffic", help="competing traffic: src:dst:rateMbps[,...]")
    select.add_argument("--static", action="store_true", help="ignore measurements")
    select.add_argument("--warmup", type=float, default=10.0)
    select.add_argument("--json", action="store_true", help="emit JSON instead of text")
    select.set_defaults(func=cmd_select)

    stats = subparsers.add_parser(
        "stats", help="run a warm query workload and report pipeline telemetry"
    )
    stats.add_argument(
        "--hosts", default=",".join(CMU_HOSTS), help="comma-separated host list"
    )
    stats.add_argument("--traffic", help="competing traffic: src:dst:rateMbps[,...]")
    stats.add_argument("--warmup", type=float, default=10.0, help="measurement time (s)")
    stats.add_argument(
        "--repeat", type=int, default=3, help="warm query repetitions (default 3)"
    )
    stats.add_argument("--json", action="store_true", help="emit the full telemetry JSON")
    stats.add_argument(
        "--prom", action="store_true", help="emit Prometheus text exposition format"
    )
    stats.add_argument(
        "--log", action="store_true", help="also enable structured debug logging"
    )
    stats.set_defaults(func=cmd_stats)

    serve = subparsers.add_parser(
        "serve", help="run the concurrent query service over HTTP"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080, help="bind port (0 = any free)")
    serve.add_argument(
        "--poll-interval", type=float, default=1.0, help="collector poll interval (sim s)"
    )
    serve.add_argument(
        "--sweep-interval",
        type=float,
        default=0.02,
        help="wall seconds between sweeper iterations",
    )
    serve.add_argument(
        "--sim-step", type=float, default=1.0, help="simulated seconds per sweep"
    )
    serve.add_argument("--warmup", type=float, default=10.0, help="measurement time (s)")
    serve.add_argument("--traffic", help="competing traffic: src:dst:rateMbps[,...]")
    serve.add_argument(
        "--threads", type=int, default=4, help="query thread-pool size per process"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="pre-forked worker processes on a shared socket (0 = single process)",
    )
    serve.add_argument(
        "--threaded",
        action="store_true",
        help="use the legacy thread-per-connection server instead of asyncio",
    )
    serve.add_argument(
        "--federation",
        type=int,
        default=0,
        help="serve a federated deployment of N shard cells instead of the "
        "single-cell testbed (0 = single cell)",
    )
    serve.add_argument(
        "--fed-leaves", type=int, default=2, help="leaf switches per shard region"
    )
    serve.add_argument(
        "--fed-spines", type=int, default=2, help="spine switches per shard region"
    )
    serve.add_argument(
        "--fed-hosts-per-leaf", type=int, default=4, help="hosts per leaf switch"
    )
    serve.add_argument(
        "--duration", type=float, default=None, help="auto-stop after N wall seconds"
    )
    serve.add_argument("--log", action="store_true", help="structured logging to stderr")
    serve.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable span tracing (slow-query records lose their span trees)",
    )
    serve.add_argument(
        "--slow-threshold",
        type=float,
        default=0.25,
        help="slow-query log threshold in seconds (0 records every query)",
    )
    serve.add_argument(
        "--max-epoch-age",
        type=float,
        default=10.0,
        help="freshness SLO: /healthz turns 503 when the epoch is older (s)",
    )
    serve.add_argument(
        "--max-sweep-seconds",
        type=float,
        default=5.0,
        help="freshness SLO: /healthz turns 503 when a sweep takes longer (s)",
    )
    serve.add_argument(
        "--admission-mode",
        choices=["off", "degrade", "shed"],
        default="off",
        help="predictive admission control: degrade FUTURE queries to "
        "CURRENT or shed with 503 + Retry-After under predicted overload",
    )
    serve.add_argument(
        "--admission-threshold-qps",
        type=float,
        default=200.0,
        help="predicted request rate (qps) above which admission kicks in",
    )
    serve.add_argument(
        "--admission-horizon",
        type=float,
        default=5.0,
        help="seconds ahead the admission controller forecasts its load",
    )
    serve.add_argument(
        "--admission-retry-after",
        type=float,
        default=1.0,
        help="Retry-After seconds suggested to shed callers",
    )
    serve.set_defaults(func=cmd_serve)

    top = subparsers.add_parser(
        "top", help="live one-screen dashboard over a running `repro serve`"
    )
    top.add_argument(
        "--url", default="http://127.0.0.1:8080", help="base URL of the service"
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after N polls (0 = run until interrupted)",
    )
    top.add_argument(
        "--timeout", type=float, default=5.0, help="per-request timeout (s)"
    )
    top.add_argument(
        "--no-clear", action="store_true", help="append screens instead of clearing"
    )
    top.set_defaults(func=cmd_top)

    table2 = subparsers.add_parser("table2", help="reproduce Table 2 rows")
    table2.add_argument("--rows", help=f"comma-separated from {list(TABLE2_ROWS)}")
    table2.set_defaults(func=cmd_table2)

    table3 = subparsers.add_parser("table3", help="reproduce Table 3")
    table3.set_defaults(func=cmd_table3)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point (also installed as ``python -m repro``)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
