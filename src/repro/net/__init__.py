"""Static network model: nodes, duplex links, topologies and routing.

This package knows nothing about time or traffic — it is the graph that the
fluid simulator (:mod:`repro.netsim`) animates and that the Remos Modeler
(:mod:`repro.core`) abstracts into logical topologies.

Terminology follows the paper: *compute nodes* (hosts) run applications and
terminate flows; *network nodes* (routers/switches) only forward.  Links are
full-duplex with independent per-direction capacity; network nodes may have a
finite internal (crossbar) bandwidth, which is how Fig. 1's "node internal
bandwidth of 10 Mbps" scenario is modelled.
"""

from repro.net.topology import Link, LinkDirection, Node, NodeKind, Topology
from repro.net.hierarchy import HierGroup, Hierarchy, HierarchyRefusal
from repro.net.routing import MulticastTree, Route, RoutingTable
from repro.net.builder import TopologyBuilder, fat_tree, leaf_spine, topology_from_spec

__all__ = [
    "Node",
    "NodeKind",
    "Link",
    "LinkDirection",
    "Topology",
    "Hierarchy",
    "HierarchyRefusal",
    "HierGroup",
    "Route",
    "MulticastTree",
    "RoutingTable",
    "TopologyBuilder",
    "topology_from_spec",
    "fat_tree",
    "leaf_spine",
]
