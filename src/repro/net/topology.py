"""Nodes, links and the Topology container.

Capacities are bits/second, latencies seconds, compute speeds flop/second —
see :mod:`repro.util.units`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

import networkx as nx

from repro.util.errors import TopologyError
from repro.util.units import parse_bandwidth, parse_time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.hierarchy import Hierarchy


class NodeKind(enum.Enum):
    """Role of a node in the network."""

    COMPUTE = "compute"
    NETWORK = "network"


@dataclass(frozen=True)
class Node:
    """A host (compute node) or router/switch (network node).

    Attributes
    ----------
    name:
        Unique identifier within a topology.
    kind:
        COMPUTE nodes terminate flows and run application processes;
        NETWORK nodes only forward.
    internal_bandwidth:
        Crossbar capacity in bits/second.  Every flow transiting (or
        terminating at) the node consumes its rate from this budget;
        ``inf`` means the node never bottlenecks (typical for hosts).
    compute_speed:
        Sustained computation rate in flop/second (compute nodes only);
        used by the Fx-like runtime to turn work into simulated seconds.
    memory_bytes:
        Physical memory; consulted for the paper's "minimum number of nodes
        to fit the data set" constraint.
    """

    name: str
    kind: NodeKind
    internal_bandwidth: float = float("inf")
    compute_speed: float = 1e8
    memory_bytes: float = 256e6

    @property
    def is_compute(self) -> bool:
        """True for hosts that can run application processes."""
        return self.kind is NodeKind.COMPUTE

    @property
    def is_network(self) -> bool:
        """True for routers/switches."""
        return self.kind is NodeKind.NETWORK

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Link:
    """A full-duplex physical link between two nodes.

    Each direction has the full *capacity* available independently (as in
    the testbed's point-to-point switched Ethernet).  ``LinkDirection``
    values identify one direction for routing and accounting.
    """

    name: str
    a: str
    b: str
    capacity: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"link {self.name!r} connects {self.a!r} to itself")
        if self.capacity <= 0:
            raise TopologyError(f"link {self.name!r} has non-positive capacity")
        if self.latency < 0:
            raise TopologyError(f"link {self.name!r} has negative latency")

    def endpoints(self) -> tuple[str, str]:
        """The two attached node names."""
        return (self.a, self.b)

    def other(self, node: str) -> str:
        """The endpoint opposite *node*."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"node {node!r} is not attached to link {self.name!r}")

    def direction(self, src: str, dst: str) -> "LinkDirection":
        """The directed view carrying traffic from *src* to *dst*."""
        if (src, dst) == (self.a, self.b) or (src, dst) == (self.b, self.a):
            return LinkDirection(self, src, dst)
        raise TopologyError(
            f"link {self.name!r} does not connect {src!r} to {dst!r}"
        )

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LinkDirection:
    """One direction of a duplex link; the unit of capacity accounting."""

    link: Link
    src: str
    dst: str

    @property
    def capacity(self) -> float:
        """Capacity of this direction in bits/second."""
        return self.link.capacity

    @property
    def latency(self) -> float:
        """Propagation latency of the underlying link in seconds."""
        return self.link.latency

    @property
    def key(self) -> tuple[str, str, str]:
        """Hashable identity: (link name, src, dst)."""
        return (self.link.name, self.src, self.dst)

    def reverse(self) -> "LinkDirection":
        """The opposite direction of the same link."""
        return LinkDirection(self.link, self.dst, self.src)

    def __str__(self) -> str:
        return f"{self.link.name}:{self.src}->{self.dst}"


@dataclass
class Topology:
    """A named collection of nodes and duplex links.

    The container validates structural invariants on every mutation (unique
    names, known endpoints).  Use :meth:`validate` for whole-graph checks
    (connectivity, compute nodes present).
    """

    name: str = "net"
    _nodes: dict[str, Node] = field(default_factory=dict)
    _links: dict[str, Link] = field(default_factory=dict)
    _adjacency: dict[str, list[str]] = field(default_factory=dict)
    #: Optional switch-group tree for hierarchical logical collapse (and
    #: the ECMP tie-break hint).  Structural advice only — never consulted
    #: by the container itself, so it does not participate in equality.
    hierarchy: "Hierarchy | None" = field(default=None, compare=False, repr=False)

    # -- construction --------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Insert *node*; names must be unique."""
        if node.name in self._nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._adjacency[node.name] = []
        return node

    def add_compute_node(
        self,
        name: str,
        compute_speed: float = 1e8,
        memory_bytes: float = 256e6,
        internal_bandwidth: float = float("inf"),
    ) -> Node:
        """Convenience constructor for a host."""
        return self.add_node(
            Node(
                name,
                NodeKind.COMPUTE,
                internal_bandwidth=internal_bandwidth,
                compute_speed=compute_speed,
                memory_bytes=memory_bytes,
            )
        )

    def add_network_node(
        self, name: str, internal_bandwidth: float = float("inf")
    ) -> Node:
        """Convenience constructor for a router/switch."""
        return self.add_node(
            Node(name, NodeKind.NETWORK, internal_bandwidth=internal_bandwidth)
        )

    def add_link(
        self,
        a: str,
        b: str,
        capacity: float | str,
        latency: float | str = 0.0,
        name: str | None = None,
    ) -> Link:
        """Connect nodes *a* and *b* with a duplex link.

        *capacity* and *latency* accept unit strings (``"100Mbps"``,
        ``"1ms"``) or raw floats (bits/second, seconds).
        """
        for endpoint in (a, b):
            if endpoint not in self._nodes:
                raise TopologyError(f"link endpoint {endpoint!r} is not a known node")
        link_name = name or f"{a}--{b}"
        if link_name in self._links:
            raise TopologyError(f"duplicate link name {link_name!r}")
        link = Link(
            link_name,
            a,
            b,
            capacity=parse_bandwidth(capacity),
            latency=parse_time(latency),
        )
        self._links[link_name] = link
        self._adjacency[a].append(link_name)
        self._adjacency[b].append(link_name)
        return link

    # -- lookups --------------------------------------------------------------

    def node(self, name: str) -> Node:
        """The node called *name* (raises TopologyError if unknown)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r} in topology {self.name!r}") from None

    def link(self, name: str) -> Link:
        """The link called *name* (raises TopologyError if unknown)."""
        try:
            return self._links[name]
        except KeyError:
            raise TopologyError(f"unknown link {name!r} in topology {self.name!r}") from None

    def has_node(self, name: str) -> bool:
        """True if a node called *name* exists."""
        return name in self._nodes

    @property
    def nodes(self) -> list[Node]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    @property
    def links(self) -> list[Link]:
        """All links in insertion order."""
        return list(self._links.values())

    @property
    def compute_nodes(self) -> list[Node]:
        """Hosts only."""
        return [n for n in self._nodes.values() if n.is_compute]

    @property
    def network_nodes(self) -> list[Node]:
        """Routers/switches only."""
        return [n for n in self._nodes.values() if n.is_network]

    def links_at(self, node: str) -> list[Link]:
        """Links attached to *node*, in attachment order.

        The attachment order doubles as the node's SNMP ``ifIndex`` order
        (1-based) in :mod:`repro.snmp`.
        """
        self.node(node)
        return [self._links[name] for name in self._adjacency[node]]

    def neighbors(self, node: str) -> list[str]:
        """Names of nodes directly linked to *node*."""
        return [link.other(node) for link in self.links_at(node)]

    def degree(self, node: str) -> int:
        """Number of links attached to *node*."""
        return len(self._adjacency[node])

    def iter_directions(self) -> Iterator[LinkDirection]:
        """Every directed link view (two per physical link)."""
        for link in self._links.values():
            yield LinkDirection(link, link.a, link.b)
            yield LinkDirection(link, link.b, link.a)

    # -- validation & export ---------------------------------------------------

    def validate(self, require_connected: bool = True) -> None:
        """Check whole-graph invariants, raising :class:`TopologyError`.

        * at least one compute node;
        * every compute node attached to something;
        * (optionally) the graph is connected.
        """
        if not self.compute_nodes:
            raise TopologyError(f"topology {self.name!r} has no compute nodes")
        for node in self.compute_nodes:
            if not self._adjacency[node.name]:
                raise TopologyError(f"compute node {node.name!r} is unconnected")
        if require_connected and len(self._nodes) > 1:
            graph = self.to_networkx()
            if not nx.is_connected(graph):
                components = sorted(len(c) for c in nx.connected_components(graph))
                raise TopologyError(
                    f"topology {self.name!r} is disconnected "
                    f"(component sizes: {components})"
                )

    def to_networkx(self) -> nx.Graph:
        """Export as a networkx Graph (multi-links collapse to best link).

        Edge attributes: ``capacity`` (max over parallel links), ``latency``
        (min), ``link`` (the Link chosen).  Node attribute: ``node`` (the
        Node object).
        """
        graph = nx.Graph()
        for node in self._nodes.values():
            graph.add_node(node.name, node=node)
        for link in self._links.values():
            if graph.has_edge(link.a, link.b):
                existing = graph.edges[link.a, link.b]
                if link.capacity > existing["capacity"]:
                    existing.update(capacity=link.capacity, latency=link.latency, link=link)
            else:
                graph.add_edge(
                    link.a, link.b, capacity=link.capacity, latency=link.latency, link=link
                )
        return graph

    def subset(self, node_names: Iterable[str]) -> "Topology":
        """A copy containing only *node_names* and the links among them."""
        keep = set(node_names)
        unknown = keep - set(self._nodes)
        if unknown:
            raise TopologyError(f"unknown nodes in subset: {sorted(unknown)}")
        sub = Topology(name=f"{self.name}-subset")
        for name, node in self._nodes.items():
            if name in keep:
                sub.add_node(node)
        for link in self._links.values():
            if link.a in keep and link.b in keep:
                sub.add_link(link.a, link.b, link.capacity, link.latency, name=link.name)
        return sub

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self.name!r}: {len(self._nodes)} nodes "
            f"({len(self.compute_nodes)} compute), {len(self._links)} links>"
        )
