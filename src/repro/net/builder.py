"""Fluent builder and dict-spec loader for topologies.

Two ways to construct a network:

1. The fluent builder::

       topo = (
           TopologyBuilder("lan")
           .router("sw1")
           .host("a").host("b")
           .link("a", "sw1", "100Mbps", "0.1ms")
           .link("b", "sw1", "100Mbps", "0.1ms")
           .build()
       )

2. A declarative dict (handy for experiment configs)::

       topo = topology_from_spec({
           "name": "lan",
           "hosts": ["a", "b"],
           "routers": ["sw1"],
           "links": [
               {"a": "a", "b": "sw1", "capacity": "100Mbps", "latency": "0.1ms"},
               {"a": "b", "b": "sw1", "capacity": "100Mbps", "latency": "0.1ms"},
           ],
       })
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.net.hierarchy import LEVEL_CORE, LEVEL_POD, LEVEL_TOR, HierGroup, Hierarchy
from repro.net.topology import Topology
from repro.util.errors import ConfigurationError


class TopologyBuilder:
    """Chainable construction of a :class:`~repro.net.topology.Topology`."""

    def __init__(self, name: str = "net"):
        self._topology = Topology(name=name)
        self._default_capacity: float | str = "100Mbps"
        self._default_latency: float | str = "0.1ms"
        self._built = False

    def defaults(
        self,
        capacity: float | str | None = None,
        latency: float | str | None = None,
    ) -> "TopologyBuilder":
        """Set defaults applied by :meth:`link` when values are omitted."""
        if capacity is not None:
            self._default_capacity = capacity
        if latency is not None:
            self._default_latency = latency
        return self

    def host(
        self,
        name: str,
        compute_speed: float = 1e8,
        memory_bytes: float = 256e6,
    ) -> "TopologyBuilder":
        """Add a compute node."""
        self._topology.add_compute_node(
            name, compute_speed=compute_speed, memory_bytes=memory_bytes
        )
        return self

    def hosts(self, names: Iterable[str], compute_speed: float = 1e8) -> "TopologyBuilder":
        """Add several identical compute nodes."""
        for name in names:
            self.host(name, compute_speed=compute_speed)
        return self

    def router(
        self, name: str, internal_bandwidth: float | str = float("inf")
    ) -> "TopologyBuilder":
        """Add a network node, optionally with finite crossbar bandwidth."""
        from repro.util.units import parse_bandwidth

        bandwidth = (
            float("inf")
            if internal_bandwidth == float("inf")
            else parse_bandwidth(internal_bandwidth)
        )
        self._topology.add_network_node(name, internal_bandwidth=bandwidth)
        return self

    def link(
        self,
        a: str,
        b: str,
        capacity: float | str | None = None,
        latency: float | str | None = None,
        name: str | None = None,
    ) -> "TopologyBuilder":
        """Connect two existing nodes (defaults from :meth:`defaults`)."""
        self._topology.add_link(
            a,
            b,
            capacity if capacity is not None else self._default_capacity,
            latency if latency is not None else self._default_latency,
            name=name,
        )
        return self

    def star(
        self,
        center: str,
        leaves: Iterable[str],
        capacity: float | str | None = None,
        latency: float | str | None = None,
    ) -> "TopologyBuilder":
        """Link every leaf to *center* (hosts/router must already exist)."""
        for leaf in leaves:
            self.link(leaf, center, capacity, latency)
        return self

    def build(self, validate: bool = True) -> Topology:
        """Finish and (by default) validate the topology."""
        if self._built:
            raise ConfigurationError("TopologyBuilder.build() called twice")
        self._built = True
        if validate:
            self._topology.validate()
        return self._topology


def fat_tree(
    k: int,
    *,
    host_capacity: float | str = "1Gbps",
    link_capacity: float | str = "10Gbps",
    host_latency: float | str = "5us",
    link_latency: float | str = "10us",
    compute_speed: float = 1e8,
    name: str | None = None,
) -> Topology:
    """A k-ary fat-tree (Al-Fares-style) with an attached hierarchy.

    *k* even: ``k`` pods of ``k/2`` edge and ``k/2`` aggregation switches,
    ``(k/2)^2`` core switches, ``k/2`` hosts per edge switch — ``k^3/4``
    hosts total (``k=8`` → 128, ``k=16`` → 1024, ``k=32`` → 8192).  Every
    edge switch uplinks to every aggregation switch in its pod; aggregation
    switch ``j`` uplinks to cores ``[j*k/2, (j+1)*k/2)``.  The attached
    :class:`~repro.net.hierarchy.Hierarchy` groups each pod's aggregation
    switches and the core tier, and selects the deterministic hash (ECMP)
    routing tie-break so equal-cost uplinks share load.
    """
    if k < 2 or k % 2:
        raise ConfigurationError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    builder = TopologyBuilder(name or f"fattree-k{k}")
    cores = [f"core{i}" for i in range(half * half)]
    for core in cores:
        builder.router(core)
    groups: list[HierGroup] = [HierGroup("core", LEVEL_CORE, tuple(cores), None)]
    host_group: dict[str, str] = {}
    for p in range(k):
        pod = f"pod{p}"
        aggs = [f"p{p}-a{j}" for j in range(half)]
        groups.append(HierGroup(pod, LEVEL_POD, tuple(aggs), "core"))
        for j, agg in enumerate(aggs):
            builder.router(agg)
            for core in cores[j * half : (j + 1) * half]:
                builder.link(agg, core, link_capacity, link_latency)
        for j in range(half):
            edge = f"p{p}-e{j}"
            builder.router(edge)
            groups.append(HierGroup(edge, LEVEL_TOR, (edge,), pod))
            for agg in aggs:
                builder.link(edge, agg, link_capacity, link_latency)
            for m in range(half):
                host = f"{edge}-h{m}"
                builder.host(host, compute_speed=compute_speed)
                builder.link(host, edge, host_capacity, host_latency)
                host_group[host] = edge
    topology = builder.build()
    topology.hierarchy = Hierarchy(groups, host_group, tie_break="hash")
    return topology


def leaf_spine(
    leaves: int,
    spines: int,
    hosts_per_leaf: int,
    *,
    host_capacity: float | str = "1Gbps",
    link_capacity: float | str = "10Gbps",
    host_latency: float | str = "5us",
    link_latency: float | str = "10us",
    compute_speed: float = 1e8,
    name: str | None = None,
) -> Topology:
    """A two-tier leaf-spine fabric with an attached hierarchy.

    Every leaf switch uplinks to every spine switch (*spines* equal-cost
    uplinks per leaf) and serves *hosts_per_leaf* hosts — ``leaves *
    hosts_per_leaf`` hosts total.  The attached hierarchy collapses the
    spine tier into one group and, as with :func:`fat_tree`, selects the
    hash (ECMP) routing tie-break.
    """
    if leaves < 1 or spines < 1 or hosts_per_leaf < 1:
        raise ConfigurationError(
            f"leaf_spine needs positive dimensions, got "
            f"{leaves}x{spines}x{hosts_per_leaf}"
        )
    builder = TopologyBuilder(name or f"leafspine-{leaves}x{spines}")
    spine_names = [f"spine{i}" for i in range(spines)]
    for spine in spine_names:
        builder.router(spine)
    groups: list[HierGroup] = [
        HierGroup("spine", LEVEL_POD, tuple(spine_names), None)
    ]
    host_group: dict[str, str] = {}
    for j in range(leaves):
        leaf = f"leaf{j}"
        builder.router(leaf)
        groups.append(HierGroup(leaf, LEVEL_TOR, (leaf,), "spine"))
        for spine in spine_names:
            builder.link(leaf, spine, link_capacity, link_latency)
        for m in range(hosts_per_leaf):
            host = f"{leaf}-h{m}"
            builder.host(host, compute_speed=compute_speed)
            builder.link(host, leaf, host_capacity, host_latency)
            host_group[host] = leaf
    topology = builder.build()
    topology.hierarchy = Hierarchy(groups, host_group, tie_break="hash")
    return topology


def topology_from_spec(spec: dict[str, Any]) -> Topology:
    """Build a topology from a declarative dict (see module docstring).

    Recognised keys: ``name``, ``hosts`` (list of names or
    ``{name, compute_speed, memory_bytes}`` dicts), ``routers`` (list of
    names or ``{name, internal_bandwidth}`` dicts), ``links`` (list of
    ``{a, b, capacity, latency, name}`` dicts).
    """
    unknown = set(spec) - {"name", "hosts", "routers", "links"}
    if unknown:
        raise ConfigurationError(f"unknown topology spec keys: {sorted(unknown)}")
    builder = TopologyBuilder(spec.get("name", "net"))
    for host in spec.get("hosts", []):
        if isinstance(host, str):
            builder.host(host)
        else:
            builder.host(
                host["name"],
                compute_speed=host.get("compute_speed", 1e8),
                memory_bytes=host.get("memory_bytes", 256e6),
            )
    for router in spec.get("routers", []):
        if isinstance(router, str):
            builder.router(router)
        else:
            builder.router(
                router["name"],
                internal_bandwidth=router.get("internal_bandwidth", float("inf")),
            )
    for link in spec.get("links", []):
        builder.link(
            link["a"],
            link["b"],
            link.get("capacity"),
            link.get("latency"),
            name=link.get("name"),
        )
    return builder.build()
