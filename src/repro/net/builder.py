"""Fluent builder and dict-spec loader for topologies.

Two ways to construct a network:

1. The fluent builder::

       topo = (
           TopologyBuilder("lan")
           .router("sw1")
           .host("a").host("b")
           .link("a", "sw1", "100Mbps", "0.1ms")
           .link("b", "sw1", "100Mbps", "0.1ms")
           .build()
       )

2. A declarative dict (handy for experiment configs)::

       topo = topology_from_spec({
           "name": "lan",
           "hosts": ["a", "b"],
           "routers": ["sw1"],
           "links": [
               {"a": "a", "b": "sw1", "capacity": "100Mbps", "latency": "0.1ms"},
               {"a": "b", "b": "sw1", "capacity": "100Mbps", "latency": "0.1ms"},
           ],
       })
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.net.topology import Topology
from repro.util.errors import ConfigurationError


class TopologyBuilder:
    """Chainable construction of a :class:`~repro.net.topology.Topology`."""

    def __init__(self, name: str = "net"):
        self._topology = Topology(name=name)
        self._default_capacity: float | str = "100Mbps"
        self._default_latency: float | str = "0.1ms"
        self._built = False

    def defaults(
        self,
        capacity: float | str | None = None,
        latency: float | str | None = None,
    ) -> "TopologyBuilder":
        """Set defaults applied by :meth:`link` when values are omitted."""
        if capacity is not None:
            self._default_capacity = capacity
        if latency is not None:
            self._default_latency = latency
        return self

    def host(
        self,
        name: str,
        compute_speed: float = 1e8,
        memory_bytes: float = 256e6,
    ) -> "TopologyBuilder":
        """Add a compute node."""
        self._topology.add_compute_node(
            name, compute_speed=compute_speed, memory_bytes=memory_bytes
        )
        return self

    def hosts(self, names: Iterable[str], compute_speed: float = 1e8) -> "TopologyBuilder":
        """Add several identical compute nodes."""
        for name in names:
            self.host(name, compute_speed=compute_speed)
        return self

    def router(
        self, name: str, internal_bandwidth: float | str = float("inf")
    ) -> "TopologyBuilder":
        """Add a network node, optionally with finite crossbar bandwidth."""
        from repro.util.units import parse_bandwidth

        bandwidth = (
            float("inf")
            if internal_bandwidth == float("inf")
            else parse_bandwidth(internal_bandwidth)
        )
        self._topology.add_network_node(name, internal_bandwidth=bandwidth)
        return self

    def link(
        self,
        a: str,
        b: str,
        capacity: float | str | None = None,
        latency: float | str | None = None,
        name: str | None = None,
    ) -> "TopologyBuilder":
        """Connect two existing nodes (defaults from :meth:`defaults`)."""
        self._topology.add_link(
            a,
            b,
            capacity if capacity is not None else self._default_capacity,
            latency if latency is not None else self._default_latency,
            name=name,
        )
        return self

    def star(
        self,
        center: str,
        leaves: Iterable[str],
        capacity: float | str | None = None,
        latency: float | str | None = None,
    ) -> "TopologyBuilder":
        """Link every leaf to *center* (hosts/router must already exist)."""
        for leaf in leaves:
            self.link(leaf, center, capacity, latency)
        return self

    def build(self, validate: bool = True) -> Topology:
        """Finish and (by default) validate the topology."""
        if self._built:
            raise ConfigurationError("TopologyBuilder.build() called twice")
        self._built = True
        if validate:
            self._topology.validate()
        return self._topology


def topology_from_spec(spec: dict[str, Any]) -> Topology:
    """Build a topology from a declarative dict (see module docstring).

    Recognised keys: ``name``, ``hosts`` (list of names or
    ``{name, compute_speed, memory_bytes}`` dicts), ``routers`` (list of
    names or ``{name, internal_bandwidth}`` dicts), ``links`` (list of
    ``{a, b, capacity, latency, name}`` dicts).
    """
    unknown = set(spec) - {"name", "hosts", "routers", "links"}
    if unknown:
        raise ConfigurationError(f"unknown topology spec keys: {sorted(unknown)}")
    builder = TopologyBuilder(spec.get("name", "net"))
    for host in spec.get("hosts", []):
        if isinstance(host, str):
            builder.host(host)
        else:
            builder.host(
                host["name"],
                compute_speed=host.get("compute_speed", 1e8),
                memory_bytes=host.get("memory_bytes", 256e6),
            )
    for router in spec.get("routers", []):
        if isinstance(router, str):
            builder.router(router)
        else:
            builder.router(
                router["name"],
                internal_bandwidth=router.get("internal_bandwidth", float("inf")),
            )
    for link in spec.get("links", []):
        builder.link(
            link["a"],
            link["b"],
            link.get("capacity"),
            link.get("latency"),
            name=link.get("name"),
        )
    return builder.build()
