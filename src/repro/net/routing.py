"""Static shortest-path routing over a Topology.

The testbed (and 1990s IP networks generally) used static shortest-path
routes, so the routing table is computed once per topology: Dijkstra with a
configurable edge weight (default: latency, with hop count as tie-break so
equal-latency networks route by hops).  Routes are deterministic — ties are
broken by lexicographic node order — which keeps experiments reproducible.

A :class:`Route` records both the directed links traversed and the transit
nodes, because fair-share allocation charges a flow against every directed
link *and* every node crossbar on its path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.net.topology import Link, LinkDirection, Topology
from repro.util.errors import TopologyError


@dataclass(frozen=True)
class Route:
    """An ordered path through the network from ``src`` to ``dst``."""

    src: str
    dst: str
    hops: tuple[LinkDirection, ...]

    @property
    def node_sequence(self) -> tuple[str, ...]:
        """All nodes visited, endpoints included."""
        if not self.hops:
            return (self.src,)
        return (self.hops[0].src,) + tuple(hop.dst for hop in self.hops)

    @property
    def transit_nodes(self) -> tuple[str, ...]:
        """Nodes traversed excluding the endpoints (the forwarders)."""
        return self.node_sequence[1:-1]

    @property
    def links(self) -> tuple[Link, ...]:
        """The physical links traversed."""
        return tuple(hop.link for hop in self.hops)

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return len(self.hops)

    @property
    def latency(self) -> float:
        """Total propagation latency along the path, in seconds."""
        return sum(hop.latency for hop in self.hops)

    @property
    def capacity(self) -> float:
        """Minimum link capacity along the path (static bottleneck)."""
        if not self.hops:
            return float("inf")
        return min(hop.capacity for hop in self.hops)

    def uses_link(self, link_name: str) -> bool:
        """True if the route traverses the named link (either direction)."""
        return any(hop.link.name == link_name for hop in self.hops)

    def __str__(self) -> str:
        return " -> ".join(self.node_sequence)


@dataclass(frozen=True)
class MulticastTree:
    """A source-rooted distribution tree (union of unicast routes).

    The paper lists multicast as a desirable extension (§4.5); the tree is
    the natural object: each directed link appears **once** no matter how
    many receivers sit behind it, which is exactly the capacity-saving
    that makes multicast interesting to a bandwidth query interface.
    """

    src: str
    dsts: tuple[str, ...]
    hops: tuple[LinkDirection, ...]
    """Every directed link in the tree, deduplicated, in discovery order."""
    latencies: "tuple[tuple[str, float], ...]"
    """Per-receiver (dst, path latency) pairs."""

    @property
    def nodes(self) -> tuple[str, ...]:
        """Every node touched by the tree (source, forwarders, receivers)."""
        seen: dict[str, None] = {self.src: None}
        for hop in self.hops:
            seen.setdefault(hop.src, None)
            seen.setdefault(hop.dst, None)
        return tuple(seen)

    @property
    def max_latency(self) -> float:
        """Worst-case receiver latency (delivery completes at this offset)."""
        if not self.latencies:
            return 0.0
        return max(latency for _, latency in self.latencies)

    @property
    def capacity(self) -> float:
        """Minimum link capacity anywhere in the tree."""
        if not self.hops:
            return float("inf")
        return min(hop.capacity for hop in self.hops)

    def latency_to(self, dst: str) -> float:
        """Path latency from the source to *dst*."""
        for receiver, latency in self.latencies:
            if receiver == dst:
                return latency
        raise TopologyError(f"{dst!r} is not a receiver of this tree")


class RoutingTable:
    """All-pairs deterministic shortest-path routes for a topology.

    Parameters
    ----------
    topology:
        The network to route over.
    weight:
        ``"latency"`` (default) weights each link by its latency and breaks
        ties by hop count; ``"hops"`` uses pure hop count.
    """

    def __init__(self, topology: Topology, weight: str = "latency"):
        if weight not in ("latency", "hops"):
            raise TopologyError(f"unknown routing weight {weight!r}")
        self.topology = topology
        self.weight = weight
        self._next_hop: dict[str, dict[str, LinkDirection]] = {}
        self._route_cache: dict[tuple[str, str], Route] = {}
        self._build()

    def _edge_cost(self, link: Link) -> float:
        if self.weight == "hops":
            return 1.0
        # Latency plus a small per-hop epsilon so zero-latency networks
        # still prefer fewer hops, deterministically.
        return link.latency + 1e-9

    def _build(self) -> None:
        with obs.span("routing.build") as sp:
            self._build_tables()
            if sp:
                sp.set(
                    nodes=len(self.topology._nodes),
                    links=len(self.topology.links),
                    weight=self.weight,
                )
        obs.inc(
            "remos_routing_builds_total",
            help="All-pairs routing table constructions",
        )

    def _build_tables(self) -> None:
        # Dijkstra from every node.  Topologies here are small (tens to a
        # few hundred nodes); clarity beats asymptotics.
        import heapq

        topo = self.topology
        for source in topo._nodes:
            first_hop: dict[str, LinkDirection] = {}
            dist: dict[str, float] = {source: 0.0}
            # Heap entries carry the candidate first hop; ties are broken by
            # (hop count, lexicographic node path) so routing is deterministic.
            # Entries: (cost, hop_count, path, node, first_hop_or_None)
            heap: list[tuple[float, int, tuple[str, ...], str, LinkDirection | None]] = [
                (0.0, 0, (source,), source, None)
            ]
            settled: set[str] = set()
            while heap:
                cost, hops, path, node, hop = heapq.heappop(heap)
                if node in settled:
                    continue
                settled.add(node)
                if hop is not None:
                    first_hop[node] = hop
                for link in topo.links_at(node):
                    neighbor = link.other(node)
                    if neighbor in settled:
                        continue
                    new_cost = cost + self._edge_cost(link)
                    if new_cost > dist.get(neighbor, float("inf")) + 1e-15:
                        continue  # strictly worse; prune
                    dist[neighbor] = min(new_cost, dist.get(neighbor, float("inf")))
                    neighbor_hop = hop if hop is not None else link.direction(source, neighbor)
                    heapq.heappush(
                        heap, (new_cost, hops + 1, path + (neighbor,), neighbor, neighbor_hop)
                    )
            self._next_hop[source] = first_hop

    @staticmethod
    def _topology_signature(topology: Topology) -> tuple:
        """Structural identity of a topology for route-reuse decisions.

        Two topologies with equal signatures produce identical routing
        tables *and* identical LinkDirection capacities, so a table built
        for one is safe to keep for the other.  Capacity is included even
        though Dijkstra ignores it: cached Route/LinkDirection objects
        expose it to callers.
        """
        nodes = tuple(sorted(topology._nodes))
        links = tuple(
            sorted((l.name, l.a, l.b, l.latency, l.capacity) for l in topology.links)
        )
        return (nodes, links)

    def is_valid_for(self, topology: Topology) -> bool:
        """True when this table's routes are exact for *topology*.

        Identity is the O(1) fast path (collectors mutate metrics in place
        and keep the topology object between discovery sweeps); otherwise
        the structural signature decides, so a rebuilt-but-identical view
        (e.g. a re-merge by the collector master) keeps its routes.
        """
        if topology is self.topology:
            return True
        return self._topology_signature(topology) == self._topology_signature(
            self.topology
        )

    def next_hop(self, src: str, dst: str) -> LinkDirection:
        """The first directed link on the route from *src* towards *dst*."""
        self.topology.node(src)
        self.topology.node(dst)
        try:
            return self._next_hop[src][dst]
        except KeyError:
            raise TopologyError(f"no route from {src!r} to {dst!r}") from None

    def route(self, src: str, dst: str) -> Route:
        """The full route from *src* to *dst* (cached)."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        self.topology.node(src)
        self.topology.node(dst)
        if src == dst:
            route = Route(src, dst, ())
            self._route_cache[key] = route
            return route
        hops: list[LinkDirection] = []
        current = src
        visited = {src}
        while current != dst:
            hop = self.next_hop(current, dst)
            hops.append(hop)
            current = hop.dst
            if current in visited:  # pragma: no cover - defensive
                raise TopologyError(f"routing loop detected from {src!r} to {dst!r}")
            visited.add(current)
        route = Route(src, dst, tuple(hops))
        self._route_cache[key] = route
        return route

    def reachable(self, src: str, dst: str) -> bool:
        """True if a route exists between the two nodes."""
        try:
            self.route(src, dst)
            return True
        except TopologyError:
            return False

    def multicast_tree(self, src: str, dsts: list[str]) -> MulticastTree:
        """The shortest-path tree from *src* covering every receiver.

        Built as the union of the unicast routes; hop-by-hop forwarding
        makes the union a tree (shared prefixes coincide).
        """
        if not dsts:
            raise TopologyError("multicast tree needs at least one receiver")
        unique_dsts = list(dict.fromkeys(dsts))
        hops: dict[tuple[str, str, str], LinkDirection] = {}
        latencies: list[tuple[str, float]] = []
        for dst in unique_dsts:
            route = self.route(src, dst)
            latencies.append((dst, route.latency))
            for hop in route.hops:
                hops.setdefault(hop.key, hop)
        return MulticastTree(
            src=src,
            dsts=tuple(unique_dsts),
            hops=tuple(hops.values()),
            latencies=tuple(latencies),
        )

    def routes_between(self, node_names: list[str]) -> dict[tuple[str, str], Route]:
        """Routes for every ordered pair of distinct nodes in *node_names*."""
        result = {}
        for src in node_names:
            for dst in node_names:
                if src != dst:
                    result[(src, dst)] = self.route(src, dst)
        return result
