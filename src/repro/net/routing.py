"""Static shortest-path routing over a Topology.

The testbed (and 1990s IP networks generally) used static shortest-path
routes, so routes are a pure function of the topology: Dijkstra with a
configurable edge weight (default: latency, with hop count as tie-break so
equal-latency networks route by hops).  Routes are deterministic — ties are
broken by lexicographic node order — which keeps experiments reproducible.

Per-source tables are built **lazily**: asking for a handful of routes over
a large network only runs Dijkstra from the sources actually touched (the
endpoints plus the transit nodes walked hop-by-hop), never from all V
nodes.  Each single-source build is the textbook O(E + V log V) — heap
entries are bare ``(cost, hop_count, node)`` triples, and the deterministic
lexicographic-path tie-break is resolved through predecessor chains instead
of carrying O(V) path tuples in every heap entry.  See
``docs/PERFORMANCE.md`` for the cost model.

A :class:`Route` records both the directed links traversed and the transit
nodes, because fair-share allocation charges a flow against every directed
link *and* every node crossbar on its path.
"""

from __future__ import annotations

import heapq
import threading
import zlib
from dataclasses import dataclass

from repro import obs
from repro.net.topology import Link, LinkDirection, Topology
from repro.util.errors import TopologyError


@dataclass(frozen=True)
class Route:
    """An ordered path through the network from ``src`` to ``dst``."""

    src: str
    dst: str
    hops: tuple[LinkDirection, ...]

    @property
    def node_sequence(self) -> tuple[str, ...]:
        """All nodes visited, endpoints included."""
        if not self.hops:
            return (self.src,)
        return (self.hops[0].src,) + tuple(hop.dst for hop in self.hops)

    @property
    def transit_nodes(self) -> tuple[str, ...]:
        """Nodes traversed excluding the endpoints (the forwarders)."""
        return self.node_sequence[1:-1]

    @property
    def links(self) -> tuple[Link, ...]:
        """The physical links traversed."""
        return tuple(hop.link for hop in self.hops)

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return len(self.hops)

    @property
    def latency(self) -> float:
        """Total propagation latency along the path, in seconds."""
        return sum(hop.latency for hop in self.hops)

    @property
    def capacity(self) -> float:
        """Minimum link capacity along the path (static bottleneck)."""
        if not self.hops:
            return float("inf")
        return min(hop.capacity for hop in self.hops)

    def uses_link(self, link_name: str) -> bool:
        """True if the route traverses the named link (either direction)."""
        return any(hop.link.name == link_name for hop in self.hops)

    def __str__(self) -> str:
        return " -> ".join(self.node_sequence)


@dataclass(frozen=True)
class MulticastTree:
    """A source-rooted distribution tree (union of unicast routes).

    The paper lists multicast as a desirable extension (§4.5); the tree is
    the natural object: each directed link appears **once** no matter how
    many receivers sit behind it, which is exactly the capacity-saving
    that makes multicast interesting to a bandwidth query interface.
    """

    src: str
    dsts: tuple[str, ...]
    hops: tuple[LinkDirection, ...]
    """Every directed link in the tree, deduplicated, in discovery order."""
    latencies: "tuple[tuple[str, float], ...]"
    """Per-receiver (dst, path latency) pairs."""

    @property
    def nodes(self) -> tuple[str, ...]:
        """Every node touched by the tree (source, forwarders, receivers)."""
        seen: dict[str, None] = {self.src: None}
        for hop in self.hops:
            seen.setdefault(hop.src, None)
            seen.setdefault(hop.dst, None)
        return tuple(seen)

    @property
    def max_latency(self) -> float:
        """Worst-case receiver latency (delivery completes at this offset)."""
        if not self.latencies:
            return 0.0
        return max(latency for _, latency in self.latencies)

    @property
    def capacity(self) -> float:
        """Minimum link capacity anywhere in the tree."""
        if not self.hops:
            return float("inf")
        return min(hop.capacity for hop in self.hops)

    def latency_to(self, dst: str) -> float:
        """Path latency from the source to *dst*."""
        for receiver, latency in self.latencies:
            if receiver == dst:
                return latency
        raise TopologyError(f"{dst!r} is not a receiver of this tree")


class RoutingTable:
    """Deterministic shortest-path routes for a topology, built lazily.

    Construction is O(1): the per-source next-hop tables are built on
    demand, the first time a route from that source (or through that
    transit node) is requested.  ``source_builds`` counts how many
    single-source Dijkstra runs the table has paid for — the scale
    regression tests bound it to prove small queries never trigger
    all-pairs work.

    Parameters
    ----------
    topology:
        The network to route over.
    weight:
        ``"latency"`` (default) weights each link by its latency and breaks
        ties by hop count; ``"hops"`` uses pure hop count.
    tie_break:
        How exact (cost, hops) ties between predecessors are resolved.
        ``"lexicographic"`` keeps the lexicographically smallest path — the
        historical single-path behaviour.  ``"hash"`` keeps the predecessor
        with the smallest CRC32 of ``source|node|predecessor``: a
        deterministic stand-in for ECMP flow hashing that spreads
        different (source, destination) pairs across equal-cost uplinks
        while every repeated query still takes the same path.  ``None``
        (default) follows the topology's hierarchy hint
        (``topology.hierarchy.tie_break``), falling back to lexicographic.
    """

    def __init__(
        self,
        topology: Topology,
        weight: str = "latency",
        tie_break: str | None = None,
    ):
        if weight not in ("latency", "hops"):
            raise TopologyError(f"unknown routing weight {weight!r}")
        self._explicit_tie_break = tie_break is not None
        if tie_break is None:
            tie_break = self._hinted_tie_break(topology)
        if tie_break not in ("lexicographic", "hash"):
            raise TopologyError(f"unknown routing tie_break {tie_break!r}")
        self.topology = topology
        self.weight = weight
        self.tie_break = tie_break
        self._next_hop: dict[str, dict[str, LinkDirection]] = {}
        self._route_cache: dict[tuple[str, str], Route] = {}
        self._signature: tuple | None = None
        self.source_builds = 0
        # Serialises lazy per-source Dijkstra builds: snapshot readers
        # share one routing table per epoch, and a torn build must never
        # be visible.  The route()/next-hop fast paths stay lock-free —
        # concurrent fills insert identical values.
        self._build_lock = threading.Lock()
        obs.inc(
            "remos_routing_builds_total",
            help="Routing table constructions (tables fill lazily per source)",
        )

    def _edge_cost(self, link: Link) -> float:
        if self.weight == "hops":
            return 1.0
        # Latency plus a small per-hop epsilon so zero-latency networks
        # still prefer fewer hops, deterministically.
        return link.latency + 1e-9

    def _ensure_source(self, source: str) -> dict[str, LinkDirection]:
        """The next-hop table for *source*, building it on first use.

        Double-checked locking: the common hit is one lock-free dict read;
        a miss re-checks under the build lock so concurrent readers run
        each Dijkstra once and only ever see a finished table.
        """
        table = self._next_hop.get(source)
        if table is not None:
            return table
        with self._build_lock:
            table = self._next_hop.get(source)
            if table is not None:
                return table
            with obs.span("routing.build") as sp:
                table = self._build_source(source)
                if sp:
                    sp.set(
                        source=source,
                        nodes=len(self.topology._nodes),
                        links=len(self.topology.links),
                        weight=self.weight,
                        tie_break=self.tie_break,
                    )
            self._next_hop[source] = table
            self.source_builds += 1
            obs.inc(
                "remos_routing_source_builds_total",
                help="Single-source Dijkstra runs across all routing tables",
            )
        return table

    def _build_source(self, source: str) -> dict[str, LinkDirection]:
        """Single-source Dijkstra with deterministic predecessor selection.

        Heap entries are bare ``(cost, hop_count, node)`` triples.  Among
        equal-cost candidates the lower hop count wins; among equal-cost
        equal-hop candidates the predecessor whose source path is
        lexicographically smallest wins, resolved by walking predecessor
        chains (paths are materialised only on such exact ties).  This
        reproduces, choice for choice, the ordering of the original
        implementation that carried full path tuples in every heap entry.
        """
        topo = self.topology
        dist: dict[str, float] = {source: 0.0}
        hops: dict[str, int] = {source: 0}
        pred: dict[str, str | None] = {source: None}
        first_hop: dict[str, LinkDirection] = {}
        heap: list[tuple[float, int, str]] = [(0.0, 0, source)]
        settled: set[str] = set()
        while heap:
            cost, hop_count, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for link in topo.links_at(node):
                neighbor = link.other(node)
                if neighbor in settled:
                    continue
                new_cost = cost + self._edge_cost(link)
                new_hops = hop_count + 1
                old_cost = dist.get(neighbor)
                if (
                    old_cost is None
                    or new_cost < old_cost
                    or (new_cost == old_cost and new_hops < hops[neighbor])
                ):
                    dist[neighbor] = new_cost
                    hops[neighbor] = new_hops
                    pred[neighbor] = node
                    first_hop[neighbor] = (
                        first_hop[node]
                        if node != source
                        else link.direction(source, neighbor)
                    )
                    heapq.heappush(heap, (new_cost, new_hops, neighbor))
                elif (
                    new_cost == old_cost
                    and new_hops == hops[neighbor]
                    and self._tie_prefers(source, node, pred[neighbor], neighbor, pred)
                ):
                    # Exact tie: keep the preferred predecessor (smallest
                    # path lexicographically, or smallest ECMP hash key).
                    # No re-push needed — the pending heap entry for this
                    # (cost, hops) label settles the node either way.
                    pred[neighbor] = node
                    first_hop[neighbor] = (
                        first_hop[node]
                        if node != source
                        else link.direction(source, neighbor)
                    )
        return first_hop

    def _tie_prefers(
        self,
        source: str,
        candidate: str,
        incumbent: str | None,
        neighbor: str,
        pred: dict[str, str | None],
    ) -> bool:
        """True if *candidate* should replace *incumbent* as predecessor.

        Every predecessor carrying the same exact (cost, hops) label
        settles before *neighbor* does (edge costs are strictly positive),
        so whichever rule runs here sees the complete candidate set and the
        winner is independent of settle order.
        """
        if incumbent is None:  # pragma: no cover - source never ties
            return False
        if self.tie_break == "hash":
            return self._ecmp_key(source, neighbor, candidate) < self._ecmp_key(
                source, neighbor, incumbent
            )
        return self._path_precedes(candidate, incumbent, pred)

    @staticmethod
    def _ecmp_key(source: str, neighbor: str, predecessor: str) -> tuple[int, str]:
        """Deterministic ECMP ranking of a candidate predecessor.

        CRC32 rather than ``hash()``: Python string hashing is randomised
        per process, and routes must reproduce across runs and machines.
        """
        digest = zlib.crc32(f"{source}|{neighbor}|{predecessor}".encode())
        return (digest, predecessor)

    @staticmethod
    def _hinted_tie_break(topology: Topology) -> str:
        """The tie-break a topology's hierarchy asks for (default lexicographic)."""
        hierarchy = getattr(topology, "hierarchy", None)
        return "lexicographic" if hierarchy is None else hierarchy.tie_break

    @staticmethod
    def _path_precedes(
        candidate: str, incumbent: str | None, pred: dict[str, str | None]
    ) -> bool:
        """True if the source path to *candidate* lexicographically precedes
        the one to *incumbent* (both chains are settled, hence final)."""
        if incumbent is None:  # pragma: no cover - source never ties
            return False

        def chain(node: str | None) -> list[str]:
            path: list[str] = []
            while node is not None:
                path.append(node)
                node = pred[node]
            path.reverse()
            return path

        return chain(candidate) < chain(incumbent)

    @staticmethod
    def _topology_signature(topology: Topology) -> tuple:
        """Structural identity of a topology for route-reuse decisions.

        Two topologies with equal signatures produce identical routing
        tables *and* identical LinkDirection capacities, so a table built
        for one is safe to keep for the other.  Capacity is included even
        though Dijkstra ignores it: cached Route/LinkDirection objects
        expose it to callers.
        """
        nodes = tuple(sorted(topology._nodes))
        links = tuple(
            sorted((l.name, l.a, l.b, l.latency, l.capacity) for l in topology.links)
        )
        return (nodes, links)

    def topology_signature(self) -> tuple:
        """This table's own topology signature, computed once and memoised.

        ``is_valid_for`` runs on every query against a refreshed view;
        re-sorting all links each time made table reuse cost O(E log E)
        per query.  The memo is safe because a table is only ever valid
        for the structure it was built from — if the backing topology
        object were mutated, the table would be stale either way.
        """
        if self._signature is None:
            self._signature = self._topology_signature(self.topology)
        return self._signature

    def is_valid_for(self, topology: Topology) -> bool:
        """True when this table's routes are exact for *topology*.

        Identity is the O(1) fast path (collectors mutate metrics in place
        and keep the topology object between discovery sweeps); otherwise
        the structural signature decides, so a rebuilt-but-identical view
        (e.g. a re-merge by the collector master) keeps its routes.  A
        hint-derived table additionally requires *topology* to hint the
        same tie-break — hash-routed fabrics must not inherit
        lexicographic routes or vice versa.  (Explicitly requested
        tie-breaks are the caller's choice and stay valid regardless.)
        """
        if not self._explicit_tie_break and self.tie_break != self._hinted_tie_break(
            topology
        ):
            return False
        if topology is self.topology:
            return True
        return self._topology_signature(topology) == self.topology_signature()

    def rebase(self, topology: Topology) -> None:
        """Re-point the table at a structurally identical topology object.

        After the collector master re-merges **in place**, the view holds a
        rebuilt-but-identical ``Topology``; rebasing restores the O(1)
        identity fast path in :meth:`is_valid_for` for every later check.
        Only call after ``is_valid_for(topology)`` returned True — routes,
        the memoised signature, and cached ``LinkDirection`` objects stay
        as built, which is exact precisely because the structures (names,
        endpoints, latencies, capacities) are equal.
        """
        self.topology = topology

    def next_hop(self, src: str, dst: str) -> LinkDirection:
        """The first directed link on the route from *src* towards *dst*."""
        self.topology.node(src)
        self.topology.node(dst)
        try:
            return self._ensure_source(src)[dst]
        except KeyError:
            raise TopologyError(f"no route from {src!r} to {dst!r}") from None

    def route(self, src: str, dst: str) -> Route:
        """The full route from *src* to *dst* (cached)."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        self.topology.node(src)
        self.topology.node(dst)
        if src == dst:
            route = Route(src, dst, ())
            self._route_cache[key] = route
            return route
        hops: list[LinkDirection] = []
        current = src
        visited = {src}
        while current != dst:
            hop = self.next_hop(current, dst)
            hops.append(hop)
            current = hop.dst
            if current in visited:  # pragma: no cover - defensive
                raise TopologyError(f"routing loop detected from {src!r} to {dst!r}")
            visited.add(current)
        route = Route(src, dst, tuple(hops))
        self._route_cache[key] = route
        return route

    def reachable(self, src: str, dst: str) -> bool:
        """True if a route exists between the two nodes."""
        try:
            self.route(src, dst)
            return True
        except TopologyError:
            return False

    def multicast_tree(self, src: str, dsts: list[str]) -> MulticastTree:
        """The shortest-path tree from *src* covering every receiver.

        Built as the union of the unicast routes; hop-by-hop forwarding
        makes the union a tree (shared prefixes coincide).
        """
        if not dsts:
            raise TopologyError("multicast tree needs at least one receiver")
        unique_dsts = list(dict.fromkeys(dsts))
        hops: dict[tuple[str, str, str], LinkDirection] = {}
        latencies: list[tuple[str, float]] = []
        for dst in unique_dsts:
            route = self.route(src, dst)
            latencies.append((dst, route.latency))
            for hop in route.hops:
                hops.setdefault(hop.key, hop)
        return MulticastTree(
            src=src,
            dsts=tuple(unique_dsts),
            hops=tuple(hops.values()),
            latencies=tuple(latencies),
        )

    def routes_between(self, node_names: list[str]) -> dict[tuple[str, str], Route]:
        """Routes for every ordered pair of distinct nodes in *node_names*."""
        result = {}
        for src in node_names:
            for dst in node_names:
                if src != dst:
                    result[(src, dst)] = self.route(src, dst)
        return result
