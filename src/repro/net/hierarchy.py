"""Hierarchical grouping of switches for logical-graph collapse.

Data-center fabrics are trees-of-bundles: hosts hang off leaf (ToR)
switches, leaves uplink into pods (or directly into a spine), pods uplink
into a core.  A :class:`Hierarchy` names that structure explicitly — every
switch belongs to exactly one group, groups form a tree by ``parent``
pointers — so the Modeler can roll whole pods up into single aggregate
nodes instead of walking thousands of physical links per query (see
``docs/TOPOLOGIES.md``).

A hierarchy travels *with* a topology (``Topology.hierarchy``): the
generators in :mod:`repro.net.builder` attach one at construction time,
and :meth:`Hierarchy.infer` recovers one from an SNMP-discovered topology
whose shape happens to be hierarchical.  Inference never changes routing
(``tie_break`` stays ``"lexicographic"``); only generator-built fabrics
opt into the hash-based ECMP tie-break.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.topology import Topology

#: Levels used by generators and inference: hosts sit below level 1.
LEVEL_TOR = 1
LEVEL_POD = 2
LEVEL_CORE = 3


class HierarchyRefusal(TopologyError):
    """``Hierarchy.infer`` declined: the topology's shape is not a tree.

    Carries a machine-readable ``reason`` code alongside the human
    message, so the Modeler's memoised failure (and the slow-path
    fallback counter/warning built on it) can say *why* hierarchical
    collapse is unavailable instead of silently degrading.  Reason codes:

    ``no-hosts-or-switches``
        The topology lacks one of the two node populations entirely.
    ``unreachable-switch``
        A switch has no path from any host.
    ``too-many-tiers``
        A switch sits more than three hop-tiers above the hosts.
    ``multi-homed-host``
        A host attaches to zero or several switches.
    ``tor-reaches-core-directly``
        A ToR component touches the core with no aggregation tier.
    ``flat-multi-tor``
        Several ToRs and nothing above them: a flat fabric.
    """

    def __init__(self, message: str, reason: str):
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class HierGroup:
    """One node of the collapse tree: a named set of switches.

    ``level`` counts switch tiers above the hosts (1 = ToR/leaf, 2 =
    pod/spine, 3 = core).  ``parent`` is the id of the group one level up,
    or ``None`` for the root.  A singleton group (one member) collapses to
    the member switch itself — queries over it stay exact.
    """

    id: str
    level: int
    members: tuple[str, ...]
    parent: str | None


class Hierarchy:
    """An explicit switch-group tree over a topology.

    Parameters
    ----------
    groups:
        Every :class:`HierGroup`, keyed or iterable; each switch may appear
        in exactly one group, parents must exist one level up, and exactly
        one group is the root (``parent is None``).
    host_group:
        Maps every host name to the id of its level-1 (ToR) group.
    tie_break:
        Routing tie-break hint carried to :class:`~repro.net.routing.RoutingTable`:
        ``"lexicographic"`` (reproducible 1990s-style single path, the
        default) or ``"hash"`` (deterministic ECMP-style spreading over
        equal-cost paths, used by the data-center generators).
    """

    def __init__(
        self,
        groups: "list[HierGroup] | dict[str, HierGroup]",
        host_group: dict[str, str],
        tie_break: str = "lexicographic",
    ):
        if tie_break not in ("lexicographic", "hash"):
            raise TopologyError(f"unknown tie_break {tie_break!r}")
        if isinstance(groups, dict):
            groups = list(groups.values())
        self.groups: dict[str, HierGroup] = {}
        for group in groups:
            if group.id in self.groups:
                raise TopologyError(f"duplicate hierarchy group id {group.id!r}")
            if not group.members:
                raise TopologyError(f"hierarchy group {group.id!r} has no members")
            self.groups[group.id] = group
        self.member_group: dict[str, str] = {}
        roots: list[str] = []
        for group in self.groups.values():
            for member in group.members:
                if member in self.member_group:
                    raise TopologyError(
                        f"switch {member!r} belongs to two hierarchy groups"
                    )
                self.member_group[member] = group.id
            if group.parent is None:
                roots.append(group.id)
            else:
                parent = self.groups.get(group.parent)
                if parent is None:
                    raise TopologyError(
                        f"group {group.id!r} names unknown parent {group.parent!r}"
                    )
                if parent.level != group.level + 1:
                    raise TopologyError(
                        f"group {group.id!r} (level {group.level}) has parent "
                        f"{group.parent!r} at level {parent.level}, expected "
                        f"{group.level + 1}"
                    )
        if len(roots) != 1:
            raise TopologyError(
                f"hierarchy must have exactly one root group, got {sorted(roots)}"
            )
        self.root_id = roots[0]
        self.host_group = dict(host_group)
        for host, gid in self.host_group.items():
            group = self.groups.get(gid)
            if group is None:
                raise TopologyError(f"host {host!r} names unknown group {gid!r}")
            if group.level != LEVEL_TOR:
                raise TopologyError(
                    f"host {host!r} must attach to a level-1 group, "
                    f"got {gid!r} at level {group.level}"
                )
        self.tie_break = tie_break
        self._paths: dict[str, tuple[str, ...]] = {}

    @property
    def depth(self) -> int:
        """Number of switch tiers (the root group's level)."""
        return self.groups[self.root_id].level

    def path_from(self, group_id: str) -> tuple[str, ...]:
        """Ancestor chain from *group_id* up to and including the root."""
        cached = self._paths.get(group_id)
        if cached is not None:
            return cached
        path: list[str] = []
        current: str | None = group_id
        while current is not None:
            path.append(current)
            current = self.groups[current].parent
        result = tuple(path)
        self._paths[group_id] = result
        return result

    @classmethod
    def infer(cls, topology: "Topology") -> "Hierarchy":
        """Recover a hierarchy from a topology's shape, if it has one.

        Switches are tiered by hop distance from the nearest host (1 = ToR,
        2 = pod/spine, 3 = core); pods are the connected components of the
        ToR+aggregation subgraph.  Raises :class:`HierarchyRefusal` (a
        :class:`TopologyError` carrying a ``reason`` code) when the shape
        is not hierarchical (multi-homed hosts, more than three switch
        tiers, a flat multi-ToR fabric with no upper tier, ...).  The
        inferred hierarchy keeps ``tie_break="lexicographic"`` so it never
        changes existing routes.
        """
        hosts = [n.name for n in topology.compute_nodes]
        switches = [n.name for n in topology.network_nodes]
        if not hosts or not switches:
            raise HierarchyRefusal(
                "hierarchy needs both hosts and switches",
                reason="no-hosts-or-switches",
            )
        host_set = set(hosts)
        # Multi-source BFS from the hosts; never expand *through* a host.
        dist: dict[str, int] = {h: 0 for h in hosts}
        queue: deque[str] = deque(hosts)
        while queue:
            node = queue.popleft()
            d = dist[node]
            if d > 0 and node in host_set:  # pragma: no cover - defensive
                continue
            for neighbor in topology.neighbors(node):
                if neighbor not in dist:
                    dist[neighbor] = d + 1
                    if neighbor not in host_set:
                        queue.append(neighbor)
        tiers: dict[int, list[str]] = {1: [], 2: [], 3: []}
        for switch in switches:
            tier = dist.get(switch)
            if tier is None:
                raise HierarchyRefusal(
                    f"switch {switch!r} is unreachable from hosts",
                    reason="unreachable-switch",
                )
            if tier > LEVEL_CORE:
                raise HierarchyRefusal(
                    f"switch {switch!r} sits {tier} tiers above the hosts; "
                    "hierarchies support at most three",
                    reason="too-many-tiers",
                )
            tiers[tier].append(switch)
        tors, uppers, cores = tiers[1], tiers[2], tiers[3]
        host_group: dict[str, str] = {}
        for host in hosts:
            attached = {n for n in topology.neighbors(host) if n not in host_set}
            if len(attached) != 1:
                raise HierarchyRefusal(
                    f"host {host!r} attaches to {len(attached)} switches; "
                    "hierarchical hosts are single-homed",
                    reason="multi-homed-host",
                )
            (tor,) = attached
            if tor not in tiers[1]:  # pragma: no cover - defensive
                raise TopologyError(f"host {host!r} attaches to non-ToR {tor!r}")
            host_group[host] = tor
        groups: list[HierGroup] = []
        taken = set(switches)

        def fresh(candidate: str) -> str:
            while candidate in taken:
                candidate = "@" + candidate
            taken.add(candidate)
            return candidate

        if cores:
            # Pods: connected components of the ToR+aggregation subgraph.
            pod_of: dict[str, int] = {}
            middle = set(tors) | set(uppers)
            components: list[list[str]] = []
            for start in sorted(middle):
                if start in pod_of:
                    continue
                component: list[str] = []
                stack = [start]
                pod_of[start] = len(components)
                while stack:
                    node = stack.pop()
                    component.append(node)
                    for neighbor in topology.neighbors(node):
                        if neighbor in middle and neighbor not in pod_of:
                            pod_of[neighbor] = len(components)
                            stack.append(neighbor)
                components.append(sorted(component))
            upper_set = set(uppers)
            pod_ids = [fresh(f"pod-{i}") for i in range(len(components))]
            core_id = fresh("core")
            for pod_id, component in zip(pod_ids, components):
                pod_members = tuple(n for n in component if n in upper_set)
                if not pod_members:
                    raise HierarchyRefusal(
                        f"ToRs {component} reach the core with no aggregation "
                        "tier in between",
                        reason="tor-reaches-core-directly",
                    )
                groups.append(HierGroup(pod_id, LEVEL_POD, pod_members, core_id))
                for tor in component:
                    if tor not in upper_set:
                        groups.append(HierGroup(tor, LEVEL_TOR, (tor,), pod_id))
            groups.append(HierGroup(core_id, LEVEL_CORE, tuple(sorted(cores)), None))
        elif uppers:
            # Two switch tiers: every ToR parents into one spine group.
            spine_id = fresh("spine")
            groups.append(HierGroup(spine_id, LEVEL_POD, tuple(sorted(uppers)), None))
            for tor in tors:
                groups.append(HierGroup(tor, LEVEL_TOR, (tor,), spine_id))
        else:
            if len(tors) != 1:
                raise HierarchyRefusal(
                    f"{len(tors)} ToR switches with no upper tier form a flat "
                    "fabric, not a hierarchy",
                    reason="flat-multi-tor",
                )
            groups.append(HierGroup(tors[0], LEVEL_TOR, (tors[0],), None))
        return cls(groups, host_group, tie_break="lexicographic")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Hierarchy: {len(self.groups)} groups, depth {self.depth}, "
            f"{len(self.host_group)} hosts, tie_break={self.tie_break!r}>"
        )
