"""repro — reproduction of Remos (HPDC 1998).

Remos is a uniform, query-based API that lets network-aware applications
obtain information about their network: flow-based bandwidth/latency
queries with max-min fair sharing semantics, and logical-topology queries.

The package is layered bottom-up:

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.net` / :mod:`repro.traffic` / :mod:`repro.fairshare` /
  :mod:`repro.netsim` — fluid-flow network simulator (the testbed substitute);
* :mod:`repro.snmp` / :mod:`repro.collector` / :mod:`repro.stats` — the
  Remos Collector side;
* :mod:`repro.core` — the Remos Modeler and public query API
  (the paper's contribution);
* :mod:`repro.fx` / :mod:`repro.apps` / :mod:`repro.adapt` — the Fx-like
  parallel runtime, applications, and the clustering/adaptation layer used
  in the paper's evaluation;
* :mod:`repro.testbed` — the CMU testbed and the paper's figure networks.

Quickstart::

    from repro.testbed import build_cmu_testbed
    from repro.core import Remos, Flow, Timeframe

    world = build_cmu_testbed()
    remos = world.make_remos()
    graph = remos.get_graph(["m-1", "m-4"], Timeframe.current())
    answer = remos.flow_info(variable_flows=[Flow("m-1", "m-4")])
"""

from repro._version import __version__

__all__ = ["__version__"]
