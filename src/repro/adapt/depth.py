"""Adapting an application-internal parameter from Remos measurements.

§6: adaptation parameters "may be internal to the application.  For
example, in [21] an adaptation module selects the optimal pipeline depth
for a pipelined SOR application based on network and CPU performance."

The :class:`DepthAdapter` is that module: at each migration point it asks
Remos for the bandwidth and latency between the mapped nodes, plugs them
into the SOR cost model, and resets the program's depth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.sor import PipelinedSOR, optimal_depth
from repro.core import Remos, Timeframe
from repro.fx.runtime import FxRuntime
from repro.util.errors import ConfigurationError


@dataclass
class DepthAdapter:
    """Tunes a :class:`PipelinedSOR`'s pipeline depth from live Remos data."""

    remos: Remos
    timeframe: Timeframe | None = None
    check_seconds: float = 0.2
    adjustments: int = 0

    def hook(self, runtime: FxRuntime, program, index: int):
        """Adaptation hook for :meth:`FxRuntime.launch`."""
        if not isinstance(program, PipelinedSOR):
            raise ConfigurationError("DepthAdapter only adapts PipelinedSOR programs")
        yield from runtime.charge_adaptation(self.check_seconds)
        depth = self.recommend(runtime, program)
        if depth != program.depth:
            program.depth = depth
            self.adjustments += 1

    def recommend(self, runtime: FxRuntime, program: PipelinedSOR) -> int:
        """The depth the current network conditions call for."""
        hosts = list(runtime.mapping.hosts)
        if len(hosts) < 2:
            return 1
        timeframe = self.timeframe or Timeframe.current()
        graph = self.remos.get_graph(hosts, timeframe)
        # The pipeline's neighbour links: take the worst (bandwidth) and
        # the typical (latency) over successive pairs.
        bandwidth = float("inf")
        latency = 0.0
        for a, b in zip(hosts, hosts[1:]):
            bandwidth = min(bandwidth, graph.path_available(a, b).median)
            latency = max(latency, graph.path_latency(a, b))
        topology = runtime.net.topology
        compute_speed = min(topology.node(h).compute_speed for h in hosts)
        return optimal_depth(
            n=program.n,
            size=len(hosts),
            compute_speed=compute_speed,
            bandwidth=max(bandwidth, 1.0),
            latency=latency,
        )
