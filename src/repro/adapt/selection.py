"""Start-up node selection: the §7.3 pipeline in one call.

1. ``remos_get_graph`` over the candidate pool;
2. distance matrix from the logical topology;
3. greedy clustering from the application's start node.

:func:`minimum_nodes` and :func:`select_nodes_for_program` add the §2
node-count constraint: enough hosts that the program's data fits in their
physical memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adapt.clustering import cluster_cost, greedy_cluster
from repro.adapt.distance import communication_distances
from repro.core import Flow, FlowQuery, Remos, Timeframe
from repro.net import Topology
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class SelectionResult:
    """A selected cluster plus its expected-communication score."""

    hosts: list[str]
    cost: float
    """Total pairwise distance (lower = better connectivity)."""


def select_nodes(
    remos: Remos,
    pool: list[str],
    k: int,
    start: str,
    timeframe: Timeframe | None = None,
    quantile: str = "median",
) -> SelectionResult:
    """Pick *k* well-connected hosts from *pool*, starting at *start*.

    With ``timeframe=Timeframe.static()`` this is the naive selection of
    Table 2's comparison column (physical capacities only); the default
    CURRENT timeframe uses live measurements.
    """
    timeframe = timeframe or Timeframe.current()
    graph = remos.get_graph(list(pool), timeframe)
    names, matrix = communication_distances(graph, list(pool), quantile=quantile)
    cluster = greedy_cluster(names, matrix, start, k)
    return SelectionResult(hosts=cluster, cost=cluster_cost(names, matrix, cluster))


def select_nodes_compute_aware(
    remos: Remos,
    pool: list[str],
    k: int,
    start: str,
    timeframe: Timeframe | None = None,
    compute_penalty: float = 1e-7,
) -> SelectionResult:
    """Node selection considering CPU load as well as connectivity.

    §7.2 flags this as future work ("tradeoffs between computation and
    communication resources would have to be considered for clustering");
    this variant implements the natural heuristic: each candidate's
    distances are inflated by ``compute_penalty x median CPU load``, so a
    50 %-loaded host is as unattractive as a host behind a ~20 Mbps link
    at the default weight.  Requires host monitoring (CPU series); hosts
    without measurements count as idle.
    """
    timeframe = timeframe or Timeframe.current()
    graph = remos.get_graph(list(pool), timeframe)
    names, matrix = communication_distances(graph, list(pool), quantile="median")
    modeler = remos._modeler()
    for index, host in enumerate(names):
        load = modeler.cpu_load(host, timeframe).median
        penalty = compute_penalty * load
        matrix[index, :] += penalty
        matrix[:, index] += penalty
        matrix[index, index] = 0.0
    cluster = greedy_cluster(names, matrix, start, k)
    return SelectionResult(hosts=cluster, cost=cluster_cost(names, matrix, cluster))


def _all_to_all_flows(hosts: list[str]) -> tuple[Flow, ...]:
    """One variable flow per ordered host pair (all-to-all traffic)."""
    return tuple(
        Flow(src, dst, requested=1.0, name=f"{src}->{dst}")
        for src in hosts
        for dst in hosts
        if src != dst
    )


def select_nodes_flow_aware(
    remos: Remos,
    pool: list[str],
    k: int,
    start: str,
    timeframe: Timeframe | None = None,
) -> SelectionResult:
    """Greedy node selection scored by actual max-min flow allocations.

    Where :func:`select_nodes` ranks candidates by pairwise *distances*
    read off the logical graph, this variant asks the flow engine directly:
    each growth step poses one :meth:`Remos.flow_info_batch` scenario per
    candidate — all-to-all variable flows among ``cluster + [candidate]``
    — and admits the candidate whose scenario's **worst** median allocated
    bandwidth is highest.  Shared bottlenecks among the prospective
    cluster's own flows are therefore accounted for exactly, which the
    distance matrix (independent pairwise estimates) cannot do.

    Cost reported is the sum over unordered host pairs of ``1 / median
    allocated bandwidth`` in the final cluster's scenario, comparable in
    spirit (not in scale) to :func:`select_nodes`'s distance cost.
    Deterministic: ties are broken by pool order.
    """
    timeframe = timeframe or Timeframe.current()
    pool = list(pool)
    if start not in pool:
        raise ConfigurationError(f"start node {start!r} not in candidate pool")
    if not 1 <= k <= len(pool):
        raise ConfigurationError(f"cluster size {k} out of range 1..{len(pool)}")

    cluster = [start]
    final_result = None
    while len(cluster) < k:
        candidates = [host for host in pool if host not in cluster]
        scenarios = [
            FlowQuery(variable=_all_to_all_flows(cluster + [candidate]), name=candidate)
            for candidate in candidates
        ]
        results = remos.flow_info_batch(scenarios, timeframe)
        best_host = None
        best_result = None
        best_score = float("-inf")
        for candidate, result in zip(candidates, results):
            score = min(answer.bandwidth.median for answer in result.variable)
            if score > best_score + 1e-15:
                best_score = score
                best_host = candidate
                best_result = result
        assert best_host is not None
        cluster.append(best_host)
        final_result = best_result

    cost = 0.0
    if final_result is not None:
        # Fold the two directions of each pair to their worse median.
        pair_bandwidth: dict[frozenset, float] = {}
        for answer in final_result.variable:
            pair = frozenset((answer.flow.src, answer.flow.dst))
            band = answer.bandwidth.median
            pair_bandwidth[pair] = min(band, pair_bandwidth.get(pair, float("inf")))
        cost = sum(1.0 / max(band, 1.0) for band in pair_bandwidth.values())
    return SelectionResult(hosts=cluster, cost=cost)


def minimum_nodes(program, topology: Topology, pool: list[str]) -> int:
    """Fewest hosts on which *program*'s data fits in physical memory (§2).

    Conservative: sized against the smallest memory in the pool, and never
    below the program's own ``required_nodes``.
    """
    if not pool:
        raise ConfigurationError("empty candidate pool")
    smallest_memory = min(topology.node(host).memory_bytes for host in pool)
    floor = max(1, program.required_nodes())
    for size in range(floor, len(pool) + 1):
        if program.memory_bytes_per_rank(size) <= smallest_memory:
            return size
    raise ConfigurationError(
        f"{program.name}: data does not fit even on all {len(pool)} pool hosts"
    )


def select_nodes_for_program(
    remos: Remos,
    pool: list[str],
    program,
    start: str,
    extra_nodes: int = 0,
    timeframe: Timeframe | None = None,
) -> SelectionResult:
    """§2's full placement question: how many nodes, and which ones.

    The node count is the memory-driven minimum plus *extra_nodes* (for
    callers who want compute headroom beyond feasibility); the node
    identities come from :func:`select_nodes`.
    """
    topology = remos._modeler().view.topology
    k = minimum_nodes(program, topology, pool) + extra_nodes
    k = min(k, len(pool))
    return select_nodes(remos, pool, k=k, start=start, timeframe=timeframe)
