"""Start-up node selection: the §7.3 pipeline in one call.

1. ``remos_get_graph`` over the candidate pool;
2. distance matrix from the logical topology;
3. greedy clustering from the application's start node.

:func:`minimum_nodes` and :func:`select_nodes_for_program` add the §2
node-count constraint: enough hosts that the program's data fits in their
physical memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adapt.clustering import cluster_cost, greedy_cluster
from repro.adapt.distance import communication_distances
from repro.core import Remos, Timeframe
from repro.net import Topology
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class SelectionResult:
    """A selected cluster plus its expected-communication score."""

    hosts: list[str]
    cost: float
    """Total pairwise distance (lower = better connectivity)."""


def select_nodes(
    remos: Remos,
    pool: list[str],
    k: int,
    start: str,
    timeframe: Timeframe | None = None,
    quantile: str = "median",
) -> SelectionResult:
    """Pick *k* well-connected hosts from *pool*, starting at *start*.

    With ``timeframe=Timeframe.static()`` this is the naive selection of
    Table 2's comparison column (physical capacities only); the default
    CURRENT timeframe uses live measurements.
    """
    timeframe = timeframe or Timeframe.current()
    graph = remos.get_graph(list(pool), timeframe)
    names, matrix = communication_distances(graph, list(pool), quantile=quantile)
    cluster = greedy_cluster(names, matrix, start, k)
    return SelectionResult(hosts=cluster, cost=cluster_cost(names, matrix, cluster))


def select_nodes_compute_aware(
    remos: Remos,
    pool: list[str],
    k: int,
    start: str,
    timeframe: Timeframe | None = None,
    compute_penalty: float = 1e-7,
) -> SelectionResult:
    """Node selection considering CPU load as well as connectivity.

    §7.2 flags this as future work ("tradeoffs between computation and
    communication resources would have to be considered for clustering");
    this variant implements the natural heuristic: each candidate's
    distances are inflated by ``compute_penalty x median CPU load``, so a
    50 %-loaded host is as unattractive as a host behind a ~20 Mbps link
    at the default weight.  Requires host monitoring (CPU series); hosts
    without measurements count as idle.
    """
    timeframe = timeframe or Timeframe.current()
    graph = remos.get_graph(list(pool), timeframe)
    names, matrix = communication_distances(graph, list(pool), quantile="median")
    modeler = remos._modeler()
    for index, host in enumerate(names):
        load = modeler.cpu_load(host, timeframe).median
        penalty = compute_penalty * load
        matrix[index, :] += penalty
        matrix[:, index] += penalty
        matrix[index, index] = 0.0
    cluster = greedy_cluster(names, matrix, start, k)
    return SelectionResult(hosts=cluster, cost=cluster_cost(names, matrix, cluster))


def minimum_nodes(program, topology: Topology, pool: list[str]) -> int:
    """Fewest hosts on which *program*'s data fits in physical memory (§2).

    Conservative: sized against the smallest memory in the pool, and never
    below the program's own ``required_nodes``.
    """
    if not pool:
        raise ConfigurationError("empty candidate pool")
    smallest_memory = min(topology.node(host).memory_bytes for host in pool)
    floor = max(1, program.required_nodes())
    for size in range(floor, len(pool) + 1):
        if program.memory_bytes_per_rank(size) <= smallest_memory:
            return size
    raise ConfigurationError(
        f"{program.name}: data does not fit even on all {len(pool)} pool hosts"
    )


def select_nodes_for_program(
    remos: Remos,
    pool: list[str],
    program,
    start: str,
    extra_nodes: int = 0,
    timeframe: Timeframe | None = None,
) -> SelectionResult:
    """§2's full placement question: how many nodes, and which ones.

    The node count is the memory-driven minimum plus *extra_nodes* (for
    callers who want compute headroom beyond feasibility); the node
    identities come from :func:`select_nodes`.
    """
    topology = remos._modeler().view.topology
    k = minimum_nodes(program, topology, pool) + extra_nodes
    k = min(k, len(pool))
    return select_nodes(remos, pool, k=k, start=start, timeframe=timeframe)
