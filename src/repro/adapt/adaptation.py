"""The runtime adaptation module.

"When the adaptation module is invoked, it checks if Remos is active ...
calls a Remos routine to obtain the logical topology of the relevant graph
... The communication distance matrix, the number of nodes required ...
are the inputs to the clustering routine ... if the potential improvement
is above a specified threshold, the application is migrated" (§7.3).

An :class:`AdaptationModule` packages that loop as an Fx adaptation hook.
Costs are explicit: every check charges ``check_seconds`` (the Remos query
+ clustering time — the first overhead the paper identifies in §8.3), and
every actual migration charges ``migration_seconds``.

With a :class:`~repro.adapt.policies.MigrationPolicy` whose
``predict_horizon``/``predict_collapse_bps`` are set, the loop also acts
on the **FUTURE** timeframe: when the forecast pessimistic quartile (q1)
of available bandwidth inside the current mapping drops below the
configured floor, the module re-clusters on the *predicted* graph and
migrates before the observed rate collapses — the reactive loop turned
proactive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adapt.clustering import cluster_cost, greedy_cluster_best_start
from repro.adapt.distance import communication_distances, own_traffic_loads
from repro.adapt.policies import MigrationPolicy
from repro.core import Remos, Timeframe
from repro.fx.program import FxProgram
from repro.fx.runtime import FxRuntime


@dataclass
class AdaptationModule:
    """Re-selects nodes at migration points and migrates when worthwhile."""

    remos: Remos
    pool: list[str]
    policy: MigrationPolicy = field(default_factory=MigrationPolicy)
    timeframe: Timeframe | None = None
    check_seconds: float = 3.0
    migration_seconds: float = 0.5
    checks: int = 0
    migrations: int = 0
    #: Migrations forced by the predicted-collapse trigger alone (also
    #: counted in :attr:`migrations`).
    predicted_migrations: int = 0

    def hook(self, runtime: FxRuntime, program: FxProgram, index: int):
        """The adaptation hook to pass to :meth:`FxRuntime.launch`."""
        if index == 0 or index % self.policy.check_every != 0:
            return  # first mapping comes from start-up selection
            yield  # pragma: no cover - generator marker
        self.checks += 1
        yield from runtime.charge_adaptation(self.check_seconds)
        decision = self._decide(runtime, program)
        if decision is not None:
            runtime.remap(decision, iteration=index)
            self.migrations += 1
            yield from runtime.charge_adaptation(self.migration_seconds)

    def _decide(self, runtime: FxRuntime, program: FxProgram) -> list[str] | None:
        timeframe = self.timeframe or Timeframe.current()
        _, current, candidate, current_cost, candidate_cost = self._cluster(
            runtime, program, timeframe
        )
        if set(candidate) != set(current) and self.policy.should_migrate(
            current_cost, candidate_cost
        ):
            return candidate
        return self._decide_predictive(runtime, program, current)

    def _cluster(self, runtime: FxRuntime, program: FxProgram, timeframe: Timeframe):
        """One clustering pass under *timeframe*.

        Returns ``(graph, current, candidate, current_cost,
        candidate_cost)`` — the §7.3 loop's raw material, reused by both
        the reactive (CURRENT/HISTORY) and predictive (FUTURE) passes.
        """
        graph = self.remos.get_graph(list(self.pool), timeframe)
        current = list(runtime.mapping.hosts)

        own_loads = None
        if self.policy.correct_own_traffic:
            own_loads = own_traffic_loads(
                graph, current, pair_rate=self._own_pair_rate(runtime, program)
            )

        names, matrix = communication_distances(
            graph, list(self.pool), own_loads=own_loads
        )
        candidate = greedy_cluster_best_start(names, matrix, runtime.mapping.size)
        return (
            graph,
            current,
            candidate,
            cluster_cost(names, matrix, current),
            cluster_cost(names, matrix, candidate),
        )

    def _decide_predictive(
        self, runtime: FxRuntime, program: FxProgram, current: list[str]
    ) -> list[str] | None:
        """Migrate on *predicted* collapse before the observed rate drops.

        Armed by the policy's ``predict_horizon``/``predict_collapse_bps``:
        queries the FUTURE logical graph and, when the forecast q1 of
        available bandwidth inside the current mapping is below the floor,
        re-clusters on that predicted graph — so the destination is chosen
        by where bandwidth is *going to be*, not where it was.
        """
        policy = self.policy
        if not policy.predictive:
            return None
        future = Timeframe.future(policy.predict_horizon, predictor=policy.predictor)
        graph, current, candidate, _, _ = self._cluster(runtime, program, future)
        if set(candidate) == set(current):
            return None
        if self._mapping_floor(graph, current) >= policy.predict_collapse_bps:
            return None
        self.predicted_migrations += 1
        return candidate

    @staticmethod
    def _mapping_floor(graph, hosts: list[str]) -> float:
        """The worst q1 available bandwidth on any intra-mapping route."""
        floor = float("inf")
        for i, src in enumerate(hosts):
            for dst in hosts[i + 1 :]:
                if not (graph.has_node(src) and graph.has_node(dst)):
                    continue
                for a, b in ((src, dst), (dst, src)):
                    for edge, from_node in graph.path_edges(a, b):
                        floor = min(floor, edge.available_from(from_node).q1)
        return floor

    @staticmethod
    def _own_pair_rate(runtime: FxRuntime, program: FxProgram) -> float:
        """Estimate the app's own per-ordered-pair traffic rate (bits/s).

        Derived from the program's declared communication pattern and the
        last measured iteration time — exactly the information the paper
        says the application has about itself.
        """
        report = runtime.report
        if not report.iteration_times:
            return 0.0
        iteration_time = report.iteration_times[-1]
        if iteration_time <= 0:
            return 0.0
        total_bytes = sum(
            p.bytes_per_iteration for p in program.communication_pattern()
        )
        size = runtime.mapping.size
        ordered_pairs = max(1, size * (size - 1))
        return total_bytes * 8.0 / iteration_time / ordered_pairs
