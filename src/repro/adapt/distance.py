"""Communication distances between candidate hosts.

Following §7.3: "The logical topology graph is used to compute a matrix
representing distance between all pairs of nodes.  For our testbed, the
distance is based only on bandwidth since latency between any pair of
nodes is virtually the same."  Distance is the reciprocal of the bottleneck
available bandwidth on the logical route (symmetrised by taking the worse
direction, since collective patterns use both).

The *own-traffic correction* (§8.3): Remos "does not distinguish between
different types or sources of traffic", so a running application sees its
own flows as congestion and would "migrate to avoid its own traffic, which
is clearly a decision based on an inherent fallacy".  The fix the paper
prescribes — "the application knows how much communication traffic it
generates and factors that into making migration decisions" — is
implemented by adding the application's estimated per-direction load back
onto the logical links its current mapping uses.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import RemosGraph
from repro.util.errors import ConfigurationError


def own_traffic_loads(
    graph: RemosGraph,
    active_hosts: list[str],
    pair_rate: float,
) -> dict[tuple[str, str], float]:
    """Estimated per-(edge, direction) load from the app's own flows.

    Assumes the all-to-all-dominated patterns of the evaluation apps: each
    ordered pair of active hosts carries *pair_rate* bits/s.  Returns
    {(edge name, from node): bits/s}.
    """
    loads: dict[tuple[str, str], float] = {}
    for src in active_hosts:
        for dst in active_hosts:
            if src == dst or not (graph.has_node(src) and graph.has_node(dst)):
                continue
            for edge, from_node in graph.path_edges(src, dst):
                key = (edge.name, from_node)
                loads[key] = loads.get(key, 0.0) + pair_rate
    return loads


# Weight converting path latency (seconds) into distance units (1/bits/s).
# Chosen so bandwidth dominates — a 10x bandwidth drop on a 100 Mbps link
# changes distance by 9e-8 while an extra 2 x 0.5 ms router hop adds only
# 1e-9 — yet hop count still breaks bandwidth ties, which is how the paper's
# selection prefers m-5 (same router as m-4) over equally-idle aspen hosts.
LATENCY_WEIGHT = 1e-6


def communication_distances(
    graph: RemosGraph,
    hosts: list[str],
    quantile: str = "median",
    own_loads: dict[tuple[str, str], float] | None = None,
    latency_weight: float = LATENCY_WEIGHT,
) -> tuple[list[str], np.ndarray]:
    """All-pairs symmetric distance matrix over *hosts*.

    Distance = 1 / bottleneck-available-bandwidth + latency_weight x path
    latency; the latency term is a secondary criterion (set it to 0 for the
    paper's pure-bandwidth testbed variant).  ``own_loads`` (from
    :func:`own_traffic_loads`) is credited back to the availability of the
    edges it covers, so an application does not flee its own traffic.
    """
    for host in hosts:
        if not graph.has_node(host):
            raise ConfigurationError(f"host {host!r} not in the logical graph")
    own_loads = own_loads or {}
    size = len(hosts)
    matrix = np.zeros((size, size))
    for i, src in enumerate(hosts):
        for j, dst in enumerate(hosts):
            if j <= i:
                continue
            worst = float("inf")
            for a, b in ((src, dst), (dst, src)):
                available = _path_available_corrected(graph, a, b, quantile, own_loads)
                worst = min(worst, available)
            distance = 1.0 / max(worst, 1.0)
            distance += latency_weight * graph.path_latency(src, dst)
            matrix[i, j] = distance
            matrix[j, i] = distance
    return list(hosts), matrix


def _path_available_corrected(
    graph: RemosGraph,
    src: str,
    dst: str,
    quantile: str,
    own_loads: dict[tuple[str, str], float],
) -> float:
    bottleneck = float("inf")
    for edge, from_node in graph.path_edges(src, dst):
        available = getattr(edge.available_from(from_node), quantile)
        credit = own_loads.get((edge.name, from_node), 0.0)
        # Adding the credit cannot exceed the physical capacity.
        corrected = min(edge.capacity, available + credit)
        bottleneck = min(bottleneck, corrected)
    return bottleneck
