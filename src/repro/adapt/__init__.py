"""Network-aware adaptation: clustering, node selection, runtime migration.

The paper's usage framework (§7) is a tool-chain of Remos + the Fx runtime
+ "a clustering module".  This package provides:

* :func:`greedy_cluster` — the paper's heuristic: start from a given node,
  repeatedly add the node with the shortest distance to the cluster;
* :func:`optimal_cluster` — exhaustive search (the problem is NP-hard in
  general; exact answers for small pools calibrate the heuristic);
* :func:`select_nodes` — the full §7.3 pipeline: ``remos_get_graph`` →
  distance matrix → clustering;
* :class:`AdaptationModule` — the runtime adaptation hook: re-select nodes
  at migration points, migrate when the predicted improvement beats a
  threshold, optionally correcting for the application's *own* traffic
  (§8.3's "inherent fallacy" of migrating away from yourself).
"""

from repro.adapt.clustering import (
    cluster_cost,
    greedy_cluster,
    greedy_cluster_best_start,
    optimal_cluster,
)
from repro.adapt.distance import communication_distances
from repro.adapt.selection import (
    minimum_nodes,
    select_nodes,
    select_nodes_compute_aware,
    select_nodes_flow_aware,
    select_nodes_for_program,
)
from repro.adapt.policies import MigrationPolicy
from repro.adapt.adaptation import AdaptationModule
from repro.adapt.depth import DepthAdapter

__all__ = [
    "greedy_cluster",
    "greedy_cluster_best_start",
    "optimal_cluster",
    "cluster_cost",
    "communication_distances",
    "select_nodes",
    "select_nodes_for_program",
    "minimum_nodes",
    "select_nodes_compute_aware",
    "select_nodes_flow_aware",
    "MigrationPolicy",
    "AdaptationModule",
    "DepthAdapter",
]
