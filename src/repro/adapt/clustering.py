"""Clustering over a communication-distance matrix.

"The application provides an initial start node ... Next, the node with
the shortest distance to the existing nodes in the cluster is determined
and added to the cluster ... until the cluster contains the number of
nodes needed for execution" (§7.2).  Distances come from
:func:`repro.adapt.distance.communication_distances`.

Exact optimal clustering "is equivalent to a k-clique problem which is
known to be NP-hard" (§7.2 fn.); :func:`optimal_cluster` does the
exhaustive search anyway for the small pools of the ablation benchmarks.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.util.errors import ConfigurationError


def _index_of(names: list[str], name: str) -> int:
    try:
        return names.index(name)
    except ValueError:
        raise ConfigurationError(f"node {name!r} not in candidate pool {names}") from None


def cluster_cost(names: list[str], matrix: np.ndarray, cluster: list[str]) -> float:
    """Total pairwise distance within *cluster* — lower is better.

    The sum over unordered pairs matches all-to-all-style communication,
    which dominates both evaluation applications.
    """
    indices = [_index_of(names, name) for name in cluster]
    total = 0.0
    for a, b in itertools.combinations(indices, 2):
        total += matrix[a, b]
    return float(total)


def greedy_cluster(
    names: list[str], matrix: np.ndarray, start: str, k: int
) -> list[str]:
    """The paper's greedy heuristic (§7.2).

    Deterministic: ties are broken by pool order, which is how the paper's
    fixed node numbering behaves.
    """
    if not 1 <= k <= len(names):
        raise ConfigurationError(f"cluster size {k} out of range 1..{len(names)}")
    if matrix.shape != (len(names), len(names)):
        raise ConfigurationError("distance matrix shape does not match names")
    cluster = [start]
    chosen = {_index_of(names, start)}
    while len(cluster) < k:
        best_index = None
        best_distance = float("inf")
        for candidate in range(len(names)):
            if candidate in chosen:
                continue
            distance = sum(matrix[candidate, member] for member in chosen)
            if distance < best_distance - 1e-15:
                best_distance = distance
                best_index = candidate
        assert best_index is not None
        chosen.add(best_index)
        cluster.append(names[best_index])
    return cluster


def greedy_cluster_best_start(
    names: list[str], matrix: np.ndarray, k: int
) -> list[str]:
    """Greedy clustering tried from every start node; best cluster wins.

    Used by runtime adaptation, where no start node is pinned and the
    program should land "on the part of the network with the least amount
    of traffic" (§8.3).
    """
    best: list[str] | None = None
    best_cost = float("inf")
    for start in names:
        cluster = greedy_cluster(names, matrix, start, k)
        cost = cluster_cost(names, matrix, cluster)
        if cost < best_cost - 1e-15:
            best_cost = cost
            best = cluster
    assert best is not None
    return best


def optimal_cluster(
    names: list[str], matrix: np.ndarray, k: int, start: str | None = None
) -> list[str]:
    """Exhaustive minimum-total-distance cluster (exponential; small pools).

    With *start* given, only clusters containing it are considered.
    """
    if not 1 <= k <= len(names):
        raise ConfigurationError(f"cluster size {k} out of range 1..{len(names)}")
    candidates = list(names)
    best: tuple[str, ...] | None = None
    best_cost = float("inf")
    for combo in itertools.combinations(candidates, k):
        if start is not None and start not in combo:
            continue
        cost = cluster_cost(names, matrix, list(combo))
        if cost < best_cost - 1e-15:
            best_cost = cost
            best = combo
    if best is None:
        raise ConfigurationError(f"no cluster of size {k} contains {start!r}")
    return list(best)
