"""Migration decision policies."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class MigrationPolicy:
    """When should a running program move?

    Attributes
    ----------
    threshold:
        Minimum *relative* improvement in expected communication cost
        before migrating (0.0 reproduces the paper's "migration was done
        whenever the potential improvement was positive", with its
        oscillation problems; the ablation sweeps this).
    correct_own_traffic:
        Apply the §8.3 self-traffic correction before comparing clusters.
    check_every:
        Consider adaptation at every n-th migration point.
    predict_horizon:
        Seconds ahead the predictive trigger looks (0 disables it).  With
        a horizon set, each check also asks Remos for the **FUTURE**
        logical graph: when the forecast pessimistic quartile (q1) of
        available bandwidth inside the current mapping falls below
        ``predict_collapse_bps``, the application migrates *before* the
        observed rate degrades — adaptation driven by the paper's
        "expectations of future availability" instead of the rear-view
        mirror.
    predict_collapse_bps:
        The predicted-availability floor (bits/s) that triggers the
        predictive migration.
    predictor:
        Forecaster the predictive trigger queries with (``"auto"``
        resolves per series from measured backtest skill).
    """

    threshold: float = 0.0
    correct_own_traffic: bool = True
    check_every: int = 1
    predict_horizon: float = 0.0
    predict_collapse_bps: float = 0.0
    predictor: str = "auto"

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ConfigurationError("threshold must be non-negative")
        if self.check_every < 1:
            raise ConfigurationError("check_every must be >= 1")
        if self.predict_horizon < 0 or self.predict_collapse_bps < 0:
            raise ConfigurationError(
                "predict_horizon and predict_collapse_bps must be non-negative"
            )

    @property
    def predictive(self) -> bool:
        """True when the predicted-collapse trigger is armed."""
        return self.predict_horizon > 0 and self.predict_collapse_bps > 0

    def should_migrate(self, current_cost: float, candidate_cost: float) -> bool:
        """True when the candidate beats the incumbent by the threshold."""
        if current_cost <= 0:
            return False
        improvement = (current_cost - candidate_cost) / current_cost
        return improvement > self.threshold
