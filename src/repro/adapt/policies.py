"""Migration decision policies."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class MigrationPolicy:
    """When should a running program move?

    Attributes
    ----------
    threshold:
        Minimum *relative* improvement in expected communication cost
        before migrating (0.0 reproduces the paper's "migration was done
        whenever the potential improvement was positive", with its
        oscillation problems; the ablation sweeps this).
    correct_own_traffic:
        Apply the §8.3 self-traffic correction before comparing clusters.
    check_every:
        Consider adaptation at every n-th migration point.
    """

    threshold: float = 0.0
    correct_own_traffic: bool = True
    check_every: int = 1

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ConfigurationError("threshold must be non-negative")
        if self.check_every < 1:
            raise ConfigurationError("check_every must be >= 1")

    def should_migrate(self, current_cost: float, candidate_cost: float) -> bool:
        """True when the candidate beats the incumbent by the threshold."""
        if current_cost <= 0:
            return False
        improvement = (current_cost - candidate_cost) / current_cost
        return improvement > self.threshold
