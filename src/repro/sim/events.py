"""Event primitives for the DES kernel.

An :class:`Event` has a three-stage lifecycle:

1. *pending* — created, nobody has scheduled it;
2. *triggered* — given a value (or exception) and placed on the engine's
   heap with a fire time;
3. *processed* — the engine popped it and ran its callbacks, resuming any
   processes that were waiting on it.

Composite events (:class:`AllOf` / :class:`AnyOf`) trigger when their
children do, which is how processes wait for "all transfers finished" or
"first reply or timeout".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

# Sentinel distinguishing "not yet triggered" from a legitimate None value.
_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries whatever object the interrupter passed.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A single occurrence in simulated time that processes can wait on."""

    def __init__(self, env: "Engine"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None

    @property
    def triggered(self) -> bool:
        """True once the event has a value and a scheduled fire time."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is in the past)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded; only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception object for failed events)."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with *value* after *delay*."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters will see *exception* raised."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env.schedule(self, delay)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay, created pre-triggered."""

    def __init__(self, env: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay)


class Condition(Event):
    """Waits for some subset of *events*, defined by *evaluate*.

    The condition's value is a dict mapping each already-triggered child
    event to its value, so ``yield AllOf(...)`` hands back all results.
    A failed child fails the whole condition immediately.
    """

    def __init__(
        self,
        env: "Engine",
        evaluate: Callable[[list[Event], int], bool],
        events: list[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different engines")

        if not self._events:
            self.succeed({})
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            elif event.callbacks is not None:
                event.callbacks.append(self._check)
            else:  # pragma: no cover - defensive
                raise SimulationError("event in inconsistent state")

    def _collect_values(self) -> dict[Event, Any]:
        # Only *processed* children count: a Timeout is born triggered but
        # has not "happened" until the engine pops it off the heap.
        return {e: e.value for e in self._events if e.processed and e.ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if event._ok is False:
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Evaluate function: true once every child has triggered."""
        return count == len(events)

    @staticmethod
    def any_event(events: list[Event], count: int) -> bool:
        """Evaluate function: true once at least one child has triggered."""
        return count >= 1


class AllOf(Condition):
    """Condition that fires when all child events have fired."""

    def __init__(self, env: "Engine", events: list[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires when any child event has fired."""

    def __init__(self, env: "Engine", events: list[Event]):
        super().__init__(env, Condition.any_event, events)
