"""Counting resources for the DES kernel.

A :class:`Resource` models a pool of identical servers (e.g. a CPU, a
collector's single SNMP socket).  Processes ``yield resource.request()``,
hold the slot, and must ``release`` it when done.  Context-manager support
makes the hold/release pairing explicit::

    with resource.request() as req:
        yield req
        ... hold the resource ...
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.sim.events import Event
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Request(Event):
    """Pending acquisition of one slot of a resource."""

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request from the wait queue."""
        self.resource._cancel(self)


class Resource:
    """FIFO resource with integer capacity."""

    def __init__(self, env: "Engine", capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self._users: set[Request] = set()
        self._queue: list[tuple[float, int, Request]] = []
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: float = 0.0) -> Request:
        """Ask for one slot; the returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return the slot held by *request* and wake the next waiter."""
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            # Releasing an unfulfilled request is treated as cancellation,
            # which lets `with resource.request()` unwind cleanly after an
            # interrupt arrives while still queued.
            self._cancel(request)

    def _enqueue(self, request: Request) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (request.priority, self._seq, request))
        self._grant_next()

    def _cancel(self, request: Request) -> None:
        self._queue = [entry for entry in self._queue if entry[2] is not request]
        heapq.heapify(self._queue)
        self._grant_next()

    def _grant_next(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            _, _, request = heapq.heappop(self._queue)
            if request.triggered:  # pragma: no cover - defensive
                continue
            self._users.add(request)
            request.succeed(request)


class PriorityResource(Resource):
    """Resource whose queue is ordered by the request's priority (low first).

    Ties are FIFO.  Used where the model wants e.g. application probes to
    outrank background management traffic.
    """

    def request(self, priority: float = 0.0) -> Request:
        return Request(self, priority)
