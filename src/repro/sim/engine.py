"""The simulation engine: virtual clock plus event heap.

The engine is deliberately minimal — scheduling, time, and process creation.
Model-level concepts (links, flows, collectors) live in higher packages and
interact with the engine only through events.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator

from repro import obs
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.util.errors import SimulationError

_log = obs.get_logger("repro.sim.engine")


class Engine:
    """Discrete-event engine with a float-seconds virtual clock.

    Parameters
    ----------
    start:
        Initial clock value (seconds).
    strict:
        When true (the default), an exception escaping a process body
        propagates out of :meth:`run` immediately.  When false it fails the
        process's event instead, letting supervisors observe it.
    """

    def __init__(self, start: float = 0.0, strict: bool = True):
        self._now = float(start)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self.events_processed = 0
        self.strict = strict
        self._active_process: Process | None = None
        # Keep every live process reachable.  A process waiting forever on
        # an event nobody else references would otherwise form an
        # unreachable cycle; Python's GC would close its generator, firing
        # `finally` blocks at arbitrary simulation times.
        self._live_processes: set[Process] = set()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Place a triggered event on the heap to fire after *delay*."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _, event = heapq.heappop(self._heap)
        self._now = when
        self.events_processed += 1
        event._run_callbacks()

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the heap empties, a time is reached, or an event fires.

        * ``until=None`` — run to exhaustion.
        * ``until=<float>`` — run to that simulated time (clock lands there).
        * ``until=<Event>`` — run until that event has been processed and
          return its value (raising if it failed).
        """
        if _log.enabled_for("debug"):
            return self._run_logged(until)
        return self._run(until)

    def _run_logged(self, until: float | Event | None) -> Any:
        events_before, started = self.events_processed, self._now
        try:
            return self._run(until)
        finally:
            _log.debug(
                "run",
                events=self.events_processed - events_before,
                sim_from=started,
                sim_to=self._now,
            )

    def _run(self, until: float | Event | None = None) -> Any:
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.processed:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event fired"
                    )
                self.step()
            if stop_event.ok:
                return stop_event.value
            raise stop_event.value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(f"cannot run backwards to {horizon} (now={self._now})")
            while self._heap and self._heap[0][0] <= horizon:
                self.step()
            self._now = horizon
            return None
        while self._heap:
            self.step()
        return None

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing after *delay* seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str | None = None) -> Process:
        """Start *generator* as a process; returns its completion event."""
        return Process(self, generator, name=name)

    def all_of(self, events: list[Event]) -> AllOf:
        """Event firing once all of *events* have fired."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Event firing once any of *events* has fired."""
        return AnyOf(self, events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now:.6g} pending={len(self._heap)}>"
