"""Unbounded-or-bounded item store (message queue) for the DES kernel.

Stores back the message-passing layer of the Fx-like runtime: ``put`` wakes a
pending ``get`` and vice versa.  Items are delivered FIFO.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.events import Event
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class StorePut(Event):
    """Pending insertion of an item into a store."""

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._puts.append(self)
        store._settle()


class StoreGet(Event):
    """Pending retrieval of an item from a store."""

    def __init__(self, store: "Store", predicate: Callable[[Any], bool] | None = None):
        super().__init__(store.env)
        self.predicate = predicate
        store._gets.append(self)
        store._settle()


class Store:
    """FIFO item store with optional capacity and filtered gets."""

    def __init__(self, env: "Engine", capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._puts: deque[StorePut] = deque()
        self._gets: deque[StoreGet] = deque()

    def put(self, item: Any) -> StorePut:
        """Offer *item*; the event fires once the store has room for it."""
        return StorePut(self, item)

    def get(self, predicate: Callable[[Any], bool] | None = None) -> StoreGet:
        """Take the oldest item (matching *predicate* if given)."""
        return StoreGet(self, predicate)

    def _settle(self) -> None:
        # Admit queued puts while there is room.
        progressed = True
        while progressed:
            progressed = False
            while self._puts and len(self.items) < self.capacity:
                put = self._puts.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Satisfy gets from available items.
            remaining: deque[StoreGet] = deque()
            while self._gets:
                get = self._gets.popleft()
                index = self._find(get.predicate)
                if index is None:
                    remaining.append(get)
                else:
                    item = self.items[index]
                    del self.items[index]
                    get.succeed(item)
                    progressed = True
            self._gets = remaining

    def _find(self, predicate: Callable[[Any], bool] | None) -> int | None:
        if predicate is None:
            return 0 if self.items else None
        for index, item in enumerate(self.items):
            if predicate(item):
                return index
        return None

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Store items={len(self.items)} puts={len(self._puts)} gets={len(self._gets)}>"
