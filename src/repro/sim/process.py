"""Generator-based processes for the DES kernel.

A process wraps a Python generator.  Each ``yield`` hands the engine an
:class:`~repro.sim.events.Event`; the process resumes when that event fires,
receiving the event's value as the result of the ``yield`` expression (or
having the event's exception raised at the yield point).

A :class:`Process` is itself an Event — it triggers when the generator
returns — so processes can wait on each other and be combined with
``AllOf``/``AnyOf``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event, Interrupt
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine


class Process(Event):
    """A running coroutine inside the simulation."""

    def __init__(self, env: "Engine", generator: Generator[Event, Any, Any], name: str | None = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process body must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        env._live_processes.add(self)
        # Bootstrap: resume the generator at time now.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        The interrupt is delivered via an immediately-scheduled event so the
        interrupter's own execution is not re-entered.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        delivery = Event(self.env)
        delivery.callbacks.append(self._deliver_interrupt)
        delivery.succeed(Interrupt(cause))

    def _deliver_interrupt(self, event: Event) -> None:
        if self.triggered:  # finished in the meantime; drop the interrupt
            return
        # Detach from the event we were waiting on so its eventual firing
        # does not resume us a second time.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._target = None
        self._step(event.value, throw=True)

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok is False:
            self._step(event.value, throw=True)
        else:
            self._step(event.value, throw=False)

    def _step(self, value: Any, throw: bool) -> None:
        self.env._active_process = self
        try:
            if throw:
                next_event = self._generator.throw(value)
            else:
                next_event = self._generator.send(value)
        except StopIteration as stop:
            self.env._live_processes.discard(self)
            self.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # An uncaught interrupt terminates the process as failed.
            self.env._live_processes.discard(self)
            self.fail(interrupt)
            return
        except BaseException as exc:
            self.env._live_processes.discard(self)
            if self.env.strict:
                raise
            self.fail(exc)
            return
        finally:
            self.env._active_process = None

        if not isinstance(next_event, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {next_event!r}; processes must yield events"
            )
            self._generator.close()
            raise error
        if next_event.env is not self.env:
            raise SimulationError("process yielded an event from a different engine")

        self._target = next_event
        if next_event.callbacks is not None:
            next_event.callbacks.append(self._resume)
        else:
            # Event already processed: resume immediately via a fresh event so
            # scheduling order stays deterministic.
            relay = Event(self.env)
            relay.callbacks.append(self._resume)
            if next_event.ok:
                relay.succeed(next_event.value)
            else:
                relay.fail(next_event.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
