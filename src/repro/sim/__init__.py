"""Discrete-event simulation kernel.

A small, self-contained process-based DES in the style of SimPy: an
:class:`Engine` owns virtual time and an event heap; :class:`Process`
coroutines (plain Python generators) ``yield`` events to wait on them.

Example
-------
>>> from repro.sim import Engine
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> env = Engine()
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from repro.sim.events import (
    Event,
    Timeout,
    Condition,
    AllOf,
    AnyOf,
    Interrupt,
)
from repro.sim.process import Process
from repro.sim.engine import Engine
from repro.sim.resources import Resource, PriorityResource
from repro.sim.store import Store

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "PriorityResource",
    "Store",
]
