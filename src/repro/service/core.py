"""RemosService: the sweep scheduler and thread-safe query front end."""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor

from repro import obs
from repro.collector import Collector, CollectorMaster
from repro.core import Flow, FlowInfoResult, FlowQuery, Remos, Timeframe
from repro.core.snapshot import Snapshot
from repro.sim import Engine
from repro.util.errors import ConfigurationError, QueryError

_log = obs.get_logger("repro.service")


class _Pending:
    """One waiting flow_info request inside the coalescing queue."""

    __slots__ = ("query", "timeframe", "result", "error", "done")

    def __init__(self, query: FlowQuery, timeframe: Timeframe):
        self.query = query
        self.timeframe = timeframe
        self.result: FlowInfoResult | None = None
        self.error: BaseException | None = None
        self.done = False

    def outcome(self) -> FlowInfoResult:
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class RemosService:
    """A snapshot-isolated Remos query service over one collector stack.

    One background **sweeper** thread owns every mutation: it steps the
    simulation engine, refreshes the collector master (when there is one),
    and publishes each completed sweep as an immutable snapshot.  Query
    methods are safe to call from any number of threads; each runs against
    the snapshot current at its start (``remos.snapshot()`` exposes it for
    differential testing).

    Parameters
    ----------
    collector:
        The collector (or :class:`CollectorMaster`) to serve queries from.
    env:
        The simulation engine the sweeper advances.  Only the sweeper
        thread may run it.
    sweep_interval:
        Wall-clock seconds between sweeper iterations.
    sim_step:
        Simulated seconds advanced per sweeper iteration.
    max_batch:
        Most flow_info requests answered by one coalesced batch.
    workers:
        Thread-pool size for :meth:`flow_info_async`.
    """

    def __init__(
        self,
        collector: Collector,
        env: Engine,
        sweep_interval: float = 0.02,
        sim_step: float = 1.0,
        max_batch: int = 8,
        workers: int = 4,
    ):
        if max_batch < 1:
            raise ConfigurationError("max_batch must be at least 1")
        self._collector = collector
        self._env = env
        self._sweep_interval = sweep_interval
        self._sim_step = sim_step
        self._max_batch = max_batch
        self._workers = workers
        #: Queries never publish: the sweeper is the single writer.
        self.remos = Remos(collector, auto_publish=False)
        self._stop_event = threading.Event()
        self._sweeper: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._started = False
        # Coalescing state, all guarded by _cond.
        self._cond = threading.Condition()
        self._queue: dict[Timeframe, list[_Pending]] = {}
        self._leader_busy = False
        # Service counters (leader/sweeper-only writers).
        self.sweeps = 0
        self.publishes = 0
        self.batches_executed = 0
        self.queries_batched = 0
        self.sweep_errors = 0

    @classmethod
    def from_world(cls, world, **kwargs) -> "RemosService":
        """Build a service over a testbed :class:`~repro.testbed.World`."""
        if world.collector is None:
            raise ConfigurationError("world has no collector")
        return cls(world.collector, world.env, **kwargs)

    # -- lifecycle ---------------------------------------------------------------

    def start(self, warmup: float = 0.0) -> "RemosService":
        """Run the collector to readiness (+ *warmup* simulated seconds),
        publish the first snapshot, and start the sweeper thread."""
        if self._started:
            return self
        self._started = True
        if not self._collector.ready:
            ready = self._collector.start()
            self._env.run(until=ready)
        if warmup > 0:
            self._env.run(until=self._env.now + warmup)
        if isinstance(self._collector, CollectorMaster):
            self._collector.refresh(allow_partial=True)
        self.remos.publish()
        self.publishes = self.remos.publisher.publishes
        self._publish_service_gauges()
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="remos-query"
        )
        self._sweeper = threading.Thread(
            target=self._sweep_loop, name="remos-sweeper", daemon=True
        )
        self._sweeper.start()
        _log.info("service_started", sweep_interval=self._sweep_interval)
        return self

    def stop(self) -> None:
        """Stop the sweeper and the collector (idempotent)."""
        if not self._started:
            return
        self._stop_event.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout=5.0)
            self._sweeper = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._collector.stop()
        self._started = False
        self._stop_event = threading.Event()
        _log.info("service_stopped", sweeps=self.sweeps, publishes=self.publishes)

    def __enter__(self) -> "RemosService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    @property
    def running(self) -> bool:
        return self._started

    def _sweep_loop(self) -> None:
        """The single writer: advance, merge, publish, repeat."""
        while not self._stop_event.wait(self._sweep_interval):
            try:
                self._env.run(until=self._env.now + self._sim_step)
                if isinstance(self._collector, CollectorMaster):
                    self._collector.refresh(allow_partial=True)
                self.remos.publish()
                self.sweeps += 1
                self.publishes = self.remos.publisher.publishes
                obs.inc(
                    "remos_service_sweeps_total",
                    help="Sweeper iterations completed by the query service",
                )
            except Exception as exc:
                # Keep serving the last good snapshot; a broken sweep must
                # never take the readers down.
                self.sweep_errors += 1
                _log.error("sweep_failed", error=f"{type(exc).__name__}: {exc}")

    def _publish_service_gauges(self) -> None:
        registry = obs.get_registry()
        if not obs.metrics_enabled():
            return
        publisher = self.remos.publisher
        registry.gauge(
            "remos_snapshot_age_seconds",
            help="Wall-clock seconds since the current snapshot was published",
        ).set_function(
            lambda: (
                0.0
                if publisher.current() is None
                else publisher.current().age_seconds()
            )
        )

    # -- queries (reader side) ---------------------------------------------------

    def snapshot(self) -> Snapshot:
        """The snapshot queries are currently answered from."""
        return self.remos.snapshot()

    def flow_info(
        self,
        fixed_flows: list[Flow] | None = None,
        variable_flows: list[Flow] | None = None,
        independent_flows: list[Flow] | None = None,
        timeframe: Timeframe | None = None,
    ) -> FlowInfoResult:
        """A flow query, coalesced with concurrent ones when possible.

        Requests sharing a timeframe that arrive while another is being
        answered are drained by one leader into a single
        :meth:`~repro.core.api.Remos.flow_info_batch` call — identical
        answers, shared per-epoch work.  A solitary request degenerates to
        a batch of one.
        """
        timeframe = timeframe or Timeframe.current()
        query = FlowQuery(
            fixed=tuple(fixed_flows or ()),
            variable=tuple(variable_flows or ()),
            independent=tuple(independent_flows or ()),
        )
        pending = _Pending(query, timeframe)
        with self._cond:
            self._queue.setdefault(timeframe, []).append(pending)
        while True:
            with self._cond:
                while not pending.done and self._leader_busy:
                    self._cond.wait(timeout=0.5)
                if pending.done:
                    return pending.outcome()
                self._leader_busy = True
                group = self._queue.get(pending.timeframe, [])
                take = group[: self._max_batch]
                rest = group[self._max_batch :]
                if rest:
                    self._queue[pending.timeframe] = rest
                else:
                    self._queue.pop(pending.timeframe, None)
            try:
                if take:
                    self._execute_group(take)
            finally:
                with self._cond:
                    self._leader_busy = False
                    self._cond.notify_all()
            if pending.done:
                return pending.outcome()

    def _execute_group(self, group: list[_Pending]) -> None:
        """Answer one drained group with a single batched query."""
        timeframe = group[0].timeframe
        try:
            results = self.remos.flow_info_batch(
                [p.query for p in group], timeframe
            )
        except QueryError:
            # One invalid scenario poisons a whole batch; retry each
            # request alone so the error lands only where it belongs.
            for p in group:
                try:
                    p.result = self.remos.flow_info_batch([p.query], timeframe)[0]
                except BaseException as exc:
                    p.error = exc
                p.done = True
        except BaseException as exc:
            for p in group:
                p.error = exc
                p.done = True
        else:
            for p, result in zip(group, results):
                p.result = result
                p.done = True
        self.batches_executed += 1
        self.queries_batched += len(group)
        obs.inc(
            "remos_service_batches_total",
            help="Coalesced flow_info batches executed by the query service",
        )
        obs.inc(
            "remos_service_batched_queries_total",
            amount=len(group),
            help="flow_info requests answered through coalesced batches",
        )

    def flow_info_async(self, **kwargs) -> Future:
        """Submit :meth:`flow_info` to the service's thread pool."""
        if self._executor is None:
            raise ConfigurationError("service is not running; call start() first")
        return self._executor.submit(self.flow_info, **kwargs)

    def get_graph(self, nodes: list[str], timeframe: Timeframe | None = None):
        """Delegate to :meth:`Remos.get_graph` (snapshot-isolated)."""
        return self.remos.get_graph(nodes, timeframe)

    def node_info(self, host: str, timeframe: Timeframe | None = None):
        """Delegate to :meth:`Remos.node_info` (snapshot-isolated)."""
        return self.remos.node_info(host, timeframe)

    def check_admission(self, fixed_flows: list[Flow], timeframe: Timeframe | None = None):
        """Delegate to :meth:`Remos.check_admission` (snapshot-isolated)."""
        return self.remos.check_admission(fixed_flows, timeframe)

    # -- telemetry ---------------------------------------------------------------

    def telemetry(self) -> dict:
        """The facade's telemetry plus a service section."""
        report = self.remos.telemetry()
        report["service"] = {
            "running": self.running,
            "sweeps": self.sweeps,
            "sweep_errors": self.sweep_errors,
            "publishes": self.publishes,
            "batches_executed": self.batches_executed,
            "queries_batched": self.queries_batched,
            "sweep_interval": self._sweep_interval,
            "sim_step": self._sim_step,
            "max_batch": self._max_batch,
        }
        return report

    def metrics_text(self) -> str:
        """The Prometheus exposition of the global registry."""
        return obs.get_registry().to_prometheus()
