"""RemosService: the sweep scheduler and thread-safe query front end.

Two layers live here:

* :class:`QueryFrontEnd` — the *reader* side: snapshot-isolated query
  methods, the coalescing queue, latency SLOs, the slow-query log,
  health and telemetry.  It owns no data source of its own — something
  else must publish snapshots through ``self.remos``.  The multi-process
  worker replicas (:mod:`repro.service.workers`) subclass it directly.
* :class:`RemosService` — the full single-process service: a front end
  plus the background **sweeper** thread that owns every mutation
  (advance the engine, refresh the collector master, publish).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from repro import obs
from repro.collector import Cell, Collector, CollectorMaster
from repro.core import Flow, FlowInfoResult, FlowQuery, Remos, Timeframe
from repro.core.snapshot import Snapshot
from repro.obs.slo import SLORegistry
from repro.obs.slowlog import SlowQueryLog
from repro.service.admission import AdmissionController
from repro.sim import Engine
from repro.util.errors import ConfigurationError, QueryError

_log = obs.get_logger("repro.service")


class _Pending:
    """One waiting flow_info request inside the coalescing queue."""

    __slots__ = ("query", "timeframe", "result", "error", "done", "leader_span")

    def __init__(self, query: FlowQuery, timeframe: Timeframe):
        self.query = query
        self.timeframe = timeframe
        self.result: FlowInfoResult | None = None
        self.error: BaseException | None = None
        self.done = False
        #: ``(trace_id, span_id)`` of the batch span that answered this
        #: request — followers link it from their own trace.
        self.leader_span: tuple[str, str] | None = None

    def outcome(self) -> FlowInfoResult:
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class QueryFrontEnd:
    """The thread-safe reader side of a Remos service.

    Query methods are safe to call from any number of threads; each runs
    against the snapshot current at its start (``remos.snapshot()``
    exposes it for differential testing).  Concurrent ``flow_info``
    requests sharing a timeframe are coalesced into shared batches.

    Subclasses provide the snapshot *source*: :class:`RemosService`
    publishes from its own sweeper thread, a worker replica publishes
    epochs received from the parent process.

    Parameters
    ----------
    source:
        Where answers come from: a :class:`Collector` (wrapped in a fresh
        Remos facade), a :class:`~repro.collector.cell.Cell` (its own
        facade is used, so the cell's epochs are the service's epochs), or
        any already-built facade exposing ``flow_info_batch`` — a
        :class:`~repro.core.api.Remos` or a
        :class:`~repro.federation.api.FederatedRemos`.
    max_batch:
        Most flow_info requests answered by one coalesced batch.
    workers:
        Thread-pool size for :meth:`flow_info_async`.
    slow_query_threshold:
        Wall-clock seconds above which a completed query is recorded in
        the slow-query log (0 records everything; see
        :class:`~repro.obs.slowlog.SlowQueryLog`).
    slow_log_capacity:
        Slow-query ring size.
    max_epoch_age:
        Freshness SLO: wall-clock seconds a published epoch may age before
        :meth:`health` (and HTTP ``/healthz``) reports the service
        unhealthy with an ``epoch_stale`` reason.
    max_sweep_seconds:
        Freshness SLO: the longest a single sweep (or epoch installation)
        may take before health degrades with a ``sweep_slow`` reason.
    admission_mode:
        Predictive admission control at the HTTP boundary: ``"off"``
        (default), ``"degrade"`` (FUTURE queries fall back to CURRENT
        under predicted overload) or ``"shed"`` (503 + ``Retry-After``).
        See :class:`~repro.service.admission.AdmissionController`.
    admission_threshold_qps:
        Predicted request rate above which the admission mode kicks in.
    admission_horizon:
        Seconds ahead the admission controller forecasts its own load.
    admission_retry_after:
        ``Retry-After`` seconds suggested to shed callers.
    """

    def __init__(
        self,
        source: Collector,
        max_batch: int = 8,
        workers: int = 4,
        slow_query_threshold: float = 0.25,
        slow_log_capacity: int = 128,
        max_epoch_age: float = 10.0,
        max_sweep_seconds: float = 5.0,
        admission_mode: str = "off",
        admission_threshold_qps: float = 200.0,
        admission_horizon: float = 5.0,
        admission_retry_after: float = 1.0,
    ):
        if max_batch < 1:
            raise ConfigurationError("max_batch must be at least 1")
        self._max_batch = max_batch
        self._workers = workers
        #: Queries never publish: the snapshot source is the single writer.
        if isinstance(source, Cell):
            self.remos = source.remos
        elif hasattr(source, "flow_info_batch") and hasattr(source, "publisher"):
            self.remos = source  # an already-built (possibly federated) facade
        else:
            self.remos = Remos(source, auto_publish=False)
        self._executor: ThreadPoolExecutor | None = None
        self._started = False
        # Coalescing state, all guarded by _cond.
        self._cond = threading.Condition()
        self._queue: dict[Timeframe, list[_Pending]] = {}
        self._leader_busy = False
        # Service counters (leader/sweeper-only writers).
        self.sweeps = 0
        self.publishes = 0
        self.batches_executed = 0
        self.queries_batched = 0
        self.sweep_errors = 0
        # Request-scoped observability: slow-query forensics + declared SLOs.
        self.slowlog = SlowQueryLog(
            threshold_seconds=slow_query_threshold, capacity=slow_log_capacity
        )
        self.slos = SLORegistry()
        self.max_epoch_age = max_epoch_age
        self.max_sweep_seconds = max_sweep_seconds
        #: Predictive backpressure, consulted by the HTTP app layer.
        self.admission = AdmissionController(
            mode=admission_mode,
            threshold_qps=admission_threshold_qps,
            horizon=admission_horizon,
            retry_after=admission_retry_after,
        )
        self.slos.declare_latency("flow_info", threshold_seconds=0.5, target=0.99)
        self.slos.declare_latency("graph", threshold_seconds=0.5, target=0.99)
        self.slos.declare_latency("node", threshold_seconds=0.25, target=0.99)
        self.last_sweep_seconds: float | None = None
        self.last_sweep_at: float | None = None
        # Telemetry-only sweep schedule; RemosService overwrites these.
        self._sweep_interval: float | None = None
        self._sim_step: float | None = None

    def _activate(self) -> None:
        """Register gauges/monitors and open the query thread pool.

        Called once by subclasses after the first snapshot exists and —
        in multi-process mode — strictly *after* any fork, so the worker
        never inherits a half-built executor.
        """
        self._publish_service_gauges()
        self._register_slo_monitors()
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="remos-query"
        )
        self._started = True

    def front_end_config(self) -> dict:
        """The constructor kwargs that rebuild an equivalent front end.

        The multi-process front door uses this to give every worker
        replica the same batching, forensics and freshness settings as
        the parent service.
        """
        return {
            "max_batch": self._max_batch,
            "workers": self._workers,
            "slow_query_threshold": self.slowlog.threshold_seconds,
            "slow_log_capacity": self.slowlog.capacity,
            "max_epoch_age": self.max_epoch_age,
            "max_sweep_seconds": self.max_sweep_seconds,
            "admission_mode": self.admission.mode,
            "admission_threshold_qps": self.admission.threshold_qps,
            "admission_horizon": self.admission.horizon,
            "admission_retry_after": self.admission.retry_after,
        }

    @property
    def running(self) -> bool:
        return self._started

    def stop(self) -> None:
        """Close the query thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._started = False

    def _register_slo_monitors(self) -> None:
        """Declare the freshness monitors health() answers from."""
        publisher = self.remos.publisher

        def epoch_age() -> float | None:
            snapshot = publisher.current()
            return None if snapshot is None else snapshot.age_seconds()

        self.slos.add_monitor(
            "epoch_age",
            maximum=self.max_epoch_age,
            probe=epoch_age,
            reason="epoch_stale",
        )
        self.slos.add_monitor(
            "sweep_duration",
            maximum=self.max_sweep_seconds,
            probe=lambda: self.last_sweep_seconds,
            reason="sweep_slow",
        )
        self.slos.publish_gauges()

    def _publish_service_gauges(self) -> None:
        registry = obs.get_registry()
        if not obs.metrics_enabled():
            return
        publisher = self.remos.publisher
        registry.gauge(
            "remos_snapshot_age_seconds",
            help="Wall-clock seconds since the current snapshot was published",
        ).set_function(
            lambda: (
                0.0
                if publisher.current() is None
                else publisher.current().age_seconds()
            )
        )

    # -- queries (reader side) ---------------------------------------------------

    def snapshot(self) -> Snapshot:
        """The snapshot queries are currently answered from."""
        return self.remos.snapshot()

    def flow_info(
        self,
        fixed_flows: list[Flow] | None = None,
        variable_flows: list[Flow] | None = None,
        independent_flows: list[Flow] | None = None,
        timeframe: Timeframe | None = None,
    ) -> FlowInfoResult:
        """A flow query, coalesced with concurrent ones when possible.

        Requests sharing a timeframe that arrive while another is being
        answered are drained by one leader into a single
        :meth:`~repro.core.api.Remos.flow_info_batch` call — identical
        answers, shared per-epoch work.  A solitary request degenerates to
        a batch of one.

        Request-scoped observability: the whole call (queueing, waiting,
        leading or following) runs under a ``service.flow_info`` span; a
        *follower* whose answer was computed by another thread's batch
        records a **span link** to the leader's ``service.flow_info_batch``
        span, so the trace explains where the time actually went.  Every
        completed call feeds the ``flow_info`` latency SLO and — above the
        slow-query threshold — the slow-query log, with the full span
        tree, arguments, epoch stamps and cache-hit profile.
        """
        timeframe = timeframe or Timeframe.current()
        query = FlowQuery(
            fixed=tuple(fixed_flows or ()),
            variable=tuple(variable_flows or ()),
            independent=tuple(independent_flows or ()),
        )
        pending = _Pending(query, timeframe)
        shard = self._shard_of_query(query)
        span = obs.span("service.flow_info")
        stats = self.remos.cache_stats
        hits, misses = stats.hits, stats.misses
        started = time.perf_counter()
        error: BaseException | None = None
        try:
            with span as sp:
                result = self._coalesce(pending)
                if sp:
                    sp.set(
                        flows=len(query.flows),
                        coalesced=pending.leader_span is not None
                        and pending.leader_span[0] != sp.trace_id,
                    )
                    if shard is not None:
                        sp.set(shard=shard)
                    if (
                        pending.leader_span is not None
                        and pending.leader_span[0] != sp.trace_id
                    ):
                        sp.add_link(*pending.leader_span, role="coalescing_leader")
                return result
        except BaseException as exc:
            error = exc
            raise
        finally:
            self._finish_query(
                "flow_info",
                time.perf_counter() - started,
                args=self._flow_args(query, timeframe),
                cache_hits=stats.hits - hits,
                cache_misses=stats.misses - misses,
                span=span,
                error=error,
                shard=shard,
            )

    def _coalesce(self, pending: _Pending) -> FlowInfoResult:
        """The leader/follower protocol: wait, or drain a group and lead."""
        with self._cond:
            self._queue.setdefault(pending.timeframe, []).append(pending)
        while True:
            with self._cond:
                while not pending.done and self._leader_busy:
                    self._cond.wait(timeout=0.5)
                if pending.done:
                    return pending.outcome()
                self._leader_busy = True
                group = self._queue.get(pending.timeframe, [])
                take = group[: self._max_batch]
                rest = group[self._max_batch :]
                if rest:
                    self._queue[pending.timeframe] = rest
                else:
                    self._queue.pop(pending.timeframe, None)
            try:
                if take:
                    self._execute_group(take)
            finally:
                with self._cond:
                    self._leader_busy = False
                    self._cond.notify_all()
            if pending.done:
                return pending.outcome()

    def _shard_of_query(self, query: FlowQuery) -> str | None:
        """The shard a flow query lands on, for span/slowlog stamping.

        None outside federations (the facade has no shard routing);
        ``"cross"`` when the endpoints span shards or are unknown (the
        query itself will raise the precise error).
        """
        home_shard = getattr(self.remos, "home_shard", None)
        if home_shard is None:
            return None
        endpoints = []
        for flow in query.flows:
            endpoints.append(flow.src)
            endpoints.extend(flow.dsts if hasattr(flow, "dsts") else (flow.dst,))
        return home_shard(endpoints) or "cross"

    @staticmethod
    def _flow_args(query: FlowQuery, timeframe: Timeframe) -> dict:
        """The request arguments, JSON-ready, for slow-query forensics."""

        def specs(flows: tuple[Flow, ...]) -> list[dict]:
            out = []
            for flow in flows:
                spec = {"src": flow.src, "dst": flow.dst, "requested": flow.requested}
                if flow.cap != float("inf"):
                    spec["cap"] = flow.cap
                if flow.name:
                    spec["name"] = flow.name
                out.append(spec)
            return out

        return {
            "fixed": specs(query.fixed),
            "variable": specs(query.variable),
            "independent": specs(query.independent),
            "timeframe": str(timeframe),
        }

    def _finish_query(
        self,
        endpoint: str,
        duration: float,
        args: dict,
        cache_hits: int,
        cache_misses: int,
        span,
        error: BaseException | None,
        shard: str | None = None,
    ) -> None:
        """Feed one completed query into the SLO and the slow-query log."""
        self.slos.record_request(endpoint, duration)
        if duration < self.slowlog.threshold_seconds and error is None:
            self.slowlog.observe(endpoint, duration)  # count it, record nothing
            return
        if error is not None:
            args = {**args, "error": f"{type(error).__name__}: {error}"}
        snapshot = self.remos.publisher.current()
        tree = span.tree() if isinstance(span, obs.Span) else None
        context = obs.current_context()
        if context is not None:
            trace_id = context.trace_id
        elif isinstance(span, obs.Span):
            trace_id = span.trace_id
        else:
            trace_id = None
        self.slowlog.observe(
            endpoint,
            duration,
            trace_id=trace_id,
            args=args,
            epoch=None if snapshot is None else snapshot.epoch,
            generation=None if snapshot is None else snapshot.generation,
            structure_generation=(
                None if snapshot is None else snapshot.structure_generation
            ),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            span_tree=tree,
            shard=shard,
        )

    def _execute_group(self, group: list[_Pending]) -> None:
        """Answer one drained group with a single batched query."""
        timeframe = group[0].timeframe
        with obs.span("service.flow_info_batch") as sp:
            if sp:
                # Stamp the batch span's identity on every member *before*
                # executing, so even a poisoned batch leaves followers a
                # link to the span that tried.
                sp.set(batch=len(group))
                identity = (sp.trace_id, sp.span_id)
                for p in group:
                    p.leader_span = identity
            try:
                results = self.remos.flow_info_batch(
                    [p.query for p in group], timeframe
                )
            except QueryError:
                # One invalid scenario poisons a whole batch; retry each
                # request alone so the error lands only where it belongs.
                for p in group:
                    try:
                        p.result = self.remos.flow_info_batch([p.query], timeframe)[0]
                    except BaseException as exc:
                        p.error = exc
                    p.done = True
            except BaseException as exc:
                for p in group:
                    p.error = exc
                    p.done = True
            else:
                for p, result in zip(group, results):
                    p.result = result
                    p.done = True
        self.batches_executed += 1
        self.queries_batched += len(group)
        obs.inc(
            "remos_service_batches_total",
            help="Coalesced flow_info batches executed by the query service",
        )
        obs.inc(
            "remos_service_batched_queries_total",
            amount=len(group),
            help="flow_info requests answered through coalesced batches",
        )

    def flow_info_async(self, **kwargs) -> Future:
        """Submit :meth:`flow_info` to the service's thread pool."""
        if self._executor is None:
            raise ConfigurationError("service is not running; call start() first")
        return self._executor.submit(self.flow_info, **kwargs)

    def get_graph(self, nodes: list[str], timeframe: Timeframe | None = None):
        """Delegate to :meth:`Remos.get_graph` (snapshot-isolated)."""
        return self.remos.get_graph(nodes, timeframe)

    def node_info(self, host: str, timeframe: Timeframe | None = None):
        """Delegate to :meth:`Remos.node_info` (snapshot-isolated)."""
        return self.remos.node_info(host, timeframe)

    def check_admission(self, fixed_flows: list[Flow], timeframe: Timeframe | None = None):
        """Delegate to :meth:`Remos.check_admission` (snapshot-isolated)."""
        return self.remos.check_admission(fixed_flows, timeframe)

    # -- telemetry ---------------------------------------------------------------

    def health(self) -> dict:
        """The machine-readable health verdict behind HTTP ``/healthz``.

        ``status`` is ``"ok"``, ``"degraded"`` (a freshness monitor is
        blown — serve a 503) or ``"stopped"``; ``reasons`` lists every
        failing monitor with its reading and bound.
        """
        healthy, reasons = self.slos.health()
        if not self.running:
            healthy = False
            reasons = [
                {"monitor": "service", "healthy": False, "reason": "stopped"}
            ] + reasons
            status = "stopped"
        else:
            status = "ok" if healthy else "degraded"
        snapshot = self.remos.publisher.current()
        return {
            "status": status,
            "healthy": healthy,
            "reasons": reasons,
            "epoch": 0 if snapshot is None else snapshot.epoch,
            "epoch_age_seconds": (
                None if snapshot is None else snapshot.age_seconds()
            ),
        }

    def telemetry(self) -> dict:
        """The facade's telemetry plus service, SLO and slow-log sections."""
        report = self.remos.telemetry()
        report["service"] = {
            "running": self.running,
            "sweeps": self.sweeps,
            "sweep_errors": self.sweep_errors,
            "publishes": self.publishes,
            "batches_executed": self.batches_executed,
            "queries_batched": self.queries_batched,
            "sweep_interval": self._sweep_interval,
            "sim_step": self._sim_step,
            "max_batch": self._max_batch,
            "last_sweep_seconds": self.last_sweep_seconds,
        }
        report["slo"] = self.slos.to_dict()
        report["admission"] = self.admission.to_dict()
        slowlog = self.slowlog.to_dict(limit=0)
        slowlog.pop("records")
        report["slowlog"] = slowlog
        return report

    def metrics_text(self) -> str:
        """The Prometheus exposition of the global registry."""
        return obs.get_registry().to_prometheus()


class RemosService(QueryFrontEnd):
    """A snapshot-isolated Remos query service over one collector stack.

    One background **sweeper** thread owns every mutation: it steps the
    simulation engine, refreshes the collector master (when there is one),
    and publishes each completed sweep as an immutable snapshot.  The
    reader side — queries, coalescing, SLOs, slow log — is inherited from
    :class:`QueryFrontEnd`.

    Parameters
    ----------
    collector:
        The collector (or :class:`CollectorMaster`) to serve queries from,
        or an already-wrapped :class:`~repro.collector.cell.Cell`.  A bare
        collector is wrapped in ``Cell("root", ...)`` — a single-cell
        deployment is just a federation of one.
    env:
        The simulation engine the sweeper advances.  Only the sweeper
        thread may run it.
    sweep_interval:
        Wall-clock seconds between sweeper iterations.
    sim_step:
        Simulated seconds advanced per sweeper iteration.
    **front_end:
        Everything :class:`QueryFrontEnd` accepts (``max_batch``,
        ``workers``, ``slow_query_threshold``, ``slow_log_capacity``,
        ``max_epoch_age``, ``max_sweep_seconds``, ``admission_mode``,
        ``admission_threshold_qps``, ``admission_horizon``,
        ``admission_retry_after``).
    """

    def __init__(
        self,
        collector: Collector,
        env: Engine,
        sweep_interval: float = 0.02,
        sim_step: float = 1.0,
        **front_end,
    ):
        cell = collector if isinstance(collector, Cell) else Cell("root", collector)
        super().__init__(cell, **front_end)
        self._cell = cell
        self._collector = cell.collector
        self._env = env
        self._sweep_interval = sweep_interval
        self._sim_step = sim_step
        self._stop_event = threading.Event()
        self._sweeper: threading.Thread | None = None
        self._prepared = False

    @classmethod
    def from_world(cls, world, **kwargs) -> "RemosService":
        """Build a service over a testbed :class:`~repro.testbed.World`."""
        if world.collector is None:
            raise ConfigurationError("world has no collector")
        return cls(world.collector, world.env, **kwargs)

    # -- lifecycle ---------------------------------------------------------------

    def prepare(self, warmup: float = 0.0) -> "RemosService":
        """Run the collector to readiness (+ *warmup* simulated seconds)
        and publish the first snapshot — **without starting any thread**.

        The multi-process front door calls this before forking its
        workers so the fork happens while the parent is still
        single-threaded; :meth:`start` finishes the job (idempotently)
        afterwards.
        """
        if self._prepared:
            return self
        if not self._collector.ready:
            ready = self._collector.start()
            self._env.run(until=ready)
        if warmup > 0:
            self._env.run(until=self._env.now + warmup)
        self._cell.refresh()
        self.publishes = self.remos.publisher.publishes
        self._prepared = True
        return self

    def start(self, warmup: float = 0.0) -> "RemosService":
        """Prepare (if not already), then start the sweeper thread."""
        if self._started:
            return self
        self.prepare(warmup)
        self._activate()
        self._sweeper = threading.Thread(
            target=self._sweep_loop, name="remos-sweeper", daemon=True
        )
        self._sweeper.start()
        _log.info("service_started", sweep_interval=self._sweep_interval)
        return self

    def stop(self) -> None:
        """Stop the sweeper and the collector (idempotent)."""
        if not self._started:
            return
        self._stop_event.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout=5.0)
            self._sweeper = None
        super().stop()
        self._collector.stop()
        self._stop_event = threading.Event()
        self._prepared = False
        _log.info("service_stopped", sweeps=self.sweeps, publishes=self.publishes)

    def __enter__(self) -> "RemosService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def _sweep_loop(self) -> None:
        """The single writer: advance, merge, publish, repeat."""
        while not self._stop_event.wait(self._sweep_interval):
            started = time.perf_counter()
            try:
                self._env.run(until=self._env.now + self._sim_step)
                self._cell.refresh()
                self.sweeps += 1
                self.publishes = self.remos.publisher.publishes
                obs.inc(
                    "remos_service_sweeps_total",
                    help="Sweeper iterations completed by the query service",
                )
            except Exception as exc:
                # Keep serving the last good snapshot; a broken sweep must
                # never take the readers down.
                self.sweep_errors += 1
                _log.error("sweep_failed", error=f"{type(exc).__name__}: {exc}")
            finally:
                # Sweep-duration telemetry feeds the freshness SLO monitor:
                # a sweeper that still runs but takes too long is as much a
                # staleness risk as one that died.
                elapsed = time.perf_counter() - started
                self.last_sweep_seconds = elapsed
                self.last_sweep_at = time.time()
                obs.observe(
                    "remos_sweep_seconds",
                    elapsed,
                    help="Wall-clock seconds per sweeper iteration",
                )
