"""Stdlib HTTP front end for :class:`~repro.service.RemosService`.

One thread per connection (``ThreadingHTTPServer``); every handler is a
thin JSON shim over the service's thread-safe query methods, so the
snapshot-isolation guarantees apply verbatim to HTTP clients.

Endpoints
---------
``GET /healthz``
    Liveness plus the current snapshot epoch.
``GET /metrics``
    Prometheus text exposition of the global registry.
``GET /telemetry``
    The combined telemetry report as JSON.
``GET /graph?nodes=a,b,c``
    ``remos_get_graph`` over the named nodes.
``GET /node/<host>``
    ``node_info`` for one compute host.
``POST /flow_info``
    Body: ``{"fixed": [...], "variable": [...], "independent": [...],
    "timeframe": {...}}`` where each flow is ``{"src", "dst",
    "requested"?, "cap"?, "name"?}`` and the timeframe is ``{"kind":
    "static"|"current"|"history"|"future", "window"?, "horizon"?,
    "predictor"?}`` (defaults to current).  The Python kwarg spellings
    ``fixed_flows``/``variable_flows``/``independent_flows`` are
    accepted as aliases.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core import Flow, Timeframe
from repro.util.errors import ReproError


def _parse_flow(spec: dict) -> Flow:
    if not isinstance(spec, dict) or "src" not in spec or "dst" not in spec:
        raise ReproError(f"flow spec needs src and dst: {spec!r}")
    return Flow(
        src=spec["src"],
        dst=spec["dst"],
        requested=float(spec.get("requested", 1.0)),
        cap=float(spec.get("cap", float("inf"))),
        name=spec.get("name"),
    )


def _parse_timeframe(spec: dict | None) -> Timeframe:
    if not spec:
        return Timeframe.current()
    kind = spec.get("kind", "current")
    if kind == "static":
        return Timeframe.static()
    if kind == "current":
        return Timeframe.current()
    if kind == "history":
        if "window" not in spec:
            raise ReproError('history timeframe needs a "window" (seconds)')
        return Timeframe.history(float(spec["window"]))
    if kind == "future":
        if "horizon" not in spec:
            raise ReproError('future timeframe needs a "horizon" (seconds)')
        return Timeframe.future(
            float(spec["horizon"]),
            predictor=spec.get("predictor", "ewma"),
            window=float(spec.get("window", 60.0)),
        )
    raise ReproError(f"unknown timeframe kind {kind!r}")


def make_handler(service) -> type[BaseHTTPRequestHandler]:
    """A request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # Quiet by default; the service has structured logging of its own.
        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass

        def _send(self, status: int, body: str, content_type: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(self, status: int, data) -> None:
            self._send(status, json.dumps(data, indent=2), "application/json")

        def _send_error_json(self, status: int, error: BaseException) -> None:
            self._send_json(
                status, {"error": f"{type(error).__name__}: {error}"}
            )

        def do_GET(self) -> None:  # noqa: N802 - stdlib signature
            url = urlparse(self.path)
            try:
                if url.path == "/healthz":
                    snapshot = service.remos.publisher.current()
                    self._send_json(
                        200,
                        {
                            "status": "ok" if service.running else "stopped",
                            "epoch": 0 if snapshot is None else snapshot.epoch,
                        },
                    )
                elif url.path == "/metrics":
                    self._send(
                        200,
                        service.metrics_text(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                elif url.path == "/telemetry":
                    self._send_json(200, service.telemetry())
                elif url.path == "/graph":
                    params = parse_qs(url.query)
                    nodes = [
                        name
                        for chunk in params.get("nodes", [])
                        for name in chunk.split(",")
                        if name
                    ]
                    graph = service.get_graph(nodes)
                    self._send_json(200, graph.to_dict())
                elif url.path.startswith("/node/"):
                    host = url.path[len("/node/") :]
                    answer = service.node_info(host)
                    self._send_json(200, answer.to_dict())
                else:
                    self._send_json(404, {"error": f"no such path {url.path!r}"})
            except ReproError as error:
                self._send_error_json(400, error)
            except Exception as error:  # defensive: keep the server alive
                self._send_error_json(500, error)

        def do_POST(self) -> None:  # noqa: N802 - stdlib signature
            url = urlparse(self.path)
            try:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b"{}"
                body = json.loads(raw.decode("utf-8") or "{}")
                if url.path == "/flow_info":
                    # Accept both the short key and the Python kwarg name
                    # ("variable" / "variable_flows", etc.).
                    def flows(key: str) -> list[Flow]:
                        specs = body.get(key, body.get(f"{key}_flows", []))
                        return [_parse_flow(f) for f in specs]

                    result = service.flow_info(
                        fixed_flows=flows("fixed"),
                        variable_flows=flows("variable"),
                        independent_flows=flows("independent"),
                        timeframe=_parse_timeframe(body.get("timeframe")),
                    )
                    self._send_json(200, result.to_dict())
                else:
                    self._send_json(404, {"error": f"no such path {url.path!r}"})
            except (ReproError, ValueError, KeyError) as error:
                self._send_error_json(400, error)
            except Exception as error:  # defensive: keep the server alive
                self._send_error_json(500, error)

    return Handler


def serve_http(service, host: str = "127.0.0.1", port: int = 8080) -> ThreadingHTTPServer:
    """Bind a threading HTTP server over *service* (port 0 picks a free one).

    Returns the server without blocking; call ``serve_forever()`` (or run
    it from a thread) and ``shutdown()`` / ``server_close()`` to stop.
    """
    return ThreadingHTTPServer((host, port), make_handler(service))
