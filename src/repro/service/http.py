"""Stdlib HTTP front end for :class:`~repro.service.RemosService`.

One thread per connection (``ThreadingHTTPServer``); every handler is a
thin JSON shim over the service's thread-safe query methods, so the
snapshot-isolation guarantees apply verbatim to HTTP clients.

Request-scoped observability (see ``docs/OBSERVABILITY.md``):

* every request runs under a :class:`~repro.obs.context.TraceContext` —
  parsed from an incoming W3C ``traceparent`` header or freshly generated
  — bound to the handling thread so spans, log lines and slow-query
  records all carry the request's trace id, and echoed on **every**
  response as a ``traceparent`` header;
* access logs are structured ``http.access`` events through
  :class:`~repro.obs.log.StructLogger` (method, path, status, duration,
  trace id), not stdlib stderr lines;
* per-endpoint latencies feed the service's SLO registry; queries over
  the slow threshold land in the slow-query log.

Endpoints
---------
``GET /healthz``
    Liveness plus the current snapshot epoch.  **503** with a
    machine-readable ``reasons`` list when a freshness SLO is blown
    (stale epoch, overlong sweep) — see ``RemosService.health``.
``GET /metrics``
    Prometheus text exposition of the global registry.
``GET /telemetry``
    The combined telemetry report as JSON (now with SLO + slow-log
    sections).
``GET /debug/slow``
    The slow-query log, newest first: span tree, args, epoch stamps and
    cache profile per record.  ``?limit=N`` caps the count.
``GET /debug/slo``
    Declared objectives: latency error budgets and freshness monitors.
``GET /debug/profile?seconds=N``
    Run the sampling wall-clock profiler for N seconds (default 2, max
    30; ``interval`` in seconds optional) and return collapsed stacks as
    ``text/plain`` — flamegraph-ready.  One profile at a time per
    process (409 otherwise).
``GET /graph?nodes=a,b,c``
    ``remos_get_graph`` over the named nodes.
``GET /node/<host>``
    ``node_info`` for one compute host.
``POST /flow_info``
    Body: ``{"fixed": [...], "variable": [...], "independent": [...],
    "timeframe": {...}}`` where each flow is ``{"src", "dst",
    "requested"?, "cap"?, "name"?}`` and the timeframe is ``{"kind":
    "static"|"current"|"history"|"future", "window"?, "horizon"?,
    "predictor"?}`` (defaults to current).  The Python kwarg spellings
    ``fixed_flows``/``variable_flows``/``independent_flows`` are
    accepted as aliases.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.core import Flow, Timeframe
from repro.obs.profiler import SamplingProfiler
from repro.util.errors import ReproError

_log = obs.get_logger("repro.service.http")

#: One profile at a time per process: the sampler reads every thread.
_profile_lock = threading.Lock()

#: Longest profile a request may ask for (seconds).
MAX_PROFILE_SECONDS = 30.0


def _parse_flow(spec: dict) -> Flow:
    if not isinstance(spec, dict) or "src" not in spec or "dst" not in spec:
        raise ReproError(f"flow spec needs src and dst: {spec!r}")
    return Flow(
        src=spec["src"],
        dst=spec["dst"],
        requested=float(spec.get("requested", 1.0)),
        cap=float(spec.get("cap", float("inf"))),
        name=spec.get("name"),
    )


def _parse_timeframe(spec: dict | None) -> Timeframe:
    if not spec:
        return Timeframe.current()
    kind = spec.get("kind", "current")
    if kind == "static":
        return Timeframe.static()
    if kind == "current":
        return Timeframe.current()
    if kind == "history":
        if "window" not in spec:
            raise ReproError('history timeframe needs a "window" (seconds)')
        return Timeframe.history(float(spec["window"]))
    if kind == "future":
        if "horizon" not in spec:
            raise ReproError('future timeframe needs a "horizon" (seconds)')
        return Timeframe.future(
            float(spec["horizon"]),
            predictor=spec.get("predictor", "ewma"),
            window=float(spec.get("window", 60.0)),
        )
    raise ReproError(f"unknown timeframe kind {kind!r}")


def _endpoint_name(method: str, path: str) -> str:
    """The SLO/metric label for a request path (bounded cardinality)."""
    if path.startswith("/node/"):
        return "node"
    known = {
        "/healthz": "healthz",
        "/metrics": "metrics",
        "/telemetry": "telemetry",
        "/graph": "graph",
        "/flow_info": "flow_info",
        "/debug/slow": "debug_slow",
        "/debug/slo": "debug_slo",
        "/debug/profile": "debug_profile",
    }
    return known.get(path, "other")


def make_handler(service) -> type[BaseHTTPRequestHandler]:
    """A request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # Per-request observability state (set by _dispatch).
        _trace_ctx = None
        _started = 0.0
        _status = 0

        # -- structured access logging ------------------------------------------

        def log_request(self, code="-", size="-"):  # noqa: A002 - stdlib signature
            """Access log as a structured event (trace id auto-stamped)."""
            fields = {
                "method": self.command,
                "path": self.path,
                "status": int(code) if str(code).isdigit() else code,
                "client": self.client_address[0],
            }
            if self._started:
                fields["duration"] = round(time.perf_counter() - self._started, 6)
            _log.info("http.access", **fields)

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            """Anything else the stdlib server wants logged (errors)."""
            _log.warning("http.message", message=format % args)

        # -- response plumbing --------------------------------------------------

        def _send(self, status: int, body: str, content_type: str) -> None:
            payload = body.encode("utf-8")
            self._status = status
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            if self._trace_ctx is not None:
                self.send_header("traceparent", self._trace_ctx.to_traceparent())
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(self, status: int, data) -> None:
            self._send(status, json.dumps(data, indent=2), "application/json")

        def _send_error_json(self, status: int, error: BaseException) -> None:
            self._send_json(
                status, {"error": f"{type(error).__name__}: {error}"}
            )

        # -- request-scoped dispatch --------------------------------------------

        def _dispatch(self, route) -> None:
            """Bind a trace context, route, then settle the SLO accounts."""
            parent = obs.parse_traceparent(self.headers.get("traceparent"))
            self._trace_ctx = parent.child() if parent else obs.TraceContext.generate()
            self._started = time.perf_counter()
            url = urlparse(self.path)
            endpoint = _endpoint_name(self.command, url.path)
            with obs.bind_context(self._trace_ctx):
                try:
                    route(url)
                except ReproError as error:
                    self._send_error_json(400, error)
                except (ValueError, KeyError) as error:
                    self._send_error_json(400, error)
                except Exception as error:  # defensive: keep the server alive
                    self._send_error_json(500, error)
                finally:
                    # flow_info settles its own SLO inside the service (the
                    # coalescing path owns the richer record); everything
                    # else is settled here at the HTTP boundary.
                    if endpoint != "flow_info":
                        service.slos.record_request(
                            endpoint, time.perf_counter() - self._started
                        )

        def do_GET(self) -> None:  # noqa: N802 - stdlib signature
            self._dispatch(self._route_get)

        def do_POST(self) -> None:  # noqa: N802 - stdlib signature
            self._dispatch(self._route_post)

        # -- observed query helper ----------------------------------------------

        def _observed_query(self, endpoint: str, args: dict, run) -> None:
            """Run a query endpoint under a span; slow-log it if it crawled."""
            span = obs.span(f"http.{endpoint}")
            stats = service.remos.cache_stats
            hits, misses = stats.hits, stats.misses
            started = time.perf_counter()
            error: BaseException | None = None
            try:
                with span:
                    run()
            except BaseException as exc:
                error = exc
                raise
            finally:
                duration = time.perf_counter() - started
                snapshot = service.remos.publisher.current()
                if error is not None:
                    args = {**args, "error": f"{type(error).__name__}: {error}"}
                service.slowlog.observe(
                    endpoint,
                    duration,
                    trace_id=self._trace_ctx.trace_id,
                    args=args,
                    epoch=None if snapshot is None else snapshot.epoch,
                    generation=None if snapshot is None else snapshot.generation,
                    structure_generation=(
                        None if snapshot is None else snapshot.structure_generation
                    ),
                    cache_hits=stats.hits - hits,
                    cache_misses=stats.misses - misses,
                    span_tree=span.tree() if isinstance(span, obs.Span) else None,
                    status=self._status or None,
                )

        # -- routes -------------------------------------------------------------

        def _route_get(self, url) -> None:
            params = parse_qs(url.query)
            if url.path == "/healthz":
                health = service.health()
                self._send_json(200 if health["healthy"] else 503, health)
            elif url.path == "/metrics":
                self._send(
                    200,
                    service.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif url.path == "/telemetry":
                self._send_json(200, service.telemetry())
            elif url.path == "/debug/slow":
                limit = params.get("limit", [None])[0]
                self._send_json(
                    200,
                    service.slowlog.to_dict(
                        limit=None if limit is None else int(limit)
                    ),
                )
            elif url.path == "/debug/slo":
                self._send_json(200, service.slos.to_dict())
            elif url.path == "/debug/profile":
                self._route_profile(params)
            elif url.path == "/graph":
                nodes = [
                    name
                    for chunk in params.get("nodes", [])
                    for name in chunk.split(",")
                    if name
                ]
                self._observed_query(
                    "graph",
                    {"nodes": nodes},
                    lambda: self._send_json(
                        200, service.get_graph(nodes).to_dict()
                    ),
                )
            elif url.path.startswith("/node/"):
                host = url.path[len("/node/") :]
                self._observed_query(
                    "node",
                    {"host": host},
                    lambda: self._send_json(
                        200, service.node_info(host).to_dict()
                    ),
                )
            else:
                self._send_json(404, {"error": f"no such path {url.path!r}"})

        def _route_profile(self, params: dict) -> None:
            """``/debug/profile?seconds=N&interval=S`` — collapsed stacks."""
            seconds = float(params.get("seconds", ["2"])[0])
            interval = float(params.get("interval", ["0.01"])[0])
            if not 0.0 < seconds <= MAX_PROFILE_SECONDS:
                raise ReproError(
                    f"seconds must be in (0, {MAX_PROFILE_SECONDS:g}], got {seconds:g}"
                )
            if not _profile_lock.acquire(blocking=False):
                self._send_json(409, {"error": "a profile is already running"})
                return
            try:
                profiler = SamplingProfiler(interval=interval)
                with profiler:
                    time.sleep(seconds)
                _log.info(
                    "profile_complete",
                    seconds=seconds,
                    samples=profiler.samples,
                    stacks=len(profiler.counts()),
                )
                self._send(200, profiler.collapsed(), "text/plain; charset=utf-8")
            finally:
                _profile_lock.release()

        def _route_post(self, url) -> None:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            body = json.loads(raw.decode("utf-8") or "{}")
            if url.path == "/flow_info":
                # Accept both the short key and the Python kwarg name
                # ("variable" / "variable_flows", etc.).
                def flows(key: str) -> list[Flow]:
                    specs = body.get(key, body.get(f"{key}_flows", []))
                    return [_parse_flow(f) for f in specs]

                result = service.flow_info(
                    fixed_flows=flows("fixed"),
                    variable_flows=flows("variable"),
                    independent_flows=flows("independent"),
                    timeframe=_parse_timeframe(body.get("timeframe")),
                )
                self._send_json(200, result.to_dict())
            else:
                self._send_json(404, {"error": f"no such path {url.path!r}"})

    return Handler


def serve_http(service, host: str = "127.0.0.1", port: int = 8080) -> ThreadingHTTPServer:
    """Bind a threading HTTP server over *service* (port 0 picks a free one).

    Returns the server without blocking; call ``serve_forever()`` (or run
    it from a thread) and ``shutdown()`` / ``server_close()`` to stop.
    """
    return ThreadingHTTPServer((host, port), make_handler(service))
