"""Legacy threaded HTTP front end for :class:`~repro.service.RemosService`.

One thread per connection (``ThreadingHTTPServer``); every request is
delegated to the transport-agnostic application layer in
:mod:`repro.service.app`, so trace propagation, structured access logs,
SLO settlement, slow-query forensics and the 503-when-stale health
contract are identical to the default asyncio front end
(:mod:`repro.service.aio`).  ``repro serve --threaded`` selects this
server; it is also the reference implementation the concurrency
benchmarks compare the asyncio front end against.

Endpoints
---------
``GET /healthz``
    Liveness plus the current snapshot epoch.  **503** with a
    machine-readable ``reasons`` list when a freshness SLO is blown
    (stale epoch, overlong sweep) — see ``RemosService.health``.
``GET /metrics``
    Prometheus text exposition of the global registry.
``GET /telemetry``
    The combined telemetry report as JSON (with SLO + slow-log sections).
``GET /debug/slow``
    The slow-query log, newest first: span tree, args, epoch stamps and
    cache profile per record.  ``?limit=N`` caps the count.
``GET /debug/slo``
    Declared objectives: latency error budgets and freshness monitors,
    plus the predictive-admission verdict counters when admission
    control is configured.
``GET /debug/profile?seconds=N``
    Run the sampling wall-clock profiler for N seconds (default 2, max
    30; ``interval`` in seconds optional) and return collapsed stacks as
    ``text/plain`` — flamegraph-ready.  One profile at a time per
    process (409 otherwise).
``GET /graph?nodes=a,b,c``
    ``remos_get_graph`` over the named nodes.  Timeframe selection via
    flat query parameters: ``timeframe=static|current|history|future``
    with ``window``/``horizon``/``predictor`` as needed (for example
    ``/graph?nodes=a,b&timeframe=future&horizon=30&predictor=auto``).
``GET /node/<host>``
    ``node_info`` for one compute host.  Accepts the same
    ``timeframe``/``window``/``horizon``/``predictor`` parameters as
    ``/graph``.
``POST /flow_info``
    Body: ``{"fixed": [...], "variable": [...], "independent": [...],
    "timeframe": {...}}`` where each flow is ``{"src", "dst",
    "requested"?, "cap"?, "name"?}`` and the timeframe is ``{"kind":
    "static"|"current"|"history"|"future", "window"?, "horizon"?,
    "predictor"?}`` (defaults to current).  The Python kwarg spellings
    ``fixed_flows``/``variable_flows``/``independent_flows`` are
    accepted as aliases.

When predictive admission control is enabled (``repro serve
--admission-mode degrade|shed``), the three query endpoints may answer
**503** with a ``Retry-After`` header under predicted overload, or —
in degrade mode — rewrite a FUTURE timeframe to CURRENT, marking the
response with ``"timeframe_degraded": true`` and an ``X-Remos-Degraded``
header.  See :mod:`repro.service.admission`.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import obs
from repro.service.app import (  # noqa: F401 - re-exported for compatibility
    MAX_PROFILE_SECONDS,
    Request,
    _endpoint_name,
    _parse_flow,
    _parse_timeframe,
    handle_request,
)

_log = obs.get_logger("repro.service.http")


def make_handler(service) -> type[BaseHTTPRequestHandler]:
    """A request-handler class bound to one service instance."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_request(self, code="-", size="-"):  # noqa: A002 - stdlib signature
            """Quiet: the app layer writes the structured access log."""

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            """Anything else the stdlib server wants logged (errors)."""
            _log.warning("http.message", message=format % args)

        def _run(self) -> None:
            length = int(self.headers.get("Content-Length", "0"))
            request = Request(
                method=self.command,
                target=self.path,
                headers={k.lower(): v for k, v in self.headers.items()},
                body=self.rfile.read(length) if length else b"",
                client=self.client_address[0],
            )
            response = handle_request(service, request)
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            if response.traceparent is not None:
                self.send_header("traceparent", response.traceparent)
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(response.body)

        do_GET = _run  # noqa: N815 - stdlib dispatch names
        do_POST = _run  # noqa: N815

    return Handler


def serve_http(service, host: str = "127.0.0.1", port: int = 8080) -> ThreadingHTTPServer:
    """Bind a threading HTTP server over *service* (port 0 picks a free one).

    Returns the server without blocking; call ``serve_forever()`` (or run
    it from a thread) and ``shutdown()`` / ``server_close()`` to stop.
    """
    return ThreadingHTTPServer((host, port), make_handler(service))
