"""The concurrent Remos query service.

The paper positions Remos as a *service* multiple network-aware
applications query at once: "the implementation is based on a distributed
set of Collectors" answering queries while measurement continues.  This
package is that deployment shape for the reproduction:

* a **single writer** — the sweep scheduler thread — advances the
  simulation, lets the collector(s) sweep, and publishes each completed
  sweep as an immutable :class:`~repro.core.snapshot.Snapshot`;
* any number of **reader threads** issue ``flow_info`` / ``get_graph`` /
  ``node_info`` / ``check_admission`` queries through
  :class:`RemosService`; each query pins the current snapshot once and
  never observes a partial sweep;
* concurrent ``flow_info`` requests with the same timeframe are
  **coalesced**: one leader drains the waiting group and answers it with a
  single :meth:`~repro.core.api.Remos.flow_info_batch` call, so the
  expensive per-epoch work (six per-quantile availability snapshots) is
  paid once per batch instead of once per request — that is where the
  concurrent-throughput win comes from under the GIL.

``repro serve`` (see :mod:`repro.cli`) exposes the service over HTTP with
``/metrics`` for Prometheus scraping.  Two front ends share one
transport-agnostic application layer (:mod:`repro.service.app`): the
default asyncio event loop (:mod:`repro.service.aio`) and the legacy
one-thread-per-connection server (:mod:`repro.service.http`,
``--threaded``).  ``--workers N`` pre-forks N asyncio workers on a shared
socket (:mod:`repro.service.workers`); the parent keeps the only sweeper
and broadcasts each published epoch to the workers.  The full threading
model is documented in ``docs/CONCURRENCY.md``.
"""

from repro.service.aio import AioServer, AsyncHTTPServer, serve_aio
from repro.service.core import QueryFrontEnd, RemosService
from repro.service.http import serve_http
from repro.service.workers import MultiProcessServer, WorkerReplica

__all__ = [
    "AioServer",
    "AsyncHTTPServer",
    "MultiProcessServer",
    "QueryFrontEnd",
    "RemosService",
    "WorkerReplica",
    "serve_aio",
    "serve_http",
]
