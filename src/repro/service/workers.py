"""Multi-process front door: pre-forked asyncio workers, one shared socket.

``repro serve --workers N`` scales the query side past the GIL without
giving up the single-writer sweep discipline from ``docs/CONCURRENCY.md``:

* The **parent** process keeps the only sweeper.  It runs the simulation
  engine, refreshes the collector and publishes epochs exactly as the
  single-process service does — then *broadcasts* each newly published
  epoch to every worker as a pickled frozen :class:`NetworkView` over a
  per-worker pipe (throttled to :data:`BROADCAST_INTERVAL`; intermediate
  epochs are skipped, never queued).
* Each **worker** is a forked process running the asyncio front end
  (:class:`~repro.service.aio.AsyncHTTPServer`) on the shared listening
  socket — the kernel load-balances ``accept()`` across workers.  Its
  :class:`WorkerReplica` is a full :class:`~repro.service.core.QueryFrontEnd`
  (coalescing, SLOs, slow log, health) whose snapshot source is a
  :class:`ViewInbox`: a collector that serves whatever view the parent
  last installed.  A worker never mutates shared state; installing a
  received epoch republishes it locally, so snapshot isolation, epoch
  stamps and the staleness SLO all behave per-process.

The fork happens **before** the parent starts any thread
(:meth:`RemosService.prepare` publishes the first snapshot without
spawning the sweeper), so no lock or executor is ever inherited
mid-flight.  Workers shut down on an explicit ``None`` sentinel — or on
pipe EOF if the parent dies.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import socket
import threading
import time

from repro import obs
from repro.collector import Collector
from repro.service.aio import AsyncHTTPServer
from repro.service.core import QueryFrontEnd, RemosService
from repro.util.errors import ConfigurationError

_log = obs.get_logger("repro.service.workers")

#: Seconds between epoch-broadcast checks in the parent.  Workers serve
#: the previous epoch meanwhile — staleness is bounded by this plus the
#: sweep interval, far under the default ``max_epoch_age``.
BROADCAST_INTERVAL = 0.25

#: How long the parent waits for each worker's ready handshake.
READY_TIMEOUT = 30.0


class ViewInbox(Collector):
    """A collector that serves views somebody else installs.

    The worker's epoch listener calls :meth:`install` with each frozen
    view received from the parent; the replica's publisher then clones
    and republishes it locally.  ``start``/``stop`` are no-ops — the
    inbox has no data source of its own.
    """

    def start(self):  # pragma: no cover - never driven by an engine
        return None

    def stop(self) -> None:
        pass

    def install(self, view) -> None:
        self._view = view


class WorkerReplica(QueryFrontEnd):
    """The query front end inside one worker process.

    ``start()`` blocks until the parent's first epoch arrives on the
    pipe, publishes it, and then keeps a listener thread draining the
    pipe — always jumping to the *latest* available view, so a worker
    that fell behind never replays stale epochs.
    """

    def __init__(self, conn, **front_end):
        inbox = ViewInbox()
        super().__init__(inbox, **front_end)
        self._inbox = inbox
        self._conn = conn
        self._listener: threading.Thread | None = None
        #: Set by the stop sentinel (or pipe EOF): the worker's cue to exit.
        self.closed = threading.Event()

    def start(self) -> "WorkerReplica":
        if self._started:
            return self
        view = self._conn.recv()  # block until the parent seeds an epoch
        if view is None:
            raise ConfigurationError("parent closed the epoch pipe before seeding")
        self._install(view)
        self._activate()
        self._listener = threading.Thread(
            target=self._listen, name="remos-epoch-inbox", daemon=True
        )
        self._listener.start()
        return self

    def _install(self, view) -> None:
        """Publish one received epoch locally (counts as this replica's sweep)."""
        started = time.perf_counter()
        self._inbox.install(view)
        self.remos.publish()
        self.sweeps += 1
        self.publishes = self.remos.publisher.publishes
        self.last_sweep_seconds = time.perf_counter() - started
        self.last_sweep_at = time.time()

    def _listen(self) -> None:
        conn = self._conn
        while not self.closed.is_set():
            try:
                if not conn.poll(0.25):
                    continue
                view = conn.recv()
                # Drain to the freshest pending view; every skipped epoch
                # was already superseded before we could serve it.
                while view is not None and conn.poll():
                    view = conn.recv()
            except (EOFError, OSError):
                break
            if view is None:
                break
            try:
                self._install(view)
            except Exception as exc:  # keep serving the last good epoch
                self.sweep_errors += 1
                _log.error(
                    "epoch_install_failed", error=f"{type(exc).__name__}: {exc}"
                )
        self.closed.set()

    def stop(self) -> None:
        self.closed.set()
        if self._listener is not None:
            self._listener.join(timeout=2.0)
            self._listener = None
        super().stop()


def _worker_main(sock: socket.socket, conn, front_end: dict) -> None:
    """One worker process: replica + asyncio server on the shared socket."""
    replica = WorkerReplica(conn, **front_end)
    replica.start()
    conn.send(("ready", os.getpid()))

    async def main() -> None:
        server = AsyncHTTPServer(replica, sock=sock)
        await server.start()
        try:
            while not replica.closed.is_set():
                await asyncio.sleep(0.25)
        finally:
            await server.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    finally:
        replica.stop()


class MultiProcessServer:
    """N pre-forked asyncio workers serving one :class:`RemosService`.

    The parent owns the sweeper (single writer); workers own the sockets.
    ``start()`` publishes the first snapshot *before* forking, seeds every
    worker with it, waits for their ready handshakes, then starts the
    parent's sweeper and the epoch broadcaster.

    Parameters
    ----------
    service:
        The (unstarted) :class:`RemosService` whose sweeper feeds the
        workers.  Its front-end settings are replicated into each worker
        unless *front_end* overrides them.
    host, port:
        The shared listening address (port 0 picks a free one — read
        :attr:`address` after :meth:`start`).
    workers:
        Number of worker processes (at least 1).
    warmup:
        Simulated seconds to run before the first snapshot.
    broadcast_interval:
        Seconds between epoch-broadcast checks.
    front_end:
        Optional :class:`QueryFrontEnd` kwarg overrides for the replicas.
    """

    def __init__(
        self,
        service: RemosService,
        host: str = "127.0.0.1",
        port: int = 8080,
        workers: int = 2,
        warmup: float = 0.0,
        broadcast_interval: float = BROADCAST_INTERVAL,
        front_end: dict | None = None,
    ):
        if workers < 1:
            raise ConfigurationError("workers must be at least 1")
        self._service = service
        self._host = host
        self._port = port
        self._workers = workers
        self._warmup = warmup
        self._interval = broadcast_interval
        self._front_end_overrides = dict(front_end or {})
        self._sock: socket.socket | None = None
        self._procs: list = []
        self._pipes: list = []
        self._epoch = 0
        self._stop_event = threading.Event()
        self._broadcaster: threading.Thread | None = None
        self._started = False

    @property
    def address(self) -> tuple[str, int]:
        assert self._sock is not None, "call start() first"
        return self._sock.getsockname()[:2]

    @property
    def pids(self) -> list[int]:
        return [proc.pid for proc in self._procs]

    def start(self) -> "MultiProcessServer":
        if self._started:
            return self
        # First snapshot while the parent is still single-threaded: the
        # fork below must never duplicate a live sweeper or executor.
        self._service.prepare(self._warmup)
        snapshot = self._service.remos.publisher.current()
        assert snapshot is not None
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self._host, self._port))
        sock.listen(128)
        sock.set_inheritable(True)
        self._sock = sock
        front_end = {**self._service.front_end_config(), **self._front_end_overrides}
        ctx = multiprocessing.get_context("fork")
        for index in range(self._workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(sock, child_conn, front_end),
                name=f"remos-worker-{index}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._pipes.append(parent_conn)
        # Seed every worker with the prepared epoch, then require the
        # handshake: a worker that cannot publish must fail loudly here,
        # not as connection resets later.
        self._epoch = snapshot.epoch
        for conn in self._pipes:
            conn.send(snapshot.view)
        for proc, conn in zip(self._procs, self._pipes):
            if not conn.poll(READY_TIMEOUT):
                self.stop()
                raise ConfigurationError(f"{proc.name} did not become ready")
            conn.recv()  # ("ready", pid)
        # Threads are safe now that every fork is done.
        self._service.start()
        self._broadcaster = threading.Thread(
            target=self._broadcast_loop, name="remos-epoch-broadcast", daemon=True
        )
        self._broadcaster.start()
        self._started = True
        _log.info(
            "workers_started",
            workers=self._workers,
            host=self.address[0],
            port=self.address[1],
            pids=self.pids,
        )
        return self

    def _broadcast_loop(self) -> None:
        publisher = self._service.remos.publisher
        while not self._stop_event.wait(self._interval):
            snapshot = publisher.current()
            if snapshot is None or snapshot.epoch == self._epoch:
                continue
            self._epoch = snapshot.epoch
            for conn in self._pipes:
                try:
                    conn.send(snapshot.view)
                except (BrokenPipeError, OSError):  # worker died; reap in stop()
                    pass

    def stop(self) -> None:
        """Sentinel the workers, reap them, close the socket (idempotent)."""
        self._stop_event.set()
        if self._broadcaster is not None:
            self._broadcaster.join(timeout=2.0)
            self._broadcaster = None
        for conn in self._pipes:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=3.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._pipes:
            conn.close()
        self._procs.clear()
        self._pipes.clear()
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._service.stop()
        self._started = False
        self._stop_event = threading.Event()

    def __enter__(self) -> "MultiProcessServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
