"""Asyncio HTTP front end for :class:`~repro.service.RemosService`.

The default front door (``repro serve``): a single-threaded
``asyncio.start_server`` event loop multiplexes every connection —
keep-alive HTTP/1.1, no thread or stack per idle socket — and hands each
parsed request to the shared application layer
(:func:`repro.service.app.handle_request`) on a thread-pool executor.
Because one request is handled start-to-finish on one executor thread,
the thread-local :class:`~repro.obs.context.TraceContext` binding, the
SLO settlement and the slow-query forensics behave exactly as they do
under the legacy threaded server (:mod:`repro.service.http`) — the
end-to-end observability tests run against both.

Why this beats a thread per connection under the GIL: the service's
coalescing queue (see ``docs/CONCURRENCY.md``) answers concurrent
``flow_info`` requests in shared batches, so the front end's job is to
*admit* many sockets cheaply and keep the executor fed — exactly what an
event loop does.  The ``--workers N`` multi-process mode
(:mod:`repro.service.workers`) stacks N of these servers on one shared
listening socket.

Two entry points:

* :func:`serve_aio` — run the event loop on a background thread; returns
  an :class:`AioServer` handle with ``address`` and ``stop()``.  Drop-in
  for :func:`repro.service.http.serve_http` callers (tests, benchmarks).
* :class:`AsyncHTTPServer` — the awaitable pieces, for callers that
  already own a loop (the worker processes do).
"""

from __future__ import annotations

import asyncio
import socket
import threading

from repro import obs
from repro.service.app import Request, Response, handle_request

_log = obs.get_logger("repro.service.aio")

#: Maximum request-body size accepted (matches typical proxy defaults).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Per-header-line cap (asyncio's readline raises beyond its limit).
MAX_HEADER_BYTES = 64 * 1024


class AsyncHTTPServer:
    """One asyncio server over one service, optionally on a shared socket."""

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 8080,
        sock: socket.socket | None = None,
    ):
        self._service = service
        self._host = host
        self._port = port
        self._sock = sock
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "AsyncHTTPServer":
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._client, sock=self._sock, limit=MAX_HEADER_BYTES
            )
        else:
            self._server = await asyncio.start_server(
                self._client, self._host, self._port, limit=MAX_HEADER_BYTES
            )
        return self

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None, "call start() first"
        return self._server.sockets[0].getsockname()[:2]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ----------------------------------------------------

    async def _client(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if peer else ""
        loop = asyncio.get_running_loop()
        try:
            while True:
                request = await self._read_request(reader, client)
                if request is None:
                    break
                # The app layer blocks (service queries, profile sleeps):
                # run it on the default executor so the loop keeps
                # admitting other connections.  Thread-local trace binding
                # happens inside handle_request, on the executor thread.
                response = await loop.run_in_executor(
                    None, handle_request, self._service, request
                )
                close = (request.header("connection") or "").lower() == "close"
                await self._write_response(writer, response, close)
                if close:
                    break
        except _BadRequest as error:
            await self._write_response(
                writer, Response.json(400, {"error": str(error)}), True
            )
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - racy teardown
                pass

    @staticmethod
    async def _read_request(reader, client: str) -> Request | None:
        """Parse one request off the wire; None on clean connection end."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest(f"malformed request line: {line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                return None  # connection closed mid-headers
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            raise _BadRequest(f"bad Content-Length: {length_raw!r}") from None
        if not 0 <= length <= MAX_BODY_BYTES:
            raise _BadRequest(f"Content-Length out of range: {length}")
        body = await reader.readexactly(length) if length else b""
        return Request(
            method=method, target=target, headers=headers, body=body, client=client
        )

    @staticmethod
    async def _write_response(writer, response: Response, close: bool) -> None:
        head = [
            f"HTTP/1.1 {response.status} {response.reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if response.traceparent is not None:
            head.append(f"traceparent: {response.traceparent}")
        for name, value in response.headers.items():
            head.append(f"{name}: {value}")
        writer.write("\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + response.body)
        await writer.drain()


class _BadRequest(Exception):
    """A request the HTTP parser refused (answered 400, connection closed)."""


class AioServer:
    """A running asyncio front end on a background thread.

    Mirrors the ergonomics of ``ThreadingHTTPServer`` for callers that
    manage the server from synchronous code: construct via
    :func:`serve_aio`, read :attr:`address`, call :meth:`stop`.
    """

    def __init__(self, server_factory):
        self._factory = server_factory
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._failure: BaseException | None = None
        self.address: tuple[str, int] | None = None
        self._thread = threading.Thread(
            target=self._run, name="remos-aio", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - loop teardown races
            if not self._started.is_set():
                self._failure = exc
                self._started.set()

    async def _main(self) -> None:
        server = self._factory()
        try:
            await server.start()
        except BaseException as exc:
            self._failure = exc
            self._started.set()
            return
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.address = server.address
        self._started.set()
        _log.info("aio_server_started", host=self.address[0], port=self.address[1])
        try:
            await self._stop.wait()
        finally:
            await server.close()

    def start(self) -> "AioServer":
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._failure is not None:
            raise self._failure
        if self.address is None:
            raise RuntimeError("asyncio server failed to start within 30s")
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the loop and join its thread (idempotent)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        self._thread.join(timeout=timeout)


def serve_aio(
    service,
    host: str = "127.0.0.1",
    port: int = 8080,
    sock: socket.socket | None = None,
) -> AioServer:
    """Start the asyncio front end on a background thread (port 0 = any).

    Returns a running :class:`AioServer`; ``handle.address`` is the bound
    ``(host, port)`` and ``handle.stop()`` shuts it down.
    """
    return AioServer(
        lambda: AsyncHTTPServer(service, host=host, port=port, sock=sock)
    ).start()
