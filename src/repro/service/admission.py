"""Predictive admission control: degrade or shed before overload hits.

The service's own forecast plane, turned on itself.  The controller keeps
a :class:`~repro.stats.series.TimeSeries` of its recent request rate and
forecasts the near-future rate with the same pluggable predictors the
query API exposes (Holt's level+trend by default — the one model that can
see a ramp *coming*).  When the *predicted* rate crosses the configured
capacity, the front door reacts before the queue does, in one of two
modes:

* ``degrade`` — FUTURE-timeframe queries are rewritten to CURRENT:
  prediction is the expensive, shed-able luxury (per-series forecasting,
  backtest settlement), while the cheap CURRENT answer keeps the caller
  going.  Responses carry ``"timeframe_degraded": true`` and an
  ``X-Remos-Degraded`` header so callers can tell.
* ``shed`` — query endpoints answer **503** with a ``Retry-After`` header
  (health/metrics/debug endpoints always pass: you must be able to watch
  a shedding service).

Every decision is counted (``remos_query_shed_total`` /
``remos_query_degraded_total``, labelled by endpoint) and summarised into
the SLO report (``GET /debug/slo``) next to the latency budgets — shed
load is spent error budget by another name.

The controller is deliberately transport-level: it is consulted by the
HTTP application layer (:mod:`repro.service.app`), so the in-process
Python API stays unthrottled for tests and embedded use.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro import obs
from repro.core import Timeframe
from repro.core.timeframe import TimeframeKind
from repro.stats import make_predictor
from repro.stats.series import TimeSeries
from repro.util.errors import ConfigurationError

_log = obs.get_logger("repro.service.admission")

#: Accepted controller modes.
MODES = ("off", "degrade", "shed")


@dataclass(frozen=True)
class AdmissionDecision:
    """What the front door should do with one request."""

    action: str  #: "accept" | "degrade" | "shed"
    timeframe: Timeframe | None = None  #: rewritten timeframe on "degrade"
    retry_after: float = 0.0  #: seconds to suggest on "shed"
    predicted_qps: float = 0.0

    @property
    def accepted(self) -> bool:
        return self.action != "shed"

    @property
    def retry_after_header(self) -> str:
        """``Retry-After`` delta-seconds (integer, at least 1)."""
        return str(max(1, math.ceil(self.retry_after)))


_ACCEPT = AdmissionDecision(action="accept")


class AdmissionController:
    """Predicts the request rate and decides accept / degrade / shed.

    Parameters
    ----------
    mode:
        ``"off"`` (accept everything), ``"degrade"`` (rewrite FUTURE
        queries to CURRENT under predicted overload) or ``"shed"``
        (503 + Retry-After under predicted overload).
    threshold_qps:
        The capacity line: overload is *predicted* when the forecast
        request rate exceeds this.
    horizon:
        Seconds ahead the rate forecast looks.
    rate_window:
        Trailing seconds the instantaneous rate is measured over.
    sample_interval:
        Seconds between rate samples appended to the internal series
        (bounds bookkeeping cost at high qps).
    retry_after:
        Seconds suggested to shed callers.
    predictor:
        Forecaster name from the registry (default ``"holt"`` — trend
        matters more than level for seeing overload early).
    clock:
        Injectable monotonic clock (tests pin it).
    """

    def __init__(
        self,
        mode: str = "off",
        threshold_qps: float = 200.0,
        horizon: float = 5.0,
        rate_window: float = 5.0,
        sample_interval: float = 0.25,
        retry_after: float = 1.0,
        predictor: str = "holt",
        clock=time.monotonic,
    ):
        if mode not in MODES:
            raise ConfigurationError(
                f"unknown admission mode {mode!r}; expected one of {MODES}"
            )
        if threshold_qps < 0:
            raise ConfigurationError("threshold_qps must be non-negative")
        if horizon <= 0 or rate_window <= 0 or sample_interval <= 0:
            raise ConfigurationError(
                "horizon, rate_window and sample_interval must be positive"
            )
        self.mode = mode
        self.threshold_qps = float(threshold_qps)
        self.horizon = float(horizon)
        self.rate_window = float(rate_window)
        self.sample_interval = float(sample_interval)
        self.retry_after = float(retry_after)
        self._predictor = make_predictor(predictor, history_window=10 * rate_window)
        self._clock = clock
        self._lock = threading.Lock()
        self._arrivals: deque[float] = deque()
        self._rates = TimeSeries(capacity=512, name="admission.qps")
        self._last_sample = -math.inf
        # Decision counters (telemetry / SLO report).
        self.accepted = 0
        self.degraded = 0
        self.shed = 0

    # -- rate measurement + forecast ---------------------------------------------

    def _observe_arrival(self, now: float) -> float:
        """Record one arrival; return the instantaneous qps."""
        arrivals = self._arrivals
        arrivals.append(now)
        floor = now - self.rate_window
        while arrivals and arrivals[0] < floor:
            arrivals.popleft()
        rate = len(arrivals) / self.rate_window
        if now - self._last_sample >= self.sample_interval:
            self._last_sample = now
            self._rates.add(now, rate)
        return rate

    def _forecast(self, now: float, instantaneous: float) -> float:
        """The predicted request rate *horizon* seconds out."""
        if len(self._rates) < 4:
            return instantaneous
        try:
            measure = self._predictor.predict(self._rates, now, self.horizon)
        except Exception:  # defensive: a throttling bug must not drop queries
            return instantaneous
        # q3, not median: admission is the one consumer that should err on
        # the pessimistic side of its own forecast band.  (Plain float:
        # this number lands verbatim in JSON telemetry.)
        return float(max(instantaneous, measure.q3))

    def predicted_qps(self) -> float:
        """The current forecast without recording an arrival."""
        with self._lock:
            now = self._clock()
            floor = now - self.rate_window
            while self._arrivals and self._arrivals[0] < floor:
                self._arrivals.popleft()
            return self._forecast(now, len(self._arrivals) / self.rate_window)

    # -- the decision -------------------------------------------------------------

    def admit(
        self, endpoint: str, timeframe: Timeframe | None = None
    ) -> AdmissionDecision:
        """Decide one request; records the arrival either way."""
        with self._lock:
            now = self._clock()
            instantaneous = self._observe_arrival(now)
            if self.mode == "off":
                self.accepted += 1
                return _ACCEPT
            predicted = self._forecast(now, instantaneous)
            if predicted <= self.threshold_qps:
                self.accepted += 1
                return _ACCEPT
            if self.mode == "shed":
                self.shed += 1
                decision = AdmissionDecision(
                    action="shed",
                    retry_after=self.retry_after,
                    predicted_qps=predicted,
                )
            elif timeframe is not None and timeframe.kind is TimeframeKind.FUTURE:
                self.degraded += 1
                decision = AdmissionDecision(
                    action="degrade",
                    timeframe=Timeframe.current(),
                    predicted_qps=predicted,
                )
            else:
                # degrade mode, nothing to degrade: the request is already
                # as cheap as it gets.
                self.accepted += 1
                return _ACCEPT
        if decision.action == "shed":
            obs.inc(
                "remos_query_shed_total",
                help="Queries shed (503 + Retry-After) by predictive admission",
                endpoint=endpoint,
            )
        else:
            obs.inc(
                "remos_query_degraded_total",
                help="FUTURE queries degraded to CURRENT by predictive admission",
                endpoint=endpoint,
            )
        if _log.enabled_for("debug"):
            _log.debug(
                "admission_decision",
                endpoint=endpoint,
                action=decision.action,
                predicted_qps=round(decision.predicted_qps, 3),
                threshold_qps=self.threshold_qps,
            )
        return decision

    def config(self) -> dict:
        """Constructor kwargs rebuilding an equivalent controller."""
        return {
            "mode": self.mode,
            "threshold_qps": self.threshold_qps,
            "horizon": self.horizon,
            "rate_window": self.rate_window,
            "sample_interval": self.sample_interval,
            "retry_after": self.retry_after,
        }

    def to_dict(self) -> dict:
        """Decision counters + live forecast, for /debug/slo and telemetry."""
        return {
            "mode": self.mode,
            "threshold_qps": self.threshold_qps,
            "horizon": self.horizon,
            "predicted_qps": self.predicted_qps(),
            "accepted": self.accepted,
            "degraded": self.degraded,
            "shed": self.shed,
        }
