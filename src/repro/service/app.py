"""Transport-agnostic HTTP application layer for the Remos service.

Both front ends — the legacy one-thread-per-connection server in
:mod:`repro.service.http` and the default asyncio server in
:mod:`repro.service.aio` — funnel every request through
:func:`handle_request` here, so the request-scoped observability contract
from ``docs/OBSERVABILITY.md`` holds identically regardless of transport:

* every request runs under a :class:`~repro.obs.context.TraceContext` —
  parsed from an incoming W3C ``traceparent`` header or freshly generated
  — bound (thread-locally) for the duration of the handler, and echoed on
  **every** response as a ``traceparent`` header;
* access logs are structured ``http.access`` events (method, path,
  status, duration, trace id);
* per-endpoint latencies feed the service's SLO registry; queries over
  the slow threshold land in the slow-query log with span trees attached;
* ``/healthz`` answers **503** with machine-readable ``reasons`` when a
  freshness SLO is blown.

Handlers are synchronous (the service's query methods are thread-safe
blocking calls); the asyncio front end runs them in a thread-pool
executor, which is also what makes the thread-local context binding
correct there — one request handled start-to-finish on one thread.

The query endpoints are also the enforcement point for **predictive
admission control** (:mod:`repro.service.admission`): when the service's
forecast of its own request rate crosses the configured threshold, FUTURE
queries are degraded to CURRENT (``"timeframe_degraded": true`` in the
body, ``X-Remos-Degraded`` header) or the request is shed with **503** and
a ``Retry-After`` header, depending on the configured mode.  Health,
metrics and debug endpoints are never shed.

Endpoints (the docstring of :mod:`repro.service.http` documents the wire
formats): ``GET /healthz``, ``GET /metrics``, ``GET /telemetry``,
``GET /debug/slow``, ``GET /debug/slo``, ``GET /debug/profile``,
``GET /graph?nodes=…``, ``GET /node/<host>``, ``POST /flow_info``.
``/graph`` and ``/node/<host>`` accept ``timeframe`` / ``window`` /
``horizon`` / ``predictor`` query parameters mirroring the JSON timeframe
spec (``?timeframe=future&horizon=30&predictor=auto``).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http import HTTPStatus
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.core import Flow, Timeframe
from repro.obs.profiler import SamplingProfiler
from repro.util.errors import ReproError

_log = obs.get_logger("repro.service.http")

#: One profile at a time per process: the sampler reads every thread.
_profile_lock = threading.Lock()

#: Longest profile a request may ask for (seconds).
MAX_PROFILE_SECONDS = 30.0


def _parse_flow(spec: dict) -> Flow:
    if not isinstance(spec, dict) or "src" not in spec or "dst" not in spec:
        raise ReproError(f"flow spec needs src and dst: {spec!r}")
    return Flow(
        src=spec["src"],
        dst=spec["dst"],
        requested=float(spec.get("requested", 1.0)),
        cap=float(spec.get("cap", float("inf"))),
        name=spec.get("name"),
    )


def _parse_timeframe(spec: dict | None) -> Timeframe:
    if not spec:
        return Timeframe.current()
    kind = spec.get("kind", "current")
    if kind == "static":
        return Timeframe.static()
    if kind == "current":
        return Timeframe.current()
    if kind == "history":
        if "window" not in spec:
            raise ReproError('history timeframe needs a "window" (seconds)')
        return Timeframe.history(float(spec["window"]))
    if kind == "future":
        if "horizon" not in spec:
            raise ReproError('future timeframe needs a "horizon" (seconds)')
        return Timeframe.future(
            float(spec["horizon"]),
            predictor=spec.get("predictor", "ewma"),
            window=float(spec.get("window", 60.0)),
        )
    raise ReproError(f"unknown timeframe kind {kind!r}")


def _timeframe_from_params(params: dict) -> Timeframe | None:
    """The timeframe encoded in GET query parameters, or None.

    Mirrors the POST JSON spec with flat parameters: ``?timeframe=future``
    selects the kind, ``window`` / ``horizon`` / ``predictor`` fill in the
    rest (``/node/h3?timeframe=future&horizon=30&predictor=auto``).
    """
    kind = params.get("timeframe", [None])[0]
    if kind is None:
        return None
    spec = {"kind": kind}
    for key in ("window", "horizon", "predictor"):
        value = params.get(key, [None])[0]
        if value is not None:
            spec[key] = value
    return _parse_timeframe(spec)


def _endpoint_name(method: str, path: str) -> str:
    """The SLO/metric label for a request path (bounded cardinality)."""
    if path.startswith("/node/"):
        return "node"
    known = {
        "/healthz": "healthz",
        "/metrics": "metrics",
        "/telemetry": "telemetry",
        "/graph": "graph",
        "/flow_info": "flow_info",
        "/debug/slow": "debug_slow",
        "/debug/slo": "debug_slo",
        "/debug/profile": "debug_profile",
    }
    return known.get(path, "other")


@dataclass
class Request:
    """One parsed HTTP request, as the transports hand it over."""

    method: str
    target: str  #: the raw request target (path + optional ?query)
    headers: dict[str, str] = field(default_factory=dict)  #: lower-cased names
    body: bytes = b""
    client: str = ""

    def header(self, name: str, default: str | None = None) -> str | None:
        return self.headers.get(name.lower(), default)


@dataclass
class Response:
    """One response for the transports to serialise."""

    status: int
    body: bytes
    content_type: str
    traceparent: str | None = None
    headers: dict[str, str] = field(default_factory=dict)  #: extra headers

    @property
    def reason(self) -> str:
        try:
            return HTTPStatus(self.status).phrase
        except ValueError:
            return ""

    @classmethod
    def text(cls, status: int, body: str, content_type: str) -> "Response":
        return cls(status, body.encode("utf-8"), content_type)

    @classmethod
    def json(cls, status: int, data) -> "Response":
        return cls.text(status, json.dumps(data, indent=2), "application/json")

    @classmethod
    def error(cls, status: int, error: BaseException) -> "Response":
        return cls.json(status, {"error": f"{type(error).__name__}: {error}"})


def handle_request(service, request: Request) -> Response:
    """Answer one request: bind a trace, route, settle the SLO accounts.

    Never raises — handler errors become 400 (:class:`ReproError`,
    ``ValueError``, ``KeyError``) or 500 JSON bodies, and every response
    (including errors) carries the request's ``traceparent``.
    """
    parent = obs.parse_traceparent(request.header("traceparent"))
    context = parent.child() if parent else obs.TraceContext.generate()
    started = time.perf_counter()
    url = urlparse(request.target)
    endpoint = _endpoint_name(request.method, url.path)
    with obs.bind_context(context):
        try:
            if request.method == "GET":
                response = _route_get(service, url, request)
            elif request.method == "POST":
                response = _route_post(service, url, request)
            else:
                response = Response.json(
                    405, {"error": f"method {request.method} not allowed"}
                )
        except ReproError as error:
            response = Response.error(400, error)
        except (ValueError, KeyError) as error:
            response = Response.error(400, error)
        except Exception as error:  # defensive: keep the server alive
            response = Response.error(500, error)
        finally:
            # flow_info settles its own SLO inside the service (the
            # coalescing path owns the richer record); everything else is
            # settled here at the HTTP boundary.
            if endpoint != "flow_info":
                service.slos.record_request(
                    endpoint, time.perf_counter() - started
                )
        response.traceparent = context.to_traceparent()
        _log.info(
            "http.access",
            method=request.method,
            path=request.target,
            status=response.status,
            client=request.client,
            duration=round(time.perf_counter() - started, 6),
        )
    return response


def _observed_query(service, endpoint: str, args: dict, run) -> Response:
    """Run a query endpoint under a span; slow-log it if it crawled."""
    span = obs.span(f"http.{endpoint}")
    stats = service.remos.cache_stats
    hits, misses = stats.hits, stats.misses
    started = time.perf_counter()
    context = obs.current_context()
    response: Response | None = None
    error: BaseException | None = None
    try:
        with span:
            response = run()
            return response
    except BaseException as exc:
        error = exc
        raise
    finally:
        duration = time.perf_counter() - started
        snapshot = service.remos.publisher.current()
        if error is not None:
            args = {**args, "error": f"{type(error).__name__}: {error}"}
        service.slowlog.observe(
            endpoint,
            duration,
            trace_id=None if context is None else context.trace_id,
            args=args,
            epoch=None if snapshot is None else snapshot.epoch,
            generation=None if snapshot is None else snapshot.generation,
            structure_generation=(
                None if snapshot is None else snapshot.structure_generation
            ),
            cache_hits=stats.hits - hits,
            cache_misses=stats.misses - misses,
            span_tree=span.tree() if isinstance(span, obs.Span) else None,
            status=None if response is None else response.status,
        )


def _admit(service, endpoint: str, timeframe: Timeframe | None):
    """Consult predictive admission for one query request.

    Returns ``(shed_response, timeframe, degraded)``: a ready 503 when the
    request is shed (the caller returns it as-is), otherwise the — possibly
    degraded — timeframe to answer with.
    """
    controller = getattr(service, "admission", None)
    if controller is None:
        return None, timeframe, False
    decision = controller.admit(endpoint, timeframe)
    if decision.action == "shed":
        response = Response.json(
            503,
            {
                "error": "overloaded: query shed by predictive admission",
                "predicted_qps": round(decision.predicted_qps, 3),
                "retry_after": decision.retry_after,
            },
        )
        response.headers["Retry-After"] = decision.retry_after_header
        return response, timeframe, False
    if decision.action == "degrade":
        return None, decision.timeframe, True
    return None, timeframe, False


def _query_args(args: dict, timeframe: Timeframe | None, degraded: bool) -> dict:
    """Slow-log arguments with the *effective* timeframe echoed."""
    if timeframe is not None:
        args["timeframe"] = str(timeframe)
    if degraded:
        args["degraded"] = True
    return args


def _query_response(payload: dict, degraded: bool) -> Response:
    """A 200 answer, stamped when admission degraded its timeframe."""
    if degraded:
        payload["timeframe_degraded"] = True
    response = Response.json(200, payload)
    if degraded:
        response.headers["X-Remos-Degraded"] = "future->current"
    return response


def _route_get(service, url, request: Request) -> Response:
    params = parse_qs(url.query)
    if url.path == "/healthz":
        health = service.health()
        return Response.json(200 if health["healthy"] else 503, health)
    if url.path == "/metrics":
        return Response.text(
            200,
            service.metrics_text(),
            "text/plain; version=0.0.4; charset=utf-8",
        )
    if url.path == "/telemetry":
        return Response.json(200, service.telemetry())
    if url.path == "/debug/slow":
        limit = params.get("limit", [None])[0]
        return Response.json(
            200,
            service.slowlog.to_dict(limit=None if limit is None else int(limit)),
        )
    if url.path == "/debug/slo":
        report = service.slos.to_dict()
        controller = getattr(service, "admission", None)
        if controller is not None:
            # Shed load is spent error budget: surface the admission
            # verdicts next to the latency/freshness SLOs they protect.
            report["admission"] = controller.to_dict()
        return Response.json(200, report)
    if url.path == "/debug/profile":
        return _route_profile(params)
    if url.path == "/graph":
        nodes = [
            name
            for chunk in params.get("nodes", [])
            for name in chunk.split(",")
            if name
        ]
        timeframe = _timeframe_from_params(params)
        shed, timeframe, degraded = _admit(service, "graph", timeframe)
        if shed is not None:
            return shed
        return _observed_query(
            service,
            "graph",
            _query_args({"nodes": nodes}, timeframe, degraded),
            lambda: _query_response(
                service.get_graph(nodes, timeframe).to_dict(), degraded
            ),
        )
    if url.path.startswith("/node/"):
        host = url.path[len("/node/") :]
        timeframe = _timeframe_from_params(params)
        shed, timeframe, degraded = _admit(service, "node", timeframe)
        if shed is not None:
            return shed
        return _observed_query(
            service,
            "node",
            _query_args({"host": host}, timeframe, degraded),
            lambda: _query_response(
                service.node_info(host, timeframe).to_dict(), degraded
            ),
        )
    return Response.json(404, {"error": f"no such path {url.path!r}"})


def _route_profile(params: dict) -> Response:
    """``/debug/profile?seconds=N&interval=S`` — collapsed stacks."""
    seconds = float(params.get("seconds", ["2"])[0])
    interval = float(params.get("interval", ["0.01"])[0])
    if not 0.0 < seconds <= MAX_PROFILE_SECONDS:
        raise ReproError(
            f"seconds must be in (0, {MAX_PROFILE_SECONDS:g}], got {seconds:g}"
        )
    if not _profile_lock.acquire(blocking=False):
        return Response.json(409, {"error": "a profile is already running"})
    try:
        profiler = SamplingProfiler(interval=interval)
        with profiler:
            time.sleep(seconds)
        _log.info(
            "profile_complete",
            seconds=seconds,
            samples=profiler.samples,
            stacks=len(profiler.counts()),
        )
        return Response.text(200, profiler.collapsed(), "text/plain; charset=utf-8")
    finally:
        _profile_lock.release()


def _route_post(service, url, request: Request) -> Response:
    body = json.loads(request.body.decode("utf-8") or "{}")
    if url.path == "/flow_info":
        # Accept both the short key and the Python kwarg name
        # ("variable" / "variable_flows", etc.).
        def flows(key: str) -> list[Flow]:
            specs = body.get(key, body.get(f"{key}_flows", []))
            return [_parse_flow(f) for f in specs]

        timeframe = _parse_timeframe(body.get("timeframe"))
        shed, timeframe, degraded = _admit(service, "flow_info", timeframe)
        if shed is not None:
            return shed
        result = service.flow_info(
            fixed_flows=flows("fixed"),
            variable_flows=flows("variable"),
            independent_flows=flows("independent"),
            timeframe=timeframe,
        )
        return _query_response(result.to_dict(), degraded)
    return Response.json(404, {"error": f"no such path {url.path!r}"})
