"""Collectors: the network-facing half of the Remos implementation.

"A Collector consists of a process that retrieves raw information about the
network" (§5).  Two collectors are provided, matching the paper:

* :class:`SNMPCollector` — discovers topology and polls interface octet
  counters via the simulated SNMP agents, deriving per-link-direction
  utilization time series;
* :class:`BenchmarkCollector` — actively probes host pairs with short
  transfers, for networks whose routers "do not respond to our SNMP
  queries", producing a logical cloud topology with measured
  characteristics.

Both produce a :class:`NetworkView` (topology + metric series) that the
Modeler (:mod:`repro.core`) consumes.  A :class:`CollectorMaster` merges
the views of multiple cooperating collectors ("a large environment may
require multiple cooperating Collectors").

Each completed sweep is journalled on the view as a :class:`ViewDelta`
(:class:`DeltaKind` metrics-only vs topology-changed), which drives the
master's incremental merges and the Modeler's fine-grained cache
invalidation; see ``docs/PERFORMANCE.md`` for the invalidation model.
"""

from repro.collector.base import Collector, DeltaKind, NetworkView, ViewDelta
from repro.collector.metrics import CPU_PSEUDO_LINK, MetricsStore
from repro.collector.snmp_collector import SNMPCollector
from repro.collector.bench_collector import BenchmarkCollector
from repro.collector.master import CollectorMaster
from repro.collector.cell import Cell, ShardRegistry

__all__ = [
    "Cell",
    "Collector",
    "CPU_PSEUDO_LINK",
    "DeltaKind",
    "NetworkView",
    "ViewDelta",
    "MetricsStore",
    "ShardRegistry",
    "SNMPCollector",
    "BenchmarkCollector",
    "CollectorMaster",
]
