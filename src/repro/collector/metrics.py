"""Metric storage shared by all collectors.

A :class:`MetricsStore` holds one bounded :class:`~repro.stats.TimeSeries`
per *directed link* — the series values are **used bandwidth in bits per
second** as observed over each polling interval.  The Modeler converts use
into availability against the link's capacity.
"""

from __future__ import annotations

from repro.stats import TimeSeries
from repro.util.errors import CollectorError

#: Reserved pseudo-link name under which CPU series are stored; a metrics
#: key ``(CPU_PSEUDO_LINK, host)`` is a CPU resource, not a link direction.
CPU_PSEUDO_LINK = "cpu"


class MetricsStore:
    """Per-directed-link utilization series, keyed by (link name, from node)."""

    def __init__(self, capacity: int = 4096):
        self._capacity = capacity
        self._series: dict[tuple[str, str], TimeSeries] = {}
        self._latest_time = 0.0
        self._frozen = False

    @property
    def frozen(self) -> bool:
        """True for immutable stores published inside a snapshot."""
        return self._frozen

    def _assert_mutable(self) -> None:
        if self._frozen:
            raise CollectorError(
                "metrics store is frozen (published in a snapshot); "
                "record against the live collector view instead"
            )

    def frozen_clone(
        self,
        cache: "dict[tuple[str, str], tuple[TimeSeries, int, TimeSeries]] | None" = None,
    ) -> "MetricsStore":
        """An immutable store holding frozen clones of every series.

        *cache* is the publisher's copy-on-write memo, keyed by direction:
        ``{key: (source series, version at clone time, frozen clone)}``.
        A series whose identity and version are unchanged since the last
        publication reuses the prior frozen clone, so a sparse sweep clones
        only the series it touched.  The strong reference to the source
        series makes the identity check sound (no ``id()`` reuse).  The
        memo is updated in place.
        """
        clone = MetricsStore(self._capacity)
        series_map: dict[tuple[str, str], TimeSeries] = {}
        for key, series in self._series.items():
            if cache is not None:
                entry = cache.get(key)
                if (
                    entry is not None
                    and entry[0] is series
                    and entry[1] == series.version
                ):
                    series_map[key] = entry[2]
                    continue
            frozen = series.frozen_clone()
            series_map[key] = frozen
            if cache is not None:
                cache[key] = (series, series.version, frozen)
        clone._series = series_map
        clone._latest_time = self._latest_time
        clone._frozen = True
        return clone

    def record(self, link_name: str, from_node: str, time: float, bits_per_second: float) -> None:
        """Append one sample of used bandwidth on a link direction."""
        self._assert_mutable()
        key = (link_name, from_node)
        series = self._series.get(key)
        if series is None:
            series = TimeSeries(self._capacity, name=f"{link_name}:{from_node}->")
            self._series[key] = series
        series.add(time, max(0.0, bits_per_second))
        if time > self._latest_time:
            self._latest_time = time

    def latest_timestamp(self) -> float:
        """Newest sample time across every series, in O(1).

        0.0 before any sample — the Modeler treats that as "no measurement
        yet", matching an empty scan.  Tracked incrementally so the hot
        query path never walks the series.
        """
        return self._latest_time

    def series(self, link_name: str, from_node: str) -> TimeSeries:
        """The series for one direction (raises if never recorded)."""
        try:
            return self._series[(link_name, from_node)]
        except KeyError:
            raise CollectorError(
                f"no measurements for link {link_name!r} direction from {from_node!r}"
            ) from None

    def has_series(self, link_name: str, from_node: str) -> bool:
        """True once at least one sample exists for the direction."""
        return (link_name, from_node) in self._series

    def version(self, link_name: str, from_node: str) -> int:
        """Monotone per-resource metric stamp for one direction.

        0 while the direction has never been measured; afterwards the
        underlying series' sample-append counter.  Series objects are
        shared by reference across merged stores, so every holder reads
        one consistent stamp in O(1).
        """
        series = self._series.get((link_name, from_node))
        return 0 if series is None else series.version

    def keys(self) -> list[tuple[str, str]]:
        """All (link name, from node) directions with measurements."""
        return list(self._series)

    def adopt(self, key: tuple[str, str], series: TimeSeries) -> None:
        """Adopt *series* (by reference) for *key*, replacing any holder.

        The collector master uses this to apply child deltas under its
        first-collector-wins precedence rules; :meth:`merge_from` remains
        the bulk form.
        """
        self._assert_mutable()
        self._series[key] = series
        if not series.empty:
            self._latest_time = max(self._latest_time, series.latest()[0])

    def bump_latest(self, time: float) -> None:
        """Advance the O(1) newest-sample stamp to at least *time*.

        Needed by holders of shared series: a child collector appending to
        a series this store adopted by reference moves real data without
        touching this store's incremental maximum.
        """
        self._assert_mutable()
        if time > self._latest_time:
            self._latest_time = time

    # CPU load series reuse the same store under a reserved pseudo-link
    # name, so merging and capacity bounds apply uniformly.
    _CPU_KEY = CPU_PSEUDO_LINK

    def record_cpu(self, host: str, time: float, utilization: float) -> None:
        """Append a CPU-utilization sample (0..1) for *host*."""
        self.record(self._CPU_KEY, host, time, min(1.0, max(0.0, utilization)))

    def cpu_series(self, host: str) -> TimeSeries:
        """CPU-utilization series for *host* (raises if never recorded)."""
        return self.series(self._CPU_KEY, host)

    def has_cpu_series(self, host: str) -> bool:
        """True once at least one CPU sample exists for *host*."""
        return self.has_series(self._CPU_KEY, host)

    def merge_from(self, other: "MetricsStore", prefer_other: bool = False) -> None:
        """Adopt *other*'s series for directions we lack (or always, if
        *prefer_other*).  Used by the collector master."""
        self._assert_mutable()
        for key, series in other._series.items():
            if prefer_other or key not in self._series:
                self._series[key] = series
                if not series.empty:
                    self._latest_time = max(self._latest_time, series.latest()[0])

    def __len__(self) -> int:
        return len(self._series)
