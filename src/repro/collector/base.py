"""Collector interface and the NetworkView handed to the Modeler."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.collector.metrics import MetricsStore
from repro.net import Topology
from repro.stats import TimeSeries
from repro.util.errors import CollectorError


@dataclass
class NetworkView:
    """What a collector knows: a topology plus utilization series.

    The topology is the collector's *belief* — discovered via SNMP, or a
    synthetic cloud abstraction from probing — not necessarily the true
    physical network.  Link capacities/latencies live on the topology;
    utilization series live in the metrics store.

    ``generation`` stamps the view's freshness: collectors bump it once per
    completed measurement sweep, and the Modeler keys its memoised answers
    on it — a cached answer is exact for its generation and is never served
    across generations (see ``docs/PERFORMANCE.md``).  Hand-built views that
    never bump it are treated as immutable snapshots.
    """

    topology: Topology
    metrics: MetricsStore
    generation: int = 0

    def bump_generation(self) -> int:
        """Mark one completed collector sweep; returns the new generation."""
        self.generation += 1
        return self.generation

    def link_use(self, link_name: str, from_node: str) -> TimeSeries:
        """Used-bandwidth series (bits/s) for a link direction."""
        return self.metrics.series(link_name, from_node)


class Collector(abc.ABC):
    """Common lifecycle for collectors.

    ``start()`` launches the collection process(es) on the simulation
    engine and returns an event that fires once the first full sweep has
    completed (discovery + first samples), after which :meth:`view` is
    usable.
    """

    def __init__(self) -> None:
        self._view: NetworkView | None = None

    @abc.abstractmethod
    def start(self):
        """Begin collecting; returns a 'ready' event."""

    @abc.abstractmethod
    def stop(self) -> None:
        """Stop collecting (idempotent)."""

    @property
    def ready(self) -> bool:
        """True once a view is available."""
        return self._view is not None

    def view(self) -> NetworkView:
        """The current network view (raises until ready)."""
        if self._view is None:
            raise CollectorError(
                f"{type(self).__name__} has no view yet; wait for start() event"
            )
        return self._view
