"""Collector interface and the NetworkView handed to the Modeler."""

from __future__ import annotations

import abc
import enum
from collections import deque
from dataclasses import dataclass, field

from repro.collector.metrics import MetricsStore
from repro.net import Topology
from repro.stats import TimeSeries
from repro.util.errors import CollectorError

#: Journal entries retained per view.  Deep enough that a Modeler querying
#: at any realistic cadence finds a contiguous chain; an overrun simply
#: degrades to a full invalidation, never to a stale answer.
JOURNAL_DEPTH = 256


class DeltaKind(enum.Enum):
    """How much of the world one collector sweep may have moved."""

    METRICS_ONLY = "metrics_only"
    """Only utilization/CPU series grew; topology and routes are intact."""

    TOPOLOGY_CHANGED = "topology_changed"
    """Nodes, links or capacities changed; everything derived is suspect."""


@dataclass(frozen=True)
class ViewDelta:
    """One generation step of a :class:`NetworkView`, classified.

    A delta covers the half-open generation interval
    ``(base_generation, generation]``.  ``touched`` lists the metric-store
    keys — ``(link name, from node)`` directions, with the reserved
    ``"cpu"`` pseudo-link naming hosts — whose series gained samples during
    the step, so consumers can invalidate exactly those resources.  A
    ``TOPOLOGY_CHANGED`` delta makes no completeness promise about
    ``touched``; consumers must treat the whole view as new.
    """

    kind: DeltaKind
    base_generation: int
    generation: int
    touched: frozenset[tuple[str, str]] = frozenset()

    @property
    def is_structural(self) -> bool:
        """True when the step may have altered topology or capacities."""
        return self.kind is DeltaKind.TOPOLOGY_CHANGED


@dataclass
class NetworkView:
    """What a collector knows: a topology plus utilization series.

    The topology is the collector's *belief* — discovered via SNMP, or a
    synthetic cloud abstraction from probing — not necessarily the true
    physical network.  Link capacities/latencies live on the topology;
    utilization series live in the metrics store.

    Freshness is stamped at **two levels** (see ``docs/PERFORMANCE.md``):

    * ``generation`` advances once per completed measurement sweep, exactly
      as before — the Modeler's caches are never served across generations;
    * ``structure_generation`` advances only when the topology (or a link
      capacity) changes, so routing tables and structural memos survive
      metrics-only sweeps.

    Collectors that know *what* a sweep touched call :meth:`record_sweep`
    (or :meth:`record_structure_change`), which also appends a
    :class:`ViewDelta` to a bounded journal; the Modeler reads the journal
    via :meth:`deltas_since` to evict only the cache entries a sweep
    actually invalidated.  Hand-built views may keep calling
    :meth:`bump_generation` — the resulting journal gap makes consumers
    fall back to the old drop-everything behaviour, never to staleness.

    Snapshot publication (``repro.core.snapshot``) builds an immutable copy
    of a live view and calls :meth:`freeze` on it: every later attribute
    assignment or stamp advance raises, so published epochs can be shared
    across reader threads without locks (see ``docs/CONCURRENCY.md``).
    """

    topology: Topology
    metrics: MetricsStore
    generation: int = 0
    structure_generation: int = 0
    _journal: deque = field(
        default_factory=lambda: deque(maxlen=JOURNAL_DEPTH), repr=False, compare=False
    )

    def __setattr__(self, name, value):
        if getattr(self, "_frozen", False):
            raise CollectorError(
                f"cannot set {name!r}: this NetworkView is frozen (published "
                "in a snapshot); mutate the live collector view instead"
            )
        object.__setattr__(self, name, value)

    def freeze(self) -> None:
        """Make this view immutable (called once, at snapshot publication)."""
        object.__setattr__(self, "_frozen", True)

    @property
    def frozen(self) -> bool:
        """True once published inside a snapshot."""
        return getattr(self, "_frozen", False)

    def _assert_mutable(self) -> None:
        if getattr(self, "_frozen", False):
            raise CollectorError(
                "cannot advance stamps on a frozen NetworkView (published "
                "in a snapshot); sweeps belong on the live collector view"
            )

    def bump_generation(self) -> int:
        """Mark one completed collector sweep; returns the new generation.

        Appends nothing to the delta journal, so consumers treat the step
        as opaque (full invalidation) — the safe default for hand-mutated
        views.  Collectors that can enumerate what they touched should use
        :meth:`record_sweep` instead.
        """
        self._assert_mutable()
        self.generation += 1
        return self.generation

    def record_sweep(
        self,
        touched: "frozenset[tuple[str, str]] | set[tuple[str, str]]",
        generation: int | None = None,
    ) -> ViewDelta:
        """Mark one metrics-only sweep that touched exactly *touched* keys.

        *generation* overrides the default +1 step (the collector master
        stamps merged views with the sum of child generations).  Returns
        the journal entry.
        """
        self._assert_mutable()
        base = self.generation
        self.generation = base + 1 if generation is None else generation
        delta = ViewDelta(
            kind=DeltaKind.METRICS_ONLY,
            base_generation=base,
            generation=self.generation,
            touched=frozenset(touched),
        )
        self._journal.append(delta)
        return delta

    def record_structure_change(self, generation: int | None = None) -> ViewDelta:
        """Mark a sweep that changed topology/capacities (full invalidation).

        Bumps both stamp levels and journals a ``TOPOLOGY_CHANGED`` delta.
        """
        self._assert_mutable()
        base = self.generation
        self.generation = base + 1 if generation is None else generation
        self.structure_generation += 1
        delta = ViewDelta(
            kind=DeltaKind.TOPOLOGY_CHANGED,
            base_generation=base,
            generation=self.generation,
        )
        self._journal.append(delta)
        return delta

    def deltas_since(self, generation: int) -> list[ViewDelta] | None:
        """The contiguous delta chain from *generation* to the current one.

        Returns ``[]`` when the view has not advanced, the ordered deltas
        whose intervals exactly tile ``(generation, self.generation]`` when
        the journal can account for every step, and ``None`` when it cannot
        (journal overrun, or generations minted via :meth:`bump_generation`)
        — the caller must then invalidate everything.
        """
        if generation == self.generation:
            return []
        if generation > self.generation:
            return None
        chain: list[ViewDelta] = []
        expected = self.generation
        for delta in reversed(self._journal):
            if delta.generation != expected:
                if delta.generation < expected:
                    return None  # gap minted without a journal entry
                continue  # newer duplicate stamp; keep scanning back
            chain.append(delta)
            expected = delta.base_generation
            if expected <= generation:
                break
        if expected != generation:
            return None
        chain.reverse()
        return chain

    def link_use(self, link_name: str, from_node: str) -> TimeSeries:
        """Used-bandwidth series (bits/s) for a link direction."""
        return self.metrics.series(link_name, from_node)


class Collector(abc.ABC):
    """Common lifecycle for collectors.

    ``start()`` launches the collection process(es) on the simulation
    engine and returns an event that fires once the first full sweep has
    completed (discovery + first samples), after which :meth:`view` is
    usable.
    """

    def __init__(self) -> None:
        self._view: NetworkView | None = None

    @abc.abstractmethod
    def start(self):
        """Begin collecting; returns a 'ready' event."""

    @abc.abstractmethod
    def stop(self) -> None:
        """Stop collecting (idempotent)."""

    @property
    def ready(self) -> bool:
        """True once a view is available."""
        return self._view is not None

    def view(self) -> NetworkView:
        """The current network view (raises until ready)."""
        if self._view is None:
            raise CollectorError(
                f"{type(self).__name__} has no view yet; wait for start() event"
            )
        return self._view
