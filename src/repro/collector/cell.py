"""Cells and the shard registry: the sharding unit of a federated Remos.

A :class:`Cell` is one collector plus its own snapshot publisher — the
collector/publisher/modeler triple that used to exist only as the implicit
singleton inside ``RemosService``.  Making it a first-class object turns
:class:`~repro.collector.master.CollectorMaster` into *one possible cell
root* rather than the root of the world: a single-cell deployment wraps
its master in ``Cell("root", master)``, while a federation runs one cell
per region (each with a scoped collector) plus a backbone cell scoped to
the inter-region gateways, and composes them through
:mod:`repro.federation`.

The :class:`ShardRegistry` answers the question every federated query
starts with — *which cell owns this host?* — from the cells' current
views, reindexing lazily when a cell's topology structure changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.collector.base import Collector, NetworkView
from repro.collector.master import CollectorMaster
from repro.util.errors import CollectorError, ConfigurationError, QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repro.core imports us)
    from repro.core.api import Remos
    from repro.core.snapshot import Snapshot


class Cell:
    """One shard of the collection plane: a collector and its epochs.

    Parameters
    ----------
    name:
        Shard identifier; appears on spans, gauges and slow-query records.
    collector:
        The cell's collector — a scoped :class:`SNMPCollector` for a
        region, a :class:`CollectorMaster` for a single-cell deployment,
        or any other :class:`Collector`.
    gateways:
        Names of this cell's border routers (the nodes its WAN links
        attach to).  Empty for single-cell deployments.
    """

    def __init__(
        self,
        name: str,
        collector: Collector,
        gateways: Iterable[str] = (),
        enable_cache: bool = True,
    ):
        # Imported lazily: repro.core.api itself imports repro.collector.
        from repro.core.api import Remos

        if not name:
            raise ConfigurationError("cell name must be non-empty")
        self.name = name
        self.collector = collector
        self.gateways = tuple(gateways)
        self.remos: Remos = Remos(
            collector, enable_cache=enable_cache, auto_publish=False
        )

    # -- lifecycle (delegates to the collector) --------------------------------

    def start(self):
        """Start the collector; returns its 'first sweep done' event."""
        return self.collector.start()

    def stop(self) -> None:
        """Stop the collector (idempotent)."""
        self.collector.stop()

    @property
    def ready(self) -> bool:
        """True once the collector has a view."""
        return self.collector.ready

    # -- publication -----------------------------------------------------------

    def refresh(self) -> "Snapshot":
        """Fold child sweeps (masters only) and publish if the view moved."""
        if isinstance(self.collector, CollectorMaster):
            self.collector.refresh(allow_partial=True)
        return self.remos.publish()

    def snapshot(self) -> "Snapshot":
        """The cell's current published epoch (raises before the first)."""
        return self.remos.snapshot()

    @property
    def publisher(self):
        """The cell's snapshot publisher."""
        return self.remos.publisher

    @property
    def epoch(self) -> int:
        """The cell's publication counter (0 before the first snapshot)."""
        return self.remos.publisher.epoch

    def staleness_seconds(self) -> float | None:
        """Measurement age of the current snapshot (None before ready)."""
        try:
            return self.remos.staleness_seconds()
        except CollectorError:
            return None

    # -- membership ------------------------------------------------------------

    def view(self) -> NetworkView:
        """The collector's live view (raises until ready)."""
        return self.collector.view()

    def hosts(self) -> tuple[str, ...]:
        """Compute-node names this cell owns (empty until ready)."""
        if not self.collector.ready:
            return ()
        topology = self.collector.view().topology
        return tuple(n.name for n in topology.nodes if n.is_compute)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cell {self.name!r} epoch={self.epoch}>"


class ShardRegistry:
    """Host → owning cell lookup across a fleet of cells.

    The index is rebuilt lazily whenever a cell's view appears or its
    ``structure_generation`` advances; metrics-only sweeps never touch it.
    Cell scopes must be disjoint — a host claimed by two cells is a
    configuration error, caught at index time.
    """

    def __init__(self, cells: Iterable[Cell] = ()):
        self._cells: dict[str, Cell] = {}
        self._index: dict[str, str] = {}
        self._stamps: dict[str, tuple[int, int]] = {}
        for cell in cells:
            self.add(cell)

    def add(self, cell: Cell) -> None:
        """Register a cell (names unique)."""
        if cell.name in self._cells:
            raise ConfigurationError(f"duplicate cell name {cell.name!r}")
        self._cells[cell.name] = cell

    @property
    def cells(self) -> tuple[Cell, ...]:
        """All registered cells, in registration order."""
        return tuple(self._cells.values())

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def cell(self, name: str) -> Cell:
        """Cell by shard name."""
        try:
            return self._cells[name]
        except KeyError:
            raise ConfigurationError(f"no cell named {name!r}") from None

    # -- host index ------------------------------------------------------------

    def _refresh_index(self) -> None:
        for cell in self._cells.values():
            if not cell.collector.ready:
                continue
            view = cell.collector.view()
            stamp = (id(view.topology), view.structure_generation)
            if self._stamps.get(cell.name) == stamp:
                continue
            # Drop this cell's stale claims, then re-claim.
            self._index = {
                host: shard
                for host, shard in self._index.items()
                if shard != cell.name
            }
            for host in cell.hosts():
                owner = self._index.get(host)
                if owner is not None and owner != cell.name:
                    raise ConfigurationError(
                        f"host {host!r} is claimed by cells {owner!r} and "
                        f"{cell.name!r}; cell scopes must be disjoint"
                    )
                self._index[host] = cell.name
            self._stamps[cell.name] = stamp

    def shard_of(self, host: str) -> str | None:
        """Name of the cell owning *host*, or None if no cell claims it."""
        shard = self._index.get(host)
        if shard is None:
            self._refresh_index()
            shard = self._index.get(host)
        return shard

    def cell_of(self, host: str) -> Cell:
        """The cell owning *host* (raises QueryError for unknown hosts)."""
        shard = self.shard_of(host)
        if shard is None:
            raise QueryError(f"no shard owns node {host!r}")
        return self._cells[shard]

    def partition(self, names: Iterable[str]) -> dict[str, list[str]]:
        """Group *names* by owning shard, preserving order within groups.

        Raises :class:`~repro.util.errors.QueryError` if any name is
        unclaimed.
        """
        groups: dict[str, list[str]] = {}
        for name in names:
            shard = self.shard_of(name)
            if shard is None:
                raise QueryError(f"no shard owns node {name!r}")
            groups.setdefault(shard, []).append(name)
        return groups

    def hosts(self) -> tuple[str, ...]:
        """Every host any ready cell owns."""
        self._refresh_index()
        return tuple(self._index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardRegistry cells={sorted(self._cells)}>"
