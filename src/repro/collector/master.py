"""Multi-collector coordination.

"A large environment may require multiple cooperating Collectors" (§5).
The master owns several collectors — e.g. one SNMP collector per campus
plus a benchmark collector for the WAN between them — starts them together,
and merges their views into one topology + metric store for the Modeler.

Merge rules: nodes are united by name (first collector to report a node
wins its attributes); links likewise; metric series are adopted from
whichever collector measured the direction (earlier collectors take
precedence on conflicts).
"""

from __future__ import annotations

from repro import obs
from repro.collector.base import Collector, NetworkView
from repro.collector.metrics import MetricsStore
from repro.net import Topology
from repro.sim import Engine
from repro.util.errors import CollectorError, ConfigurationError

_log = obs.get_logger("repro.collector.master")


class CollectorMaster(Collector):
    """Facade over several collectors presenting one merged view."""

    def __init__(self, env: Engine, collectors: list[Collector]):
        super().__init__()
        if not collectors:
            raise ConfigurationError("master needs at least one collector")
        self.env = env
        self.collectors = list(collectors)
        self._started = False

    def start(self):
        """Start every child; returns an event firing when all are ready."""
        if self._started:
            raise ConfigurationError("master already started")
        self._started = True
        ready = self.env.event()
        child_events = [collector.start() for collector in self.collectors]

        def waiter(env):
            yield env.all_of(child_events)
            self._view = self._merge()
            ready.succeed(self._view)

        self.env.process(waiter(self.env), name="collector-master")
        return ready

    def stop(self) -> None:
        """Stop every child."""
        for collector in self.collectors:
            collector.stop()

    def refresh(self) -> NetworkView:
        """Re-merge child views (call after children kept polling)."""
        if not all(collector.ready for collector in self.collectors):
            raise CollectorError("cannot refresh: some collectors are not ready")
        self._view = self._merge()
        return self._view

    def _merge(self) -> NetworkView:
        merged = Topology(name="merged")
        metrics = MetricsStore()
        for collector in self.collectors:
            view = collector.view()
            for node in view.topology.nodes:
                if not merged.has_node(node.name):
                    merged.add_node(node)
            for link in view.topology.links:
                try:
                    merged.link(link.name)
                except Exception:
                    merged.add_link(
                        link.a, link.b, link.capacity, link.latency, name=link.name
                    )
            metrics.merge_from(view.metrics)
        # Sum of child generations: monotone because every child's own
        # generation is, so Modeler caches invalidate whenever any child
        # completed a sweep between refreshes.
        generation = sum(collector.view().generation for collector in self.collectors)
        obs.inc(
            "remos_collector_merges_total",
            help="View merges performed by the collector master",
        )
        if _log.enabled_for("info"):
            _log.info(
                "views_merged",
                collectors=len(self.collectors),
                nodes=len(merged.nodes),
                links=len(merged.links),
                generation=generation,
            )
        return NetworkView(topology=merged, metrics=metrics, generation=generation)
