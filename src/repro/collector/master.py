"""Multi-collector coordination.

"A large environment may require multiple cooperating Collectors" (§5).
The master owns several collectors — e.g. one SNMP collector per campus
plus a benchmark collector for the WAN between them — starts them together,
and merges their views into one topology + metric store for the Modeler.

Merge rules: nodes are united by name (first collector to report a node
wins its attributes); links likewise; metric series are adopted from
whichever collector measured the direction (earlier collectors take
precedence on conflicts).  Precedence is list order in ``collectors`` and
is asserted by ``tests/collector/test_master.py``.

Since the incremental-view rework the master keeps its merged
:class:`NetworkView` **persistent across refreshes**: a steady-state
``refresh()`` reads each child's delta journal and applies only what the
child sweeps actually touched (adopting new series by reference, advancing
the merged stamps, journalling one merged delta), instead of rebuilding
the merged topology and metric store from scratch.  A full re-merge still
happens — into the *same* view object, stamped as a structure change —
whenever a child reports a ``TOPOLOGY_CHANGED`` delta, a child's journal
cannot account for every generation step, or the set of ready children
changes.  Construct with ``full_rebuild=True`` to restore the legacy
rebuild-everything behaviour (a fresh view object per refresh); the
steady-state refresh benchmark uses it as the head-to-head baseline.
"""

from __future__ import annotations

from repro import obs
from repro.collector.base import Collector, NetworkView
from repro.collector.metrics import MetricsStore
from repro.net import Topology
from repro.sim import Engine
from repro.util.errors import CollectorError, ConfigurationError, TopologyError

_log = obs.get_logger("repro.collector.master")


class CollectorMaster(Collector):
    """Facade over several collectors presenting one merged view.

    Parameters
    ----------
    env:
        The simulation engine the children run on.
    collectors:
        Children in precedence order (earlier wins merge conflicts).
    allow_partial:
        Default for :meth:`refresh`'s degraded mode: merge the children
        that are ready and skip (but count) the rest, instead of raising
        while any child is still unready.
    full_rebuild:
        ``True`` restores the legacy behaviour of re-merging everything
        into a fresh :class:`NetworkView` object on every refresh; kept
        for the incremental-vs-rebuild head-to-head in
        ``benchmarks/bench_refresh_cost.py`` and differential tests.
    """

    def __init__(
        self,
        env: Engine,
        collectors: list[Collector],
        allow_partial: bool = False,
        full_rebuild: bool = False,
    ):
        super().__init__()
        if not collectors:
            raise ConfigurationError("master needs at least one collector")
        self.env = env
        self.collectors = list(collectors)
        self.allow_partial = allow_partial
        self.full_rebuild = full_rebuild
        self._started = False
        # Incremental-merge state: which children the persistent view
        # covers, the child generation each was last applied at, the child
        # view object identity seen, and which child owns each metric key.
        self._merged_children: tuple[int, ...] = ()
        self._child_generations: dict[int, int] = {}
        self._child_views: dict[int, NetworkView] = {}
        self._owner: dict[tuple[str, str], int] = {}
        # Merged generation = sum of child generations + this offset; the
        # offset absorbs forced structural bumps so the stamp stays
        # monotone even when no child advanced.
        self._generation_offset = 0
        self.full_merges = 0
        self.delta_merges = 0
        self.refreshes_skipped = 0

    def start(self):
        """Start every child; returns an event firing when all are ready."""
        if self._started:
            raise ConfigurationError("master already started")
        self._started = True
        ready = self.env.event()
        child_events = [collector.start() for collector in self.collectors]

        def waiter(env):
            yield env.all_of(child_events)
            ready.succeed(self.refresh())

        self.env.process(waiter(self.env), name="collector-master")
        return ready

    def stop(self) -> None:
        """Stop every child."""
        for collector in self.collectors:
            collector.stop()

    # -- refresh -----------------------------------------------------------------

    def refresh(self, allow_partial: bool | None = None) -> NetworkView:
        """Fold the children's latest sweeps into the merged view.

        The default (and the behaviour before degraded mode existed) is to
        raise :class:`CollectorError` while any child is unready.  With
        *allow_partial* — per call, or set on the constructor — the master
        instead merges the children that are ready, counts each skipped
        child on the ``remos_collector_refresh_skipped_total`` metric, and
        folds latecomers in (as a structure change) once they come up.
        At least one child must be ready either way.
        """
        allow = self.allow_partial if allow_partial is None else allow_partial
        ready = tuple(
            index
            for index, collector in enumerate(self.collectors)
            if collector.ready
        )
        skipped = [index for index in range(len(self.collectors)) if index not in ready]
        if skipped and not allow:
            raise CollectorError("cannot refresh: some collectors are not ready")
        if not ready:
            raise CollectorError("cannot refresh: no collector is ready")
        for index in skipped:
            self.refreshes_skipped += 1
            obs.inc(
                "remos_collector_refresh_skipped_total",
                help="Unready collectors skipped by degraded master refreshes",
                collector=type(self.collectors[index]).__name__,
            )
        if skipped and _log.enabled_for("warning"):
            _log.warning(
                "refresh_degraded",
                ready=len(ready),
                skipped=len(skipped),
            )

        if self.full_rebuild or self._view is None:
            self._view = self._full_merge(ready, into=None)
        elif not self._apply_deltas(ready):
            self._full_merge(ready, into=self._view)
        return self._view

    # -- full merge ----------------------------------------------------------------

    def _merged_generation(self, ready: tuple[int, ...]) -> int:
        return self._generation_offset + sum(
            self.collectors[index].view().generation for index in ready
        )

    def _full_merge(
        self, ready: tuple[int, ...], into: NetworkView | None
    ) -> NetworkView:
        """Rebuild topology, metrics and ownership from every ready child.

        With *into* the rebuild lands in that persistent view object and is
        stamped as a structure change (the merged world may differ
        arbitrarily); otherwise a fresh view is returned (first merge, or
        legacy ``full_rebuild`` mode).
        """
        merged = Topology(name="merged")
        metrics = MetricsStore()
        owner: dict[tuple[str, str], int] = {}
        for index in ready:
            view = self.collectors[index].view()
            for node in view.topology.nodes:
                if not merged.has_node(node.name):
                    merged.add_node(node)
            for link in view.topology.links:
                try:
                    merged.link(link.name)
                except TopologyError:
                    merged.add_link(
                        link.a, link.b, link.capacity, link.latency, name=link.name
                    )
            for key in view.metrics.keys():
                if key not in owner:
                    owner[key] = index
            metrics.merge_from(view.metrics)
            self._child_generations[index] = view.generation
            self._child_views[index] = view
        self._merged_children = ready
        self._owner = owner
        # Sum of child generations (+ structural offset): monotone because
        # every child's own generation is, so Modeler caches invalidate
        # whenever any child completed a sweep between refreshes.
        generation = self._merged_generation(ready)
        self.full_merges += 1
        obs.inc(
            "remos_collector_merges_total",
            help="View merges performed by the collector master",
        )
        obs.inc(
            "remos_collector_full_merges_total",
            help="Master refreshes that re-merged every child view from scratch",
        )
        if into is None:
            result = NetworkView(topology=merged, metrics=metrics, generation=generation)
        else:
            # In-place rebuild: consumers holding this view keep it, and the
            # structure-change record tells them to drop derived state.  The
            # stamp must advance even if no child swept since the last
            # refresh, so absorb any shortfall into the offset.
            if generation <= into.generation:
                self._generation_offset += into.generation + 1 - generation
                generation = into.generation + 1
            into.topology = merged
            into.metrics = metrics
            into.record_structure_change(generation=generation)
            result = into
        if _log.enabled_for("info"):
            _log.info(
                "views_merged",
                collectors=len(ready),
                nodes=len(merged.nodes),
                links=len(merged.links),
                generation=generation,
                in_place=into is not None,
            )
        return result

    # -- incremental merge ---------------------------------------------------------

    def _apply_deltas(self, ready: tuple[int, ...]) -> bool:
        """Fold child journals into the persistent view; False => re-merge.

        Only metrics-only chains are applied incrementally.  A structural
        child delta, a journal the child cannot account for (e.g. a hand
        bump), a replaced child view object, or a change in the ready set
        all return False, and the caller falls back to a full in-place
        re-merge.
        """
        view = self._view
        assert view is not None
        if ready != self._merged_children:
            return False
        chains: dict[int, list] = {}
        for index in ready:
            child_view = self.collectors[index].view()
            if self._child_views.get(index) is not child_view:
                return False
            chain = child_view.deltas_since(self._child_generations[index])
            if chain is None or any(delta.is_structural for delta in chain):
                return False
            if chain:
                chains[index] = chain
        if not chains:
            return True  # nothing swept since the last refresh
        touched_all: set[tuple[str, str]] = set()
        for index, chain in chains.items():
            child_metrics = self.collectors[index].view().metrics
            for delta in chain:
                touched_all |= delta.touched
                for key in delta.touched:
                    holder = self._owner.get(key)
                    if holder is None or index < holder:
                        # New direction, or a higher-precedence child began
                        # measuring one a later child owned: (re-)adopt.
                        view.metrics.adopt(key, child_metrics.series(*key))
                        self._owner[key] = index
            self._child_generations[index] = self.collectors[index].view().generation
        # Shared series grew in place; advance the O(1) newest stamp — from
        # the *owning* (merged-visible) series only, never from a shadowed
        # conflict series, so the merged evaluation clock stays exactly
        # what a full re-merge would have computed.
        for key in touched_all:
            if view.metrics.has_series(*key):
                series = view.metrics.series(*key)
                if not series.empty:
                    view.metrics.bump_latest(series.latest()[0])
        generation = self._merged_generation(ready)
        view.record_sweep(touched_all, generation=generation)
        self.delta_merges += 1
        obs.inc(
            "remos_collector_merges_total",
            help="View merges performed by the collector master",
        )
        obs.inc(
            "remos_collector_delta_merges_total",
            help="Master refreshes applied as incremental metric deltas",
        )
        if _log.enabled_for("debug"):
            _log.debug(
                "deltas_applied",
                children=len(chains),
                touched=len(touched_all),
                generation=generation,
            )
        return True
