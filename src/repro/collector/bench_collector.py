"""The benchmark (active-probing) collector.

"We also have a Collector that uses benchmarks to probe networks that do
not respond to our SNMP queries (e.g. wide-area networks run by commercial
ISPs)" (§5).  This collector never talks to agents; it measures what an
application would see:

* **latency probe** — a zero-byte transfer measures one-way path delay;
* **throughput probe** — a short greedy transfer measures achievable
  bandwidth between the pair at that instant.

Because probing reveals end-to-end behaviour but not internals, the
resulting view is the paper's *cloud abstraction*: each probed host hangs
off an opaque network node by a logical link whose capacity is the largest
throughput ever observed from that host and whose utilization series is
capacity minus the currently observed throughput.
"""

from __future__ import annotations

import itertools

from repro import obs
from repro.collector.base import Collector, NetworkView
from repro.collector.metrics import MetricsStore
from repro.net import Topology
from repro.netsim import FluidNetwork
from repro.sim import Interrupt
from repro.util.errors import ConfigurationError

CLOUD_NODE = "cloud"

_log = obs.get_logger("repro.collector.bench")


class BenchmarkCollector(Collector):
    """Active prober producing a cloud-abstraction view of the network.

    Parameters
    ----------
    net:
        The fluid network to probe (probes are real transfers and do load
        the network — that is the honest cost of this collector).
    hosts:
        Hosts to probe pairwise.
    probe_size:
        Bytes per throughput probe; small to bound intrusiveness.
    probe_interval:
        Seconds between full probe sweeps.
    """

    def __init__(
        self,
        net: FluidNetwork,
        hosts: list[str],
        probe_size: float = 64e3,
        probe_interval: float = 5.0,
        series_capacity: int = 4096,
    ):
        super().__init__()
        if len(hosts) < 2:
            raise ConfigurationError("benchmark collector needs at least two hosts")
        if probe_size <= 0 or probe_interval <= 0:
            raise ConfigurationError("probe size and interval must be positive")
        self.net = net
        self.env = net.env
        self.hosts = list(hosts)
        self.probe_size = probe_size
        self.probe_interval = probe_interval
        self.metrics = MetricsStore(series_capacity)
        self.probes_sent = 0
        self.sweeps_completed = 0
        self._process = None
        # Running per-host estimates feeding the logical topology.
        self._best_throughput: dict[str, float] = {}
        self._latency: dict[str, float] = {}
        self._pending_use: dict[str, list[float]] = {}
        # Access-link directions the last sweep recorded samples for.
        self._last_touched: set[tuple[str, str]] = set()

    def start(self):
        """Launch probing; returns the 'first sweep done' event."""
        if self._process is not None:
            raise ConfigurationError("collector already started")
        ready = self.env.event()
        self._process = self.env.process(self._run(ready), name="bench-collector")
        return ready

    def stop(self) -> None:
        """Stop probing (idempotent)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")

    # -- probing process ---------------------------------------------------------

    def _run(self, ready):
        try:
            yield from self._sweep()
            self._view = self._build_view()
            ready.succeed(self._view)
            while True:
                yield self.env.timeout(self.probe_interval)
                yield from self._sweep()
                self._refresh_view()
        except Interrupt:
            pass

    def _sweep(self):
        """Probe every host pair once (sequentially, to avoid self-contention)."""
        # Detached: probe transfers yield to the engine mid-span (see the
        # SNMP collector for the rationale).
        with obs.span("collector.sweep", detached=True) as sp:
            probes_before = self.probes_sent
            sim_started = self.env.now
            yield from self._probe_all_pairs()
            if sp:
                sp.set(
                    collector="benchmark",
                    generation=self.sweeps_completed,
                    probes=self.probes_sent - probes_before,
                    sim_elapsed=self.env.now - sim_started,
                )
        obs.inc(
            "remos_collector_sweeps_total",
            help="Completed collector measurement sweeps",
            collector="benchmark",
        )
        if _log.enabled_for("debug"):
            _log.debug(
                "sweep",
                sweeps=self.sweeps_completed,
                probes_sent=self.probes_sent,
                sim_now=self.env.now,
            )

    def _probe_all_pairs(self):
        self._pending_use = {host: [] for host in self.hosts}
        for src, dst in itertools.combinations(self.hosts, 2):
            # Latency probe: zero bytes, completes after one path latency.
            latency_probe = self.net.transfer(src, dst, 0, label=f"probe-lat:{src}->{dst}")
            start = self.env.now
            yield latency_probe.done
            latency = self.env.now - start
            # Throughput probe.
            probe = self.net.transfer(src, dst, self.probe_size, label=f"probe:{src}->{dst}")
            yield probe.done
            self.probes_sent += 2
            transfer_time = max(1e-12, probe.elapsed - latency)
            throughput = self.probe_size * 8.0 / transfer_time
            for host in (src, dst):
                self._best_throughput[host] = max(
                    self._best_throughput.get(host, 0.0), throughput
                )
                # Half the end-to-end latency per logical access link.
                self._latency.setdefault(host, latency / 2.0)
                self._pending_use[host].append(throughput)
        self.sweeps_completed += 1
        now = self.env.now
        self._last_touched = set()
        for host, samples in self._pending_use.items():
            if not samples:
                continue
            observed = max(samples)
            capacity = self._best_throughput[host]
            # What the probe could not get counts as "in use" on the
            # host's logical access link.
            self.metrics.record(self._link_name(host), host, now, capacity - observed)
            self._last_touched.add((self._link_name(host), host))

    @staticmethod
    def _link_name(host: str) -> str:
        return f"{host}--{CLOUD_NODE}"

    def _build_topology(self) -> Topology:
        topology = Topology(name="probed-cloud")
        topology.add_network_node(CLOUD_NODE)
        for host in self.hosts:
            topology.add_compute_node(host)
            topology.add_link(
                host,
                CLOUD_NODE,
                capacity=self._best_throughput[host],
                latency=self._latency[host],
                name=self._link_name(host),
            )
        return topology

    def _build_view(self) -> NetworkView:
        # Generation counts completed probe sweeps, surviving view rebuilds
        # so Modeler caches never outlive a sweep.
        return NetworkView(
            topology=self._build_topology(),
            metrics=self.metrics,
            generation=self.sweeps_completed,
        )

    def _refresh_view(self) -> None:
        # Capacities only ever grow (best observed); when one did, the
        # cloud abstraction itself changed: swap in a rebuilt topology and
        # journal a structure change so consumers drop derived state.  A
        # quiet sweep is journalled as a metrics-only delta over the access
        # links actually sampled.  Either way the view *object* persists,
        # letting the master and Modeler apply deltas in place.
        view = self._view
        assert view is not None
        stale = any(
            view.topology.link(self._link_name(host)).capacity
            < self._best_throughput[host]
            for host in self.hosts
        )
        if stale:
            view.topology = self._build_topology()
            view.record_structure_change(generation=self.sweeps_completed)
        else:
            view.record_sweep(self._last_touched, generation=self.sweeps_completed)
