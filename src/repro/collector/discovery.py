"""SNMP topology discovery.

Breadth-first search over manageable nodes: starting from seed agents, each
node's interface/neighbour tables reveal its links and the devices on the
far end; neighbours that also run agents are enqueued and walked in turn.
Nodes without agents (typical for end hosts in the testbed) are added as
compute nodes with the attributes reported by the managed side of their
access link.

Latency is NOT discoverable through SNMP; following the paper ("the
Collector currently assumes a fixed per-hop delay"), every discovered link
is annotated with a configurable constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net import Topology
from repro.snmp import SNMPClient, mib
from repro.util.errors import CollectorError


@dataclass
class DiscoveryResult:
    """Output of one discovery sweep."""

    topology: Topology
    managed_nodes: list[str]
    """Nodes whose agents answered (these will be polled for counters)."""
    interface_map: dict[str, dict[int, str]] = field(default_factory=dict)
    """node -> ifIndex -> link name, for the polling loop."""


def discover(
    client: SNMPClient,
    seeds: list[str],
    per_hop_latency: float = 0.1e-3,
    scope: "set[str] | frozenset[str] | None" = None,
):
    """Generator (run in a sim process): BFS discovery from *seeds*.

    Returns a :class:`DiscoveryResult`.  Raises CollectorError if no seed
    agent answers.

    *scope*, when given, bounds the walk to a region: nodes outside the
    set are never visited, and links whose far end lies outside are left
    unrecorded (and unpolled) — they belong to whichever collector owns
    the neighbouring region.  This is what lets several scoped collectors
    share one physical network without double-counting border links: each
    cell's collector discovers exactly its shard, and a backbone collector
    scoped to the gateway routers discovers exactly the inter-shard links.
    """
    scope_set = None if scope is None else set(scope)
    topology = Topology(name="discovered")
    managed: list[str] = []
    interface_map: dict[str, dict[int, str]] = {}
    visited: set[str] = set()
    pending_links: dict[str, tuple[str, str, float]] = {}
    queue = list(seeds)

    while queue:
        node_name = queue.pop(0)
        if node_name in visited:
            continue
        if scope_set is not None and node_name not in scope_set:
            continue  # misconfigured seed pointing outside the region
        visited.add(node_name)
        if node_name not in client.agents:
            continue
        try:
            descr = yield from client.get(node_name, mib.SYS_DESCR)
        except Exception:
            continue  # unreachable: treated as unmanaged
        managed.append(node_name)
        is_router = "router" in str(descr)
        try:
            raw_xbar = yield from client.get(node_name, mib.NODE_INTERNAL_BW)
            internal_bw = float(raw_xbar) if raw_xbar else float("inf")
        except Exception:
            internal_bw = float("inf")  # agent without the enterprise OID
        if not topology.has_node(node_name):
            if is_router:
                topology.add_network_node(node_name, internal_bandwidth=internal_bw)
            else:
                # Managed hosts report their resources (speed, memory).
                try:
                    speed = float((yield from client.get(node_name, mib.HOST_SPEED_FLOPS)))
                    memory = float((yield from client.get(node_name, mib.HOST_MEMORY_BYTES)))
                except Exception:
                    speed, memory = 1e8, 256e6
                topology.add_compute_node(
                    node_name,
                    compute_speed=speed,
                    memory_bytes=memory,
                    internal_bandwidth=internal_bw,
                )

        speeds = yield from client.walk(node_name, mib.IF_SPEED)
        neighbors = yield from client.walk(node_name, mib.IF_NEIGHBOR)
        speed_by_index = {
            mib.column_index(oid, mib.IF_SPEED): value for oid, value in speeds
        }
        interface_map[node_name] = {}
        for oid, value in neighbors:
            if_index = mib.column_index(oid, mib.IF_NEIGHBOR)
            neighbor_name, link_name = str(value).split("|", 1)
            if scope_set is not None and neighbor_name not in scope_set:
                continue  # border link: owned by the neighbouring region
            interface_map[node_name][if_index] = link_name
            capacity = float(speed_by_index.get(if_index, 0) or 0)
            pending_links.setdefault(
                link_name, (node_name, neighbor_name, capacity)
            )
            if neighbor_name not in visited:
                queue.append(neighbor_name)

    if not managed:
        raise CollectorError(f"discovery failed: no seed agent answered ({seeds})")

    # Materialise nodes seen only as neighbours (unmanaged -> assume host),
    # then the links.
    for link_name, (a, b, capacity) in pending_links.items():
        for name in (a, b):
            if not topology.has_node(name):
                topology.add_compute_node(name)
        if capacity <= 0:
            raise CollectorError(f"link {link_name!r} reported zero ifSpeed")
        topology.add_link(a, b, capacity, per_hop_latency, name=link_name)

    return DiscoveryResult(
        topology=topology, managed_nodes=managed, interface_map=interface_map
    )
