"""The SNMP-based collector.

Lifecycle (all in simulated time):

1. **Discovery** — BFS over agents (:mod:`repro.collector.discovery`)
   builds the topology view.
2. **Polling** — every ``poll_interval`` seconds, read
   ``ifInOctets``/``ifOutOctets`` for every interface of every managed
   node; the delta against the previous reading (wrap-corrected) over the
   elapsed time is one used-bandwidth sample for that link direction.

Counter wrap handling matters: Counter32 wraps every ~5.7 minutes at
100 Mbps, well within an Airshed run.
"""

from __future__ import annotations

from repro import obs
from repro.collector.base import Collector, NetworkView
from repro.collector.discovery import discover
from repro.collector.metrics import MetricsStore
from repro.netsim import FluidNetwork
from repro.sim import Interrupt
from repro.snmp import SNMPAgent, SNMPClient, mib
from repro.util.errors import ConfigurationError

_log = obs.get_logger("repro.collector.snmp")


class SNMPCollector(Collector):
    """Discovers the network via SNMP and polls octet counters.

    Parameters
    ----------
    net:
        The fluid network being observed (gives the engine and routing the
        client charges query latency against).
    agents:
        Agents by node name; typically every router, possibly hosts too.
    seeds:
        Discovery starting points; defaults to all agent-bearing nodes.
    poll_interval:
        Seconds between counter sweeps.
    client_host:
        Host the collector runs on (queries cost RTT from here).
    per_hop_latency:
        The constant latency assumed per link (§5: "the Collector
        currently assumes a fixed per-hop delay").
    scope:
        Optional set of node names bounding discovery to a region.  A
        scoped collector is one *cell* of a federation: it sees only the
        nodes in its scope and the links internal to it, leaving border
        links to the collector that owns the neighbouring region.
    """

    def __init__(
        self,
        net: FluidNetwork,
        agents: dict[str, SNMPAgent],
        seeds: list[str] | None = None,
        poll_interval: float = 2.0,
        client_host: str | None = None,
        per_hop_latency: float = 0.1e-3,
        series_capacity: int = 4096,
        scope: "set[str] | frozenset[str] | None" = None,
    ):
        super().__init__()
        if poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")
        self.net = net
        self.env = net.env
        self.client = SNMPClient(net, agents, client_host=client_host)
        self.seeds = list(seeds) if seeds is not None else sorted(agents)
        self.poll_interval = poll_interval
        self.per_hop_latency = per_hop_latency
        self.scope = frozenset(scope) if scope is not None else None
        self.metrics = MetricsStore(series_capacity)
        self.polls_completed = 0
        self.samples_recorded = 0
        self._process = None
        self._managed: list[str] = []
        self._interface_map: dict[str, dict[int, str]] = {}
        # (node, ifIndex, column) -> (time, raw counter value)
        self._previous: dict[tuple[str, int, str], tuple[float, int]] = {}
        # Metric-store keys recorded during the sweep in progress; becomes
        # the sweep's ViewDelta (topology is static after discovery, so
        # every sweep is metrics-only).
        self._sweep_touched: set[tuple[str, str]] = set()

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Launch discovery + polling; returns the 'first sweep done' event."""
        if self._process is not None:
            raise ConfigurationError("collector already started")
        ready = self.env.event()
        self._process = self.env.process(self._run(ready), name="snmp-collector")
        return ready

    def stop(self) -> None:
        """Stop polling (idempotent)."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")

    # -- collection process -----------------------------------------------------

    def _run(self, ready):
        try:
            result = yield from discover(
                self.client,
                self.seeds,
                per_hop_latency=self.per_hop_latency,
                scope=self.scope,
            )
            self._view = NetworkView(topology=result.topology, metrics=self.metrics)
            self._managed = result.managed_nodes
            self._interface_map = result.interface_map
            if _log.enabled_for("info"):
                _log.info(
                    "discovery_complete",
                    nodes=len(result.topology.nodes),
                    links=len(result.topology.links),
                    managed=len(result.managed_nodes),
                    sim_now=self.env.now,
                )
            # Prime the counters, wait one interval, take the first real
            # samples, then declare readiness.
            yield from self._sweep()
            yield self.env.timeout(self.poll_interval)
            yield from self._sweep()
            ready.succeed(self._view)
            while True:
                yield self.env.timeout(self.poll_interval)
                yield from self._sweep()
        except Interrupt:
            pass

    def _sweep(self):
        """One pass over every managed node's octet + CPU counters."""
        view = self._view
        assert view is not None
        # Detached span: the sweep yields to the engine between SNMP gets,
        # so it must not occupy the tracer's current-span slot (queries from
        # interleaved processes would otherwise nest under it).
        with obs.span("collector.sweep", detached=True) as sp:
            samples_before = self.samples_recorded
            sim_started = self.env.now
            self._sweep_touched = set()
            for node_name in self._managed:
                for if_index, link_name in self._interface_map[node_name].items():
                    for column_name, column in (
                        ("out", mib.IF_OUT_OCTETS),
                        ("in", mib.IF_IN_OCTETS),
                    ):
                        try:
                            raw = yield from self.client.get(node_name, column.extend(if_index))
                        except Exception:
                            continue  # agent died mid-run: skip this sample
                        self._record(node_name, if_index, link_name, column_name, int(raw))
                # Managed compute nodes also report CPU busy time.
                if view.topology.node(node_name).is_compute:
                    try:
                        raw = yield from self.client.get(node_name, mib.HOST_BUSY_CS)
                    except Exception:
                        continue
                    self._record_cpu(node_name, int(raw))
            self.polls_completed += 1
            generation = view.record_sweep(self._sweep_touched).generation
            samples = self.samples_recorded - samples_before
            if sp:
                sp.set(
                    collector="snmp",
                    generation=generation,
                    samples=samples,
                    sim_elapsed=self.env.now - sim_started,
                )
        obs.inc(
            "remos_collector_sweeps_total",
            help="Completed collector measurement sweeps",
            collector="snmp",
        )
        obs.inc(
            "remos_collector_samples_total",
            samples,
            help="Utilization samples recorded by collectors",
            collector="snmp",
        )
        if _log.enabled_for("debug"):
            _log.debug(
                "sweep",
                polls=self.polls_completed,
                generation=view.generation,
                samples=samples,
                sim_now=self.env.now,
            )

    def _record_cpu(self, node_name: str, raw: int) -> None:
        now = self.env.now
        key = (node_name, 0, "cpu")
        previous = self._previous.get(key)
        self._previous[key] = (now, raw)
        if previous is None:
            return
        then, before = previous
        dt = now - then
        if dt <= 0:
            return
        utilization = (raw - before) / 100.0 / dt
        self.metrics.record_cpu(node_name, now, utilization)
        self._sweep_touched.add((MetricsStore._CPU_KEY, node_name))
        self.samples_recorded += 1

    def _record(
        self, node_name: str, if_index: int, link_name: str, column_name: str, raw: int
    ) -> None:
        now = self.env.now
        key = (node_name, if_index, column_name)
        previous = self._previous.get(key)
        self._previous[key] = (now, raw)
        if previous is None:
            return  # first reading only primes the delta
        then, before = previous
        dt = now - then
        if dt <= 0:
            return
        delta = raw - before
        if delta < 0:
            delta += mib.COUNTER32_MAX  # Counter32 wrapped
        bits_per_second = delta * 8.0 / dt
        # 'out' counters describe the direction leaving this node; 'in'
        # counters describe the direction arriving (leaving the neighbour).
        # When the neighbour is itself managed its own 'out' covers that
        # direction, so skip the duplicate sample.
        view = self._view
        assert view is not None
        link = view.topology.link(link_name)
        if column_name == "out":
            from_node = node_name
        else:
            from_node = link.other(node_name)
            if from_node in self._managed:
                return
        self.metrics.record(link_name, from_node, now, bits_per_second)
        self._sweep_touched.add((link_name, from_node))
        self.samples_recorded += 1
