"""Experiment drivers shared by the benchmark harness and the CLI.

Each function builds a fresh world, injects the scenario's traffic, brings
monitoring up, runs the application, and returns what the paper's tables
report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adapt import AdaptationModule, MigrationPolicy, select_nodes
from repro.apps import FFT2D, Airshed
from repro.bench import DEFAULT_CALIBRATION
from repro.core import Timeframe
from repro.fx.program import FxProgram
from repro.fx.runtime import RunReport
from repro.testbed import CMU_HOSTS, TRAFFIC_M6_M8, build_cmu_testbed
from repro.testbed.cmu import (
    interfering_traffic_1,
    interfering_traffic_2,
    non_interfering_traffic,
)
from repro.traffic import TrafficScenario


def make_program(name: str, compiled_for: int | None = None) -> FxProgram:
    """Programs by the names used in the paper's tables."""
    if name == "FFT (512)":
        return FFT2D(512, compiled_for=compiled_for)
    if name == "FFT (1K)":
        return FFT2D(1024, compiled_for=compiled_for)
    if name == "Airshed":
        return Airshed(compiled_for=compiled_for)
    raise ValueError(f"unknown program {name!r}")


@dataclass
class ExperimentResult:
    """One (program, node set, traffic) measurement."""

    hosts: list[str]
    report: RunReport

    @property
    def elapsed(self) -> float:
        return self.report.elapsed


def run_fixed(
    program_name: str,
    hosts: list[str],
    scenario: TrafficScenario | None = None,
    compiled_for: int | None = None,
    warmup: float = 10.0,
) -> ExperimentResult:
    """Run a program on an explicit node set, optionally under traffic."""
    world = build_cmu_testbed(poll_interval=1.0)
    if scenario is not None:
        scenario.start(world.net)
    world.start_monitoring(warmup=warmup)
    runtime = world.runtime()
    program = make_program(program_name, compiled_for=compiled_for)
    report = world.env.run(until=runtime.launch(program, hosts))
    return ExperimentResult(hosts=list(hosts), report=report)


def run_selected(
    program_name: str,
    k: int,
    start: str = "m-4",
    scenario: TrafficScenario | None = None,
    timeframe: Timeframe | None = None,
    compiled_for: int | None = None,
    warmup: float = 10.0,
) -> ExperimentResult:
    """Select nodes via Remos (the §7.3 pipeline), then run the program."""
    world = build_cmu_testbed(poll_interval=1.0)
    if scenario is not None:
        scenario.start(world.net)
    remos = world.start_monitoring(warmup=warmup)
    selection = select_nodes(remos, CMU_HOSTS, k=k, start=start, timeframe=timeframe)
    runtime = world.runtime()
    program = make_program(program_name, compiled_for=compiled_for)
    report = world.env.run(until=runtime.launch(program, selection.hosts))
    return ExperimentResult(hosts=selection.hosts, report=report)


def run_adaptive(
    scenario: TrafficScenario | None,
    start_hosts: list[str],
    adaptive: bool,
    threshold: float = 0.1,
    correct_own_traffic: bool = True,
    warmup: float = 10.0,
) -> ExperimentResult:
    """Table 3's runs: Airshed compiled for 8 on 5 nodes, fixed or adaptive."""
    calibration = DEFAULT_CALIBRATION
    world = build_cmu_testbed(poll_interval=1.0)
    if scenario is not None:
        scenario.start(world.net)
    remos = world.start_monitoring(warmup=warmup)
    runtime = world.runtime()
    program = Airshed(compiled_for=8)
    hook = None
    adaptation = None
    if adaptive:
        adaptation = AdaptationModule(
            remos=remos,
            pool=CMU_HOSTS,
            policy=MigrationPolicy(
                threshold=threshold, correct_own_traffic=correct_own_traffic
            ),
            check_seconds=calibration.adapt_check_seconds,
            migration_seconds=calibration.migration_seconds,
        )
        hook = adaptation.hook
    report = world.env.run(until=runtime.launch(program, start_hosts, adapt_hook=hook))
    result = ExperimentResult(hosts=list(start_hosts), report=report)
    result.adaptation = adaptation  # type: ignore[attr-defined]
    return result


TABLE3_SCENARIOS = {
    "No Traffic": lambda: None,
    "Non-interfering": non_interfering_traffic,
    "Interfering-1": interfering_traffic_1,
    "Interfering-2": interfering_traffic_2,
}

__all__ = [
    "CMU_HOSTS",
    "TRAFFIC_M6_M8",
    "TABLE3_SCENARIOS",
    "ExperimentResult",
    "make_program",
    "run_adaptive",
    "run_fixed",
    "run_selected",
]
