"""Plain-text table rendering for benchmark output.

The benchmark harnesses print tables shaped like the paper's (node sets,
execution times, percent increases); this module keeps the formatting in
one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_seconds(value: float) -> str:
    """Seconds with sensible precision (matches the paper's style)."""
    if value < 1.0:
        return f"{value:.3f}"
    if value < 10.0:
        return f"{value:.2f}"
    return f"{value:.0f}"


def percent_increase(base: float, other: float) -> float:
    """How much slower *other* is than *base*, in percent."""
    if base <= 0:
        raise ValueError("baseline must be positive")
    return (other - base) / base * 100.0


@dataclass
class Table:
    """A printable results table."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        """Append a row (cells are str()-ed; floats get 4 significant digits)."""
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                rendered.append(f"{cell:.4g}")
            else:
                rendered.append(str(cell))
        if len(rendered) != len(self.columns):
            raise ValueError(
                f"row has {len(rendered)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(rendered)

    def render(self) -> str:
        """The table as aligned monospace text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells):
            return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        parts = [self.title, rule, line(self.columns), rule]
        parts.extend(line(row) for row in self.rows)
        parts.append(rule)
        return "\n".join(parts)

    def print(self) -> None:
        """Render to stdout."""
        print(self.render())
