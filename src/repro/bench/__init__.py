"""Benchmark support: calibration constants, harness, and table rendering."""

from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.bench.reporting import Table, format_seconds, percent_increase

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "Table",
    "format_seconds",
    "percent_increase",
]
