"""Calibration constants tying model work units to 1998 testbed seconds.

The paper's absolute numbers come from DEC Alpha workstations on 100 Mbps
point-to-point Ethernet.  We do not chase absolute equality — the substrate
here is a simulator — but the constants below put execution times in the
same ballpark so slowdown factors and crossovers are comparable.

Derivations
-----------
* ``alpha_flops`` — sustained flop rate of a ~1997 DEC Alpha on FFT-like
  kernels: a few tens of Mflop/s.  4e7 makes FFT(512) on 2 nodes land near
  the paper's 0.46 s (compute 2 x 5 N^2 log2 N / P flops ~ 0.30 s, plus a
  ~0.08 s transpose and latency).
* ``link_latency`` — one-way latency of a lightly loaded 100 Mbps Ethernet
  hop through a PC router, ~0.5 ms.
* Airshed constants — solved from the paper's Table 1/2/3 anchors:
  non-adaptive runtimes 908 s (3 nodes) and 650 s (5 nodes), and the
  interfering-traffic runtime 2113 s (3 nodes, naive placement).  With the
  redistribution traffic ~10x slower under the 90 Mbps competing stream,
  that fixes communication at ~134 s of the 3-node run, giving
  ``airshed_parallel_flops`` ~ 6.6e10, ``airshed_serial_flops`` ~ 8.9e9 and
  ``airshed_grid_bytes`` ~ 1.57e8 per redistribution (24 iterations).
* ``traffic_rate`` — the synthetic competing load.  90 Mbps of CBR on a
  100 Mbps link leaves ~10 % for application flows: the x10 communication
  slowdown behind Table 2's 79-194 % application slowdowns.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Calibration:
    """All tunable constants in one immutable bundle."""

    # Hosts.
    alpha_flops: float = 4e7
    host_memory_bytes: float = 256e6

    # Network.
    link_capacity: float = 100e6
    link_latency: float = 0.5e-3

    # FFT model.
    fft_element_bytes: float = 16.0  # complex double
    fft_flops_per_point: float = 5.0  # classic 5 N log2 N butterfly count

    # Airshed model (24 hourly iterations).
    airshed_iterations: int = 24
    airshed_parallel_flops: float = 6.6e10
    airshed_serial_flops: float = 8.9e9
    airshed_grid_bytes: float = 1.57e8
    airshed_boundary_bytes: float = 2e6
    airshed_gather_bytes: float = 4e6

    # Competing traffic and adaptation.
    traffic_rate: float = 90e6
    traffic_weight: float = 1000.0
    """Aggressiveness of the synthetic traffic under weighted max-min: the
    paper's generator is a non-backing-off blaster that holds its 90 Mbps
    no matter how many adaptive application flows contend (adaptive flows
    would otherwise win back equal shares), leaving them ~10 Mbps in total.
    An effectively-infinite weight reproduces that strict priority; with it
    the naively-placed Airshed lands within 1 % of the paper's 2113 s."""

    adapt_check_seconds: float = 3.0
    """Cost of one adaptation decision (Remos query + clustering); Table 3's
    941 s adaptive vs 862 s fixed implies ~3.3 s per iteration boundary."""

    migration_seconds: float = 0.5
    """Remapping bookkeeping cost per actual migration (data is replicated
    at migration points, so no payload copy is charged)."""


DEFAULT_CALIBRATION = Calibration()
