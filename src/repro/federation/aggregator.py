"""The tree-structured aggregation service.

Each :class:`Aggregator` node merges its children's summary snapshots —
cells contribute :class:`~repro.federation.summary.CellSummary` records,
child aggregators contribute their whole folded summary — plus the
inter-shard link bundles its own backbone cell observes.  Intra-shard
detail never travels up the tree; a parent knows shard sizes, epochs and
WAN bundles, nothing more.

Publication follows the snapshot discipline: :meth:`refresh` (single
writer — the federation sweeper) assembles a new
:class:`FederationSummary` only when a child epoch moved and installs it
with one atomic reference store; :meth:`current` is lock-free.  The
aggregator is duck-compatible with
:class:`~repro.core.snapshot.SnapshotPublisher` (``current()``, ``epoch``,
``publishes``, ``refresh()``) so the service front end can treat a
federation like any other publisher.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro import obs
from repro.collector.cell import Cell
from repro.federation.summary import CellSummary, FederationSummary, SummaryEdge, summarize_cell
from repro.util.errors import ConfigurationError

_log = obs.get_logger("repro.federation.aggregator")


class Aggregator:
    """One node of the aggregation tree.

    Parameters
    ----------
    children:
        Cells (leaves) and/or child aggregators (subtrees).
    backbone:
        The cell scoped to this level's border routers; its view supplies
        the inter-shard link bundles between this node's children.  A
        leaf-less root summarising a single cell may omit it.
    name:
        Aggregator identity; stamps the summaries and owns the edges.
    """

    def __init__(
        self,
        children: Iterable[Union[Cell, "Aggregator"]],
        backbone: Cell | None = None,
        name: str = "federation",
    ):
        self.name = name
        self.children = tuple(children)
        if not self.children:
            raise ConfigurationError("an aggregator needs at least one child")
        self.backbone = backbone
        names = [c.name for c in self.children]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate child names under {name!r}: {names}")
        self._current: FederationSummary | None = None
        self._stamp: tuple | None = None
        self.publishes = 0

    # -- publisher duck-typing ---------------------------------------------------

    @property
    def epoch(self) -> int:
        """Publication count (0 before the first summary)."""
        summary = self._current
        return 0 if summary is None else summary.epoch

    def current(self) -> FederationSummary | None:
        """The latest published summary (lock-free; None before first)."""
        return self._current

    # -- tree walking ------------------------------------------------------------

    def leaf_cells(self) -> tuple[Cell, ...]:
        """Every cell in this subtree, depth-first."""
        cells: list[Cell] = []
        for child in self.children:
            if isinstance(child, Aggregator):
                cells.extend(child.leaf_cells())
            else:
                cells.append(child)
        return tuple(cells)

    def backbones(self) -> dict[str, Cell]:
        """Backbone cells by owning aggregator name, whole subtree."""
        owners: dict[str, Cell] = {}
        if self.backbone is not None:
            owners[self.name] = self.backbone
        for child in self.children:
            if isinstance(child, Aggregator):
                owners.update(child.backbones())
        return owners

    # -- merge -------------------------------------------------------------------

    def _child_stamp(self) -> tuple:
        parts: list = []
        for child in self.children:
            parts.append(child.epoch)
        parts.append(self.backbone.epoch if self.backbone is not None else 0)
        return tuple(parts)

    def refresh(self) -> FederationSummary:
        """Re-merge child summaries if any child epoch moved.

        Single-writer by contract (the federation sweeper); cells that
        have not published yet are simply absent from the merge, so a
        federation comes up shard by shard.
        """
        # Fold subtrees before stamping: a child aggregator's epoch only
        # moves when its own refresh runs, so stamping first would let a
        # leaf move under a settled subtree without the parent noticing.
        folded: dict[str, FederationSummary] = {
            child.name: child.refresh()
            for child in self.children
            if isinstance(child, Aggregator)
        }
        stamp = self._child_stamp()
        current = self._current
        if current is not None and stamp == self._stamp:
            return current
        cells: dict[str, CellSummary] = {}
        edges: list[SummaryEdge] = []
        for child in self.children:
            if isinstance(child, Aggregator):
                subtree = folded[child.name]
                cells.update(subtree.cells)
                edges.extend(subtree.edges)
            elif child.epoch > 0:
                cells[child.name] = summarize_cell(child)
        edges.extend(self._backbone_edges(cells))
        summary = FederationSummary(
            name=self.name,
            epoch=self.epoch + 1,
            cells=cells,
            edges=tuple(edges),
        )
        # The one store readers synchronise on: atomic under the GIL.
        self._current = summary
        self._stamp = stamp
        self.publishes += 1
        obs.inc(
            "remos_federation_merges_total",
            help="Summary merges published by aggregators",
            aggregator=self.name,
        )
        if _log.enabled_for("debug"):
            _log.debug(
                "summary_published",
                aggregator=self.name,
                epoch=summary.epoch,
                shards=len(cells),
                edges=len(summary.edges),
            )
        return summary

    def _backbone_edges(self, cells: dict[str, CellSummary]) -> list[SummaryEdge]:
        """Bundle this level's WAN links by the shard pair they connect.

        Gateways are mapped to shards through the child summaries; links
        touching a gateway whose cell has not published yet are held back
        until it does (the merge stays conservative, never partial).
        """
        if self.backbone is None or self.backbone.epoch == 0:
            return []
        gateway_shard: dict[str, str] = {}
        for summary in cells.values():
            for gateway in summary.gateways:
                gateway_shard[gateway] = summary.shard
        topology = self.backbone.snapshot().view.topology
        bundles: dict[tuple[str, str], list] = {}
        for link in topology.links:
            shard_a = gateway_shard.get(link.a)
            shard_b = gateway_shard.get(link.b)
            if shard_a is None or shard_b is None or shard_a == shard_b:
                continue
            if shard_a > shard_b:
                shard_a, shard_b = shard_b, shard_a
            bundles.setdefault((shard_a, shard_b), []).append(link)
        edges: list[SummaryEdge] = []
        for (shard_a, shard_b), links in sorted(bundles.items()):
            links.sort(key=lambda link: link.name)
            first = links[0]
            gateway_a = first.a if gateway_shard[first.a] == shard_a else first.b
            gateway_b = first.other(gateway_a)
            edges.append(
                SummaryEdge(
                    a=shard_a,
                    b=shard_b,
                    gateway_a=gateway_a,
                    gateway_b=gateway_b,
                    members=tuple(link.name for link in links),
                    capacity=sum(link.capacity for link in links),
                    latency=min(link.latency for link in links),
                    owner=self.name,
                )
            )
        return edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Aggregator {self.name!r} children={len(self.children)} "
            f"epoch={self.epoch}>"
        )
