"""Deterministic multi-shard topologies for federation tests and benches.

:func:`build_federation` lays out ``shards`` identical leaf-spine regions
joined by a WAN of gateway-to-gateway links.  The layout is chosen so the
federated query plane and a single-cell oracle over the same wires agree
wherever exactness is claimed:

* every node name carries its shard prefix (``s3-leaf1-h2``), so shard
  membership is readable and name-based routing tie-breaks sort the same
  way in a cell's view and in the oracle's merged view;
* each shard has exactly **one** gateway, attached to exactly **one**
  spine (``spine0``), so the host-to-gateway segment of every cross-shard
  route is tie-free — the composed segment equals the oracle's route
  prefix/suffix by construction;
* no hierarchy is attached: discovered regional views have none either,
  so both query planes route with the lexicographic tie-break.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net import Topology
from repro.net.builder import TopologyBuilder
from repro.util.errors import ConfigurationError
from repro.util.units import parse_bandwidth


@dataclass(frozen=True)
class FederationPlan:
    """A built federation topology plus the partition metadata.

    ``regions`` maps each shard to its full node scope (hosts, switches
    and the gateway) — exactly what the shard's scoped collector should be
    given; the gateway set is the backbone collector's scope.
    """

    name: str
    topology: Topology
    shards: tuple[str, ...]
    regions: dict[str, frozenset[str]]
    gateways: dict[str, str]
    hosts: dict[str, tuple[str, ...]]
    wan_links: tuple[str, ...]

    @property
    def host_count(self) -> int:
        return sum(len(names) for names in self.hosts.values())

    def region_routers(self, shard: str) -> tuple[str, ...]:
        """The switch names (including the gateway) of one region."""
        hosts = set(self.hosts[shard])
        return tuple(
            sorted(name for name in self.regions[shard] if name not in hosts)
        )


def build_federation(
    shards: int = 4,
    leaves: int = 2,
    spines: int = 2,
    hosts_per_leaf: int = 4,
    *,
    host_capacity: "float | str" = "1Gbps",
    fabric_capacity: "float | str" = "10Gbps",
    wan_capacity: "float | str" = "2Gbps",
    wan: str = "mesh",
    wan_members: int = 1,
    rng: "random.Random | None" = None,
    jitter: float = 0.3,
    name: str | None = None,
) -> FederationPlan:
    """Build ``shards`` leaf-spine regions joined by a gateway WAN.

    ``wan="mesh"`` links every gateway pair directly (cross-shard routes
    are single summary hops); ``wan="ring"`` links neighbours only, so
    queries between non-adjacent shards transit intermediate gateways.
    ``wan_members`` lays parallel links per connected pair — the summary
    plane bundles them into one edge.  With *rng*, every link capacity is
    scaled by a deterministic factor in ``[1-jitter, 1+jitter]`` so
    differential suites exercise non-uniform bottlenecks.
    """
    if shards < 2:
        raise ConfigurationError(f"a federation needs at least 2 shards, got {shards}")
    if leaves < 1 or spines < 1 or hosts_per_leaf < 1:
        raise ConfigurationError(
            f"regions need positive dimensions, got {leaves}x{spines}x{hosts_per_leaf}"
        )
    if wan not in ("mesh", "ring"):
        raise ConfigurationError(f"unknown wan layout {wan!r}")
    if wan_members < 1:
        raise ConfigurationError("wan_members must be positive")

    def scaled(capacity: "float | str") -> float:
        value = parse_bandwidth(capacity) if isinstance(capacity, str) else capacity
        if rng is None:
            return value
        return value * (1.0 + jitter * (2.0 * rng.random() - 1.0))

    builder = TopologyBuilder(
        name or f"federation-{shards}x{leaves}x{spines}x{hosts_per_leaf}"
    )
    shard_names = tuple(f"s{i}" for i in range(shards))
    regions: dict[str, frozenset[str]] = {}
    gateways: dict[str, str] = {}
    hosts: dict[str, tuple[str, ...]] = {}
    for shard in shard_names:
        region: list[str] = []
        spine_names = [f"{shard}-spine{k}" for k in range(spines)]
        for spine in spine_names:
            builder.router(spine)
            region.append(spine)
        shard_hosts: list[str] = []
        for j in range(leaves):
            leaf = f"{shard}-leaf{j}"
            builder.router(leaf)
            region.append(leaf)
            for spine in spine_names:
                builder.link(leaf, spine, scaled(fabric_capacity))
            for m in range(hosts_per_leaf):
                host = f"{leaf}-h{m}"
                builder.host(host)
                builder.link(host, leaf, scaled(host_capacity))
                region.append(host)
                shard_hosts.append(host)
        gateway = f"{shard}-gw"
        builder.router(gateway)
        builder.link(gateway, spine_names[0], scaled(fabric_capacity))
        region.append(gateway)
        gateways[shard] = gateway
        regions[shard] = frozenset(region)
        hosts[shard] = tuple(shard_hosts)

    if wan == "mesh":
        pairs = [
            (shard_names[i], shard_names[j])
            for i in range(shards)
            for j in range(i + 1, shards)
        ]
    else:
        pairs = sorted(
            {
                tuple(sorted((shard_names[i], shard_names[(i + 1) % shards])))
                for i in range(shards)
            }
        )
    wan_links: list[str] = []
    for shard_a, shard_b in pairs:
        for member in range(wan_members):
            link_name = f"wan:{shard_a}|{shard_b}"
            if wan_members > 1:
                link_name = f"{link_name}/{member}"
            builder.link(
                gateways[shard_a],
                gateways[shard_b],
                scaled(wan_capacity),
                "1ms",
                name=link_name,
            )
            wan_links.append(link_name)

    topology = builder.build()
    return FederationPlan(
        name=topology.name,
        topology=topology,
        shards=shard_names,
        regions=regions,
        gateways=gateways,
        hosts=hosts,
        wan_links=tuple(wan_links),
    )
