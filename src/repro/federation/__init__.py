"""Federated Remos: many cells, one query plane.

A federation partitions the network into *cells* (shards), each running
its own collector and publishing its own frozen epochs
(:mod:`repro.collector.cell`).  A tree of :class:`Aggregator` nodes
merges per-cell summary snapshots — inter-shard link bundles plus
per-shard aggregate capacities — while intra-shard detail stays in the
leaves.  :class:`FederatedRemos` answers the existing query API over the
whole federation: intra-shard queries are delegated (bit-identical to a
single-cell deployment), cross-shard queries compose summary edges with
on-demand detail from the endpoint-hosting shards only.

See ``docs/FEDERATION.md`` for the cell model, merge semantics and the
exact-vs-conservative answer ladder.
"""

from repro.federation.aggregator import Aggregator
from repro.federation.api import FederatedRemos, FederationCacheStats
from repro.federation.service import FederationService
from repro.federation.summary import (
    CellSummary,
    FederationSummary,
    SummaryEdge,
    summarize_cell,
)
from repro.federation.topology import FederationPlan, build_federation
from repro.federation.world import FederationWorld

__all__ = [
    "Aggregator",
    "CellSummary",
    "FederatedRemos",
    "FederationCacheStats",
    "FederationPlan",
    "FederationService",
    "FederationSummary",
    "FederationWorld",
    "SummaryEdge",
    "build_federation",
    "summarize_cell",
]
