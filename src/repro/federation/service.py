"""FederationService: the query service over a federation of cells.

The reader side — coalescing, SLOs, slow-query log, health — is inherited
unchanged from :class:`~repro.service.core.QueryFrontEnd`, pointed at a
:class:`~repro.federation.api.FederatedRemos` facade.  What differs is
the writer: one **sweeper** thread advances the shared simulation engine
and then runs a per-shard sweep phase — publish every region cell,
publish the backbone, re-merge the aggregation tree — in that order, so
readers always observe cell epochs at least as new as the summary built
from them.  (One thread, many shards: the engine is not thread-safe, and
a sweep is cheap — per-cell refresh is an O(1) stamp compare when nothing
moved.)
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.federation.world import FederationWorld
from repro.service.core import QueryFrontEnd

_log = obs.get_logger("repro.federation.service")


class FederationService(QueryFrontEnd):
    """A snapshot-isolated query service over a :class:`FederationWorld`.

    Usage mirrors :class:`~repro.service.core.RemosService`::

        world = FederationWorld.build(shards=4, leaves=2, spines=2, hosts_per_leaf=8)
        with FederationService(world) as service:
            service.flow_info(variable_flows=[Flow("s0-leaf0-h0", "s3-leaf1-h2")])

    Parameters
    ----------
    world:
        The federation to serve (cells, backbone, aggregation tree).
    sweep_interval:
        Wall-clock seconds between sweeper iterations.
    sim_step:
        Simulated seconds advanced per sweeper iteration.
    **front_end:
        Everything :class:`QueryFrontEnd` accepts.
    """

    def __init__(
        self,
        world: FederationWorld,
        sweep_interval: float = 0.02,
        sim_step: float = 1.0,
        **front_end,
    ):
        super().__init__(world.make_remos(), **front_end)
        self.world = world
        self._env = world.env
        self._sweep_interval = sweep_interval
        self._sim_step = sim_step
        self._stop_event = threading.Event()
        self._sweeper: threading.Thread | None = None
        self._prepared = False

    # -- lifecycle ---------------------------------------------------------------

    def prepare(self, warmup: float = 0.0) -> "FederationService":
        """Bring every cell to readiness and publish the first summary,
        without starting any thread."""
        if self._prepared:
            return self
        pending = [cell.start() for cell in self.world.all_cells() if not cell.ready]
        if pending:
            self._env.run(until=self._env.all_of(pending))
        if warmup > 0:
            self._env.run(until=self._env.now + warmup)
        self.remos.refresh_all()
        self.publishes = self.remos.publisher.publishes
        self._prepared = True
        return self

    def start(self, warmup: float = 0.0) -> "FederationService":
        """Prepare (if not already), then start the sweeper thread."""
        if self._started:
            return self
        self.prepare(warmup)
        self._activate()
        self._sweeper = threading.Thread(
            target=self._sweep_loop, name="remos-fed-sweeper", daemon=True
        )
        self._sweeper.start()
        _log.info(
            "federation_service_started",
            shards=len(self.world.cells),
            sweep_interval=self._sweep_interval,
        )
        return self

    def stop(self) -> None:
        """Stop the sweeper and every collector (idempotent)."""
        if not self._started:
            return
        self._stop_event.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout=5.0)
            self._sweeper = None
        super().stop()
        self.world.stop()
        self._stop_event = threading.Event()
        self._prepared = False
        _log.info("federation_service_stopped", sweeps=self.sweeps)

    def __enter__(self) -> "FederationService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    def _sweep_loop(self) -> None:
        """The single writer: advance, publish each shard, merge, repeat."""
        while not self._stop_event.wait(self._sweep_interval):
            started = time.perf_counter()
            try:
                self._env.run(until=self._env.now + self._sim_step)
                # Shard phases before the merge: the summary must never be
                # newer than the cells it describes.
                for cell in self.world.cells.values():
                    cell.refresh()
                self.world.backbone.refresh()
                self.world.aggregator.refresh()
                self.sweeps += 1
                self.publishes = self.remos.publisher.publishes
                obs.inc(
                    "remos_service_sweeps_total",
                    help="Sweeper iterations completed by the query service",
                )
            except Exception as exc:
                self.sweep_errors += 1
                _log.error("sweep_failed", error=f"{type(exc).__name__}: {exc}")
            finally:
                elapsed = time.perf_counter() - started
                self.last_sweep_seconds = elapsed
                self.last_sweep_at = time.time()
                obs.observe(
                    "remos_sweep_seconds",
                    elapsed,
                    help="Wall-clock seconds per sweeper iteration",
                )
