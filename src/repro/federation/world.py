"""A simulated federation: regions, backbone, cells and aggregation tree.

:class:`FederationWorld` is the federation counterpart of
:class:`repro.testbed.world.World`: one simulation engine and one fluid
network carrying every shard, with *per-region scoped collectors* so each
cell discovers only its own nodes, plus a backbone collector scoped to
the gateways (it alone observes the WAN links).  The world also builds
the single-cell **oracle** — a :class:`CollectorMaster` over the *same*
collector instances — which the differential test suite compares
federated answers against: the oracle adopts each child's metric series
by reference, so intra-shard data is bit-identical on both query planes
by construction.
"""

from __future__ import annotations

from repro.collector import Cell, CollectorMaster, ShardRegistry, SNMPCollector
from repro.core import Remos
from repro.federation.aggregator import Aggregator
from repro.federation.api import FederatedRemos
from repro.federation.topology import FederationPlan, build_federation
from repro.netsim import FluidNetwork
from repro.sim import Engine
from repro.snmp import SNMPAgent
from repro.util.errors import ConfigurationError


class FederationWorld:
    """Everything needed to run a federation experiment, wired together.

    Build one from a :class:`FederationPlan` (or let :meth:`build` make
    the plan too), then::

        world = FederationWorld.build(shards=4, leaves=2, spines=2, hosts_per_leaf=4)
        remos = world.start_monitoring()      # FederatedRemos, all cells ready
        oracle = world.oracle_remos()         # single-cell view of the same wires
    """

    def __init__(
        self,
        plan: FederationPlan,
        poll_interval: float = 2.0,
        region_hop_latency: float = 0.1e-3,
        wan_hop_latency: float = 1e-3,
        enable_cache: bool = True,
    ):
        self.plan = plan
        self.env = Engine()
        self.net = FluidNetwork(self.env, plan.topology)
        # One agent per switch/gateway, shared by every collector that
        # polls it (region collectors poll their own routers; the backbone
        # polls the gateways).
        self.agents = {
            node.name: SNMPAgent(node.name, self.net)
            for node in plan.topology.network_nodes
        }
        self.cells: dict[str, Cell] = {}
        for shard in plan.shards:
            routers = plan.region_routers(shard)
            collector = SNMPCollector(
                self.net,
                {name: self.agents[name] for name in routers},
                poll_interval=poll_interval,
                per_hop_latency=region_hop_latency,
                scope=plan.regions[shard],
            )
            self.cells[shard] = Cell(
                shard,
                collector,
                gateways=(plan.gateways[shard],),
                enable_cache=enable_cache,
            )
        gateway_names = sorted(plan.gateways.values())
        self.backbone = Cell(
            "backbone",
            SNMPCollector(
                self.net,
                {name: self.agents[name] for name in gateway_names},
                poll_interval=poll_interval,
                # The WAN per-hop constant: long-haul links get long-haul
                # latency annotations without per-link configuration.
                per_hop_latency=wan_hop_latency,
                scope=frozenset(gateway_names),
            ),
            gateways=tuple(gateway_names),
            enable_cache=enable_cache,
        )
        self.registry = ShardRegistry(self.cells.values())
        self.aggregator = Aggregator(
            list(self.cells.values()), backbone=self.backbone, name="federation"
        )
        self._remos: FederatedRemos | None = None
        self._oracle: Remos | None = None

    @classmethod
    def build(cls, poll_interval: float = 2.0, **plan_kwargs) -> "FederationWorld":
        """Build the plan and the world in one call."""
        return cls(build_federation(**plan_kwargs), poll_interval=poll_interval)

    # -- lifecycle ---------------------------------------------------------------

    def all_cells(self) -> tuple[Cell, ...]:
        """Every cell including the backbone."""
        return (*self.cells.values(), self.backbone)

    def start_monitoring(self, warmup: float = 0.0) -> FederatedRemos:
        """Start every collector, run until all are ready, publish, merge."""
        pending = [cell.start() for cell in self.all_cells() if not cell.ready]
        if pending:
            self.env.run(until=self.env.all_of(pending))
        if warmup > 0:
            self.env.run(until=self.env.now + warmup)
        remos = self.make_remos()
        remos.refresh_all()
        return remos

    def make_remos(self) -> FederatedRemos:
        """The federated facade over this world's cells."""
        if self._remos is None:
            self._remos = FederatedRemos(self.registry, self.aggregator)
        return self._remos

    def oracle_remos(self) -> Remos:
        """A single-cell Remos over the *same* collectors (the oracle).

        The master merges the region collectors plus the backbone — every
        wire the federation knows, in one flat view, with each child's
        metric series adopted by reference.  The master is not started:
        the children already run; call ``refresh_oracle()`` after time
        advances to fold their latest sweeps.
        """
        if self._oracle is None:
            for cell in self.all_cells():
                if not cell.ready:
                    raise ConfigurationError(
                        "start_monitoring() must complete before building the oracle"
                    )
            master = CollectorMaster(
                self.env,
                [cell.collector for cell in self.all_cells()],
            )
            master.refresh()
            self._oracle = Remos(master, auto_publish=False)
            self._oracle.publish()
        return self._oracle

    def refresh_all(self) -> None:
        """Publish every plane: cells, backbone, aggregate, oracle."""
        remos = self.make_remos()
        remos.refresh_all()
        if self._oracle is not None:
            self._oracle._source.refresh()  # fold child sweeps into the master
            self._oracle.publish()

    def settle(self, seconds: float) -> None:
        """Advance simulated time (let traffic and polling run)."""
        self.env.run(until=self.env.now + seconds)

    def stop(self) -> None:
        """Stop every collector."""
        for cell in self.all_cells():
            cell.stop()
