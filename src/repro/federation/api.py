"""FederatedRemos: the existing query API over many cells.

The facade implements the same surface as :class:`~repro.core.api.Remos`
(``get_graph`` / ``flow_info`` / ``flow_info_batch`` / ``node_info`` /
``check_admission`` / ``telemetry``) against a
:class:`~repro.collector.cell.ShardRegistry` of cells and an
:class:`~repro.federation.aggregator.Aggregator` tree.

Answer ladder (the discipline the differential suite enforces):

* **Intra-shard** — every endpoint of the query lives in one cell: the
  query is *delegated* to that cell's own Remos facade, so the answer is
  bit-identical to a single-cell oracle reading the same measurements.
* **Cross-shard** — endpoints span cells: the answer is *composed* from
  exact intra-shard segments (each endpoint's cell resolves its own
  routes and capacities) joined by summary edges whose per-quantile
  availability is the element-wise minimum over the bundle's member WAN
  links.  A single flow cannot use more than one member at once and the
  summary does not know which member carries it, so the minimum is the
  sound bound: composed answers never overestimate what the single-cell
  oracle would grant the same flow queried alone.

Cross-shard queries touch only the cells hosting queried endpoints plus
the backbone — per-query cost is bounded by the summary size and the
query's own footprint, never by the total host count.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Hashable

from repro import obs
from repro.collector.cell import Cell, ShardRegistry
from repro.core.api import _LEVELS
from repro.core.flows import Flow, FlowAnswer, FlowInfoResult, FlowQuery, MulticastFlow
from repro.core.graph import RemosEdge, RemosGraph, RemosNode
from repro.core.modeler import AUTO_COLLAPSE_THRESHOLD, Modeler
from repro.core.timeframe import Timeframe
from repro.fairshare import FlowRequest, StagedProblem, admission_report
from repro.federation.aggregator import Aggregator
from repro.federation.summary import FederationSummary, SummaryEdge
from repro.stats import StatMeasure
from repro.util.errors import CollectorError, QueryError

_log = obs.get_logger("repro.federation.api")

#: Resource-key namespace for summary edges in composed allocations:
#: ``("fed", edge.a, edge.b, crossing_direction)``.
FED_RESOURCE = "fed"


class FederationCacheStats:
    """Read-only aggregate over every member cell's cache counters.

    Duck-compatible with the :class:`~repro.core.cachestats.CacheStats`
    readings the service front end and telemetry consume; query counts
    and wall time are recorded here (per facade), everything else sums
    over the cells and backbones live.
    """

    def __init__(self, members: "tuple[Cell, ...]"):
        self._members = members
        self._lock = threading.Lock()
        self.queries = 0
        self.query_time = 0.0

    def _sum(self, attribute: str) -> int:
        return sum(getattr(cell.remos.cache_stats, attribute) for cell in self._members)

    @property
    def hits(self) -> int:
        return self._sum("hits")

    @property
    def misses(self) -> int:
        return self._sum("misses")

    @property
    def invalidations(self) -> int:
        return self._sum("invalidations")

    @property
    def partial_invalidations(self) -> int:
        return self._sum("partial_invalidations")

    @property
    def entries_evicted(self) -> int:
        return self._sum("entries_evicted")

    @property
    def routing_rebuilds(self) -> int:
        return self._sum("routing_rebuilds")

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def mean_query_time(self) -> float:
        return self.query_time / self.queries if self.queries else 0.0

    def record_query(self, seconds: float) -> None:
        with self._lock:
            self.queries += 1
            self.query_time += seconds

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "partial_invalidations": self.partial_invalidations,
            "entries_evicted": self.entries_evicted,
            "routing_rebuilds": self.routing_rebuilds,
            "queries": self.queries,
            "query_time": self.query_time,
            "mean_query_time": self.mean_query_time,
            "per_cell": {
                cell.name: cell.remos.cache_stats.to_dict() for cell in self._members
            },
        }


class _QueryPin:
    """Everything one cross-shard query reads, pinned at query start.

    Cells publish concurrently with queries; pinning each involved cell's
    snapshot (and the federation summary) once keeps a single answer from
    straddling epochs.  Lazy: only the shards the query actually touches
    are pinned.
    """

    def __init__(self, remos: "FederatedRemos", timeframe: Timeframe):
        self._remos = remos
        self.timeframe = timeframe
        self.summary: FederationSummary = remos._summary()
        self._modelers: dict[str, Modeler] = {}
        self._backbone_modelers: dict[str, Modeler] = {}
        self._capacity_views: dict[tuple[str, str], object] = {}
        self._edge_measures: dict[tuple[str, str, str], StatMeasure] = {}
        self._gateway_shard: dict[str, str] | None = None

    def modeler(self, shard: str) -> Modeler:
        modeler = self._modelers.get(shard)
        if modeler is None:
            modeler = self._remos.registry.cell(shard).snapshot().modeler
            self._modelers[shard] = modeler
        return modeler

    def backbone_modeler(self, owner: str) -> Modeler:
        modeler = self._backbone_modelers.get(owner)
        if modeler is None:
            backbone = self._remos._backbones.get(owner)
            if backbone is None:
                raise QueryError(f"no backbone cell for aggregator {owner!r}")
            modeler = backbone.snapshot().modeler
            self._backbone_modelers[owner] = modeler
        return modeler

    def capacity_view(self, shard: str, level: str):
        key = (shard, level)
        view = self._capacity_views.get(key)
        if view is None:
            view = self.modeler(shard).capacity_view(self.timeframe, quantile=level)
            self._capacity_views[key] = view
        return view

    def edge_measure(self, edge: SummaryEdge, from_shard: str) -> StatMeasure:
        """Availability of a summary edge crossed *leaving* ``from_shard``.

        Element-wise :meth:`StatMeasure.min_of` over the bundle members'
        live availability in the crossing direction — the conservative
        choice, since a single flow uses exactly one (unknown) member.
        """
        cache_key = (edge.a, edge.b, from_shard)
        measure = self._edge_measures.get(cache_key)
        if measure is not None:
            return measure
        modeler = self.backbone_modeler(edge.owner)
        topology = modeler.view.topology
        if self._gateway_shard is None:
            self._gateway_shard = {
                gateway: summary.shard
                for summary in self.summary.cells.values()
                for gateway in summary.gateways
            }
        for member in edge.members:
            link = topology.link(member)
            if self._gateway_shard.get(link.a) == from_shard:
                direction = link.direction(link.a, link.b)
            else:
                direction = link.direction(link.b, link.a)
            sample = modeler.available_bandwidth(direction, self.timeframe)
            measure = (
                sample if measure is None else StatMeasure.min_of(measure, sample)
            )
        assert measure is not None  # bundles always have members
        self._edge_measures[cache_key] = measure
        return measure


def fed_key(edge: SummaryEdge, from_shard: str) -> tuple:
    """The directed allocation resource key of a summary edge."""
    return (FED_RESOURCE, edge.a, edge.b, "ab" if from_shard == edge.a else "ba")


class _FlowPlan:
    """One flow's composed resource footprint inside a cross-shard query."""

    __slots__ = ("flow", "resources", "latency", "hop_count", "intra", "edges")

    def __init__(self, flow, resources, latency, hop_count, intra, edges):
        self.flow = flow
        self.resources: tuple[Hashable, ...] = resources
        self.latency: float = latency
        self.hop_count: int = hop_count
        #: (shard, route) pairs for accuracy accounting.
        self.intra: tuple = intra
        #: (edge, from_shard) pairs crossed, in order.
        self.edges: tuple = edges


class FederatedRemos:
    """The query interface over a federation of cells.

    Implements the :class:`~repro.core.api.Remos` query surface; see the
    module docstring for the delegation/composition ladder.  Construction
    is cheap — cells and the aggregator are wired by
    :class:`~repro.federation.world.FederationWorld` or the service.
    """

    def __init__(
        self,
        registry: ShardRegistry,
        aggregator: Aggregator,
        name: str | None = None,
    ):
        self.registry = registry
        self.aggregator = aggregator
        self.name = name or aggregator.name
        self._backbones = aggregator.backbones()
        members = tuple(registry.cells) + tuple(self._backbones.values())
        self.cache_stats = FederationCacheStats(members)
        self.queries_answered = 0
        self._query_count_lock = threading.Lock()
        if obs.metrics_enabled():
            self._publish_gauges()

    # -- publisher plumbing ------------------------------------------------------

    @property
    def publisher(self) -> Aggregator:
        """The aggregator doubles as this facade's snapshot publisher."""
        return self.aggregator

    def publish(self) -> FederationSummary:
        """Re-merge the aggregation tree (writer-side; the sweeper's job)."""
        return self.aggregator.refresh()

    def refresh_all(self) -> FederationSummary:
        """Publish every cell and backbone, then re-merge (test/CLI helper).

        The service's sweeper does this per simulation step; outside the
        service this is the one call that brings the whole federation to
        the current measurement state.
        """
        for cell in self.registry.cells:
            if cell.ready:
                cell.refresh()
        for backbone in self._backbones.values():
            if backbone.ready:
                backbone.refresh()
        return self.aggregator.refresh()

    def snapshot(self) -> FederationSummary:
        """The current federation summary (raises before the first merge)."""
        return self._summary()

    def _summary(self) -> FederationSummary:
        summary = self.aggregator.current()
        if summary is None:
            raise CollectorError(
                "no federation summary published yet; start the service (or "
                "call refresh_all()) before querying"
            )
        return summary

    # -- shared query plumbing ---------------------------------------------------

    def _begin_query(self) -> float:
        with self._query_count_lock:
            self.queries_answered += 1
        return time.perf_counter()

    def _end_query(self, started: float, kind: str) -> None:
        elapsed = time.perf_counter() - started
        self.cache_stats.record_query(elapsed)
        obs.observe(
            "remos_query_seconds",
            elapsed,
            help="Wall-clock seconds per answered Remos query",
            query=kind,
        )

    def home_shard(self, names) -> str | None:
        """The single shard owning every name, or None when they span shards.

        Unknown names also return None — the query path raises the precise
        error when it partitions.
        """
        home: str | None = None
        for name in names:
            shard = self.registry.shard_of(name)
            if shard is None:
                return None
            if home is None:
                home = shard
            elif shard != home:
                return None
        return home

    def _cell(self, shard: str) -> Cell:
        return self.registry.cell(shard)

    @staticmethod
    def _endpoints_of(flow) -> tuple[str, ...]:
        if isinstance(flow, MulticastFlow):
            return (flow.src, *flow.dsts)
        return (flow.src, flow.dst)

    def _validate_endpoint(self, pin: _QueryPin, shard: str, endpoint: str) -> None:
        topology = pin.modeler(shard).view.topology
        if not topology.has_node(endpoint):
            raise QueryError(f"unknown flow endpoint {endpoint!r}")
        if not topology.node(endpoint).is_compute:
            raise QueryError(
                f"flow endpoints must be compute nodes; {endpoint!r} is not"
            )

    # -- graph queries -----------------------------------------------------------

    def get_graph(
        self,
        nodes: list[str],
        timeframe: Timeframe | None = None,
        collapse: str = "auto",
    ) -> RemosGraph:
        """``remos_get_graph`` over the federation.

        Intra-shard queries are delegated (bit-identical, any collapse
        mode); cross-shard queries compose per-shard flat detail over the
        queried endpoints plus border gateways with one summary edge per
        crossed shard pair (``collapse`` is ignored there; the returned
        graph's ``collapse`` attribute reads ``"federated"``).
        """
        nodes = list(nodes)
        if not nodes:
            raise QueryError("get_graph requires at least one node")
        timeframe = timeframe or Timeframe.current()
        groups = self.registry.partition(nodes)
        if len(groups) == 1:
            (shard,) = groups
            with obs.span("federation.get_graph") as sp:
                if sp:
                    sp.set(shard=shard, path="delegated")
                return self._cell(shard).remos.get_graph(nodes, timeframe, collapse)
        started = self._begin_query()
        with obs.span("query.get_graph") as sp:
            try:
                if sp:
                    sp.set(shard="cross", shards=len(groups))
                graph = self._federated_graph(groups, nodes, timeframe)
                if sp:
                    sp.set(node_count=len(nodes), collapse=graph.collapse)
                return graph
            finally:
                self._end_query(started, "get_graph")

    def _federated_graph(
        self,
        groups: dict[str, list[str]],
        nodes: list[str],
        timeframe: Timeframe,
    ) -> RemosGraph:
        pin = _QueryPin(self, timeframe)
        graph = RemosGraph(nodes)
        graph.collapse = "federated"
        # Summary edges along every involved pair's summary path; the
        # gateways those edges attach at anchor the per-shard detail below
        # (gateways[0] could be a different border router entirely).
        involved = list(groups)
        added: set[frozenset[str]] = set()
        path_edges: list[SummaryEdge] = []
        anchors: dict[str, set[str]] = {shard: set() for shard in groups}
        for i, shard_a in enumerate(involved):
            for shard_b in involved[i + 1:]:
                for edge in pin.summary.summary_path(shard_a, shard_b):
                    for shard in edge.shards():
                        if shard in anchors:
                            anchors[shard].add(edge.gateway_of(shard))
                    if edge.shards() in added:
                        continue
                    added.add(edge.shards())
                    path_edges.append(edge)
        # Per-involved-shard detail: the cell's own flat logical graph over
        # its queried nodes, anchored at its summary-edge gateways; transit
        # shards contribute just their gateway nodes.
        for shard, shard_nodes in groups.items():
            sub = pin.modeler(shard).logical_graph(
                shard_nodes, timeframe, "flat", include=tuple(sorted(anchors[shard]))
            )
            for node in sub.nodes:
                graph.add_node(node)
            for edge in sub.edges:
                graph.add_edge(edge)
        for edge in path_edges:
            self._add_summary_edge(pin, graph, edge)
        return graph

    def _add_summary_edge(
        self, pin: _QueryPin, graph: RemosGraph, edge: SummaryEdge
    ) -> None:
        backbone_topology = pin.backbone_modeler(edge.owner).view.topology
        for gateway in (edge.gateway_a, edge.gateway_b):
            if not graph.has_node(gateway):
                node = backbone_topology.node(gateway)
                graph.add_node(
                    RemosNode(
                        name=gateway,
                        kind=node.kind,
                        internal_bandwidth=node.internal_bandwidth,
                        compute_speed=node.compute_speed,
                        memory_bytes=node.memory_bytes,
                    )
                )
        graph.add_edge(
            RemosEdge(
                name=f"fed:{edge.a}|{edge.b}",
                a=edge.gateway_a,
                b=edge.gateway_b,
                capacity=edge.capacity,
                latency=edge.latency,
                available={
                    edge.gateway_a: pin.edge_measure(edge, edge.a),
                    edge.gateway_b: pin.edge_measure(edge, edge.b),
                },
                physical_links=edge.members,
            )
        )

    # -- flow queries ------------------------------------------------------------

    def flow_info(
        self,
        fixed_flows: list[Flow] | None = None,
        variable_flows: list[Flow] | None = None,
        independent_flows: list[Flow] | None = None,
        timeframe: Timeframe | None = None,
    ) -> FlowInfoResult:
        """``remos_flow_info`` over the federation (see the answer ladder)."""
        fixed = list(fixed_flows or [])
        variable = list(variable_flows or [])
        independent = list(independent_flows or [])
        if not fixed and not variable and not independent:
            raise QueryError("flow_info requires at least one flow")
        query = FlowQuery(fixed=fixed, variable=variable, independent=independent)
        return self.flow_info_batch([query], timeframe)[0]

    def flow_info_batch(
        self,
        queries: list[FlowQuery],
        timeframe: Timeframe | None = None,
    ) -> list[FlowInfoResult]:
        """Batch scenarios, routed per scenario to the cheapest sound path.

        Scenarios entirely within one shard are delegated to that cell in
        sub-batches (bit-identical to the oracle); scenarios spanning
        shards are composed here.  Results come back in scenario order.
        """
        timeframe = timeframe or Timeframe.current()
        scenarios = list(queries)
        if not scenarios:
            return []
        started = self._begin_query()
        with obs.span("query.flow_info_batch") as sp:
            try:
                results: list[FlowInfoResult | None] = [None] * len(scenarios)
                delegated: dict[str, list[int]] = {}
                cross: list[int] = []
                for index, scenario in enumerate(scenarios):
                    endpoints = [
                        endpoint
                        for flow in scenario.flows
                        for endpoint in self._endpoints_of(flow)
                    ]
                    home = self.home_shard(endpoints)
                    if home is None:
                        cross.append(index)
                    else:
                        delegated.setdefault(home, []).append(index)
                for shard, indices in delegated.items():
                    answers = self._cell(shard).remos.flow_info_batch(
                        [scenarios[i] for i in indices], timeframe
                    )
                    for i, answer in zip(indices, answers):
                        results[i] = answer
                if cross:
                    pin = _QueryPin(self, timeframe)
                    for i in cross:
                        results[i] = self._evaluate_cross(pin, scenarios[i], timeframe)
                if sp:
                    sp.set(
                        shard="cross" if cross else next(iter(delegated), "none"),
                        scenario_count=len(scenarios),
                        delegated=len(scenarios) - len(cross),
                        cross=len(cross),
                        flow_count=sum(len(s.flows) for s in scenarios),
                    )
                assert all(result is not None for result in results)
                return results  # type: ignore[return-value]
            finally:
                self._end_query(started, "flow_info_batch")

    def _plan_flow(self, pin: _QueryPin, flow) -> _FlowPlan:
        """Compose one flow's resource footprint across shards."""
        endpoints = self._endpoints_of(flow)
        shards = {endpoint: self.registry.shard_of(endpoint) for endpoint in endpoints}
        for endpoint, shard in shards.items():
            if shard is None:
                raise QueryError(f"unknown flow endpoint {endpoint!r}")
            self._validate_endpoint(pin, shard, endpoint)
        distinct = set(shards.values())
        if isinstance(flow, MulticastFlow):
            if len(distinct) > 1:
                raise QueryError(
                    "cross-shard multicast flows are not supported; "
                    f"{flow.src!r} -> {flow.dst} spans shards {sorted(distinct)}"
                )
            (shard,) = distinct
            modeler = pin.modeler(shard)
            resources = modeler.resources_for_tree(flow.src, list(flow.dsts))
            tree = modeler.routing.multicast_tree(flow.src, list(flow.dsts))
            return _FlowPlan(
                flow, resources, tree.max_latency, len(tree.hops),
                ((shard, tree.hops),), (),
            )
        src_shard, dst_shard = shards[flow.src], shards[flow.dst]
        if src_shard == dst_shard:
            modeler = pin.modeler(src_shard)
            resources = modeler.resources_for_route(flow.src, flow.dst)
            route = modeler.routing.route(flow.src, flow.dst)
            return _FlowPlan(
                flow, resources, route.latency, route.hop_count,
                ((src_shard, route.hops),), (),
            )
        # Cross-shard: exact segments to/from the border gateways, summary
        # edges in between.  Transit shards are crossed gateway-to-gateway
        # over the backbone — no intra-transit detail is touched.
        path = pin.summary.summary_path(src_shard, dst_shard)
        src_modeler = pin.modeler(src_shard)
        dst_modeler = pin.modeler(dst_shard)
        # Anchor the intra-shard segments at the border routers the summary
        # path actually attaches to — with several gateways per cell,
        # gateways[0] could disagree with the WAN edge's endpoint and leave
        # the composed footprint missing the inter-gateway hop.
        src_gateway = path[0].gateway_of(src_shard)
        dst_gateway = path[-1].gateway_of(dst_shard)
        src_route = src_modeler.routing.route(flow.src, src_gateway)
        dst_route = dst_modeler.routing.route(dst_gateway, flow.dst)
        resources: list[Hashable] = list(
            src_modeler.resources_for_route(flow.src, src_gateway)
        )
        edges: list[tuple[SummaryEdge, str]] = []
        from_shard = src_shard
        latency = src_route.latency + dst_route.latency
        for edge in path:
            edges.append((edge, from_shard))
            resources.append(fed_key(edge, from_shard))
            latency += edge.latency
            from_shard = edge.other(from_shard)
        resources.extend(dst_modeler.resources_for_route(dst_gateway, flow.dst))
        # Deduplicate while preserving first-reference order (a gateway
        # crossbar could appear in both segments' expansions on loops).
        seen: set[Hashable] = set()
        unique = tuple(r for r in resources if not (r in seen or seen.add(r)))
        return _FlowPlan(
            flow,
            unique,
            latency,
            src_route.hop_count + len(path) + dst_route.hop_count,
            ((src_shard, src_route.hops), (dst_shard, dst_route.hops)),
            tuple(edges),
        )

    def _evaluate_cross(
        self, pin: _QueryPin, scenario: FlowQuery, timeframe: Timeframe
    ) -> FlowInfoResult:
        """Solve one cross-shard scenario against composed capacities.

        Mirrors :meth:`Remos._evaluate_flow_query` stage for stage; the
        only difference is where capacities come from — each shard's own
        capacity view for intra-shard resources (exact) and the summary
        edges' member-minimum measures for WAN crossings (conservative).
        """
        fixed = list(scenario.fixed)
        variable = list(scenario.variable)
        independent = list(scenario.independent)
        plans: dict[str, _FlowPlan] = {}

        def requests(flows, klass: str) -> list[FlowRequest]:
            built = []
            for index, flow in enumerate(flows):
                plan = self._plan_flow(pin, flow)
                label = flow.label(index, klass)
                plans[label] = plan
                built.append(
                    FlowRequest(
                        flow_id=label,
                        resources=plan.resources,
                        requested=flow.requested,
                        cap=flow.cap,
                    )
                )
            return built

        fixed_requests = requests(fixed, "fixed")
        variable_requests = requests(variable, "variable")
        independent_requests = requests(independent, "independent")
        all_ids = [
            r.flow_id
            for r in (*fixed_requests, *variable_requests, *independent_requests)
        ]
        if len(set(all_ids)) != len(all_ids):
            raise QueryError("flow labels must be unique within a query")

        problem = StagedProblem(
            fixed=fixed_requests,
            variable=variable_requests,
            independent=independent_requests,
        )
        keys = problem.resource_keys()
        shard_keys: dict[str, list[Hashable]] = {}
        edge_keys: dict[Hashable, tuple[SummaryEdge, str]] = {}
        for plan in plans.values():
            for edge, from_shard in plan.edges:
                edge_keys[fed_key(edge, from_shard)] = (edge, from_shard)
        for plan in plans.values():
            for shard, _hops in plan.intra:
                shard_keys.setdefault(shard, [])
        for key in keys:
            if key in edge_keys:
                continue
            # Intra-shard keys are resolved by whichever involved shard
            # knows them; shard views are disjoint so at most one answers.
            for shard in shard_keys:
                view = pin.capacity_view(shard, "median")
                if key in view:
                    shard_keys[shard].append(key)
                    break
            else:
                raise QueryError(f"no shard can price resource {key!r}")

        rates_by_level: dict[str, dict[Hashable, float]] = {}
        median_allocation = None
        for level in (*_LEVELS, "mean"):
            capacities: dict[Hashable, float] = {}
            for shard, shard_specific in shard_keys.items():
                view = pin.capacity_view(shard, level)
                for key in shard_specific:
                    capacities[key] = view[key]
            for key, (edge, from_shard) in edge_keys.items():
                measure = pin.edge_measure(edge, from_shard)
                capacities[key] = getattr(measure, level)
            allocation = problem.solve(capacities)
            rates_by_level[level] = allocation.rates
            if level == "median":
                median_allocation = allocation
        assert median_allocation is not None

        accuracy = 1.0
        for plan in plans.values():
            for shard, hops in plan.intra:
                modeler = pin.modeler(shard)
                for hop in hops:
                    measure = modeler.available_bandwidth(hop, timeframe)
                    accuracy = min(accuracy, measure.accuracy)
            for edge, from_shard in plan.edges:
                accuracy = min(accuracy, pin.edge_measure(edge, from_shard).accuracy)

        def answers(flows, reqs, klass: str) -> list[FlowAnswer]:
            result = []
            for flow, request in zip(flows, reqs):
                label = request.flow_id
                plan = plans[label]
                quartiles = sorted(rates_by_level[level][label] for level in _LEVELS)
                bandwidth = StatMeasure(
                    minimum=quartiles[0],
                    q1=quartiles[1],
                    median=quartiles[2],
                    q3=quartiles[3],
                    maximum=quartiles[4],
                    mean=rates_by_level["mean"][label],
                    n_samples=len(_LEVELS),
                    accuracy=accuracy,
                )
                result.append(
                    FlowAnswer(
                        flow=flow,
                        label=label,
                        bandwidth=bandwidth,
                        latency=StatMeasure.constant(plan.latency),
                        hop_count=plan.hop_count,
                        satisfied=(
                            median_allocation.satisfied.get(label)
                            if klass == "fixed"
                            else None
                        ),
                        bottleneck=median_allocation.bottlenecks.get(label),
                    )
                )
            return result

        return FlowInfoResult(
            timeframe=timeframe,
            fixed=answers(fixed, fixed_requests, "fixed"),
            variable=answers(variable, variable_requests, "variable"),
            independent=answers(independent, independent_requests, "independent"),
        )

    # -- node / admission queries ------------------------------------------------

    def node_info(self, host: str, timeframe: Timeframe | None = None):
        """Delegated straight to the owning cell (always intra-shard)."""
        return self.registry.cell_of(host).remos.node_info(host, timeframe)

    def check_admission(
        self,
        fixed_flows: list[Flow],
        timeframe: Timeframe | None = None,
    ):
        """Admission over the federation.

        Intra-shard requests are delegated; requests spanning shards are
        priced against composed median capacities (the conservative WAN
        bound makes a federated "fits" at least as strict as the oracle's).
        """
        timeframe = timeframe or Timeframe.current()
        if not fixed_flows:
            raise QueryError("check_admission requires at least one flow")
        endpoints = [
            endpoint
            for flow in fixed_flows
            for endpoint in self._endpoints_of(flow)
        ]
        home = self.home_shard(endpoints)
        if home is not None:
            return self._cell(home).remos.check_admission(fixed_flows, timeframe)
        started = self._begin_query()
        with obs.span("query.check_admission") as sp:
            try:
                pin = _QueryPin(self, timeframe)
                requests = []
                capacities: dict[Hashable, float] = {}
                for index, flow in enumerate(fixed_flows):
                    plan = self._plan_flow(pin, flow)
                    requests.append(
                        FlowRequest(
                            flow_id=flow.label(index, "fixed"),
                            resources=plan.resources,
                            requested=flow.requested,
                            cap=flow.requested,
                        )
                    )
                    for edge, from_shard in plan.edges:
                        capacities[fed_key(edge, from_shard)] = pin.edge_measure(
                            edge, from_shard
                        ).median
                    for shard, _hops in plan.intra:
                        view = pin.capacity_view(shard, "median")
                        for key in plan.resources:
                            if key not in capacities and key in view:
                                capacities[key] = view[key]
                # admission_report treats unpriced keys as unconstrained,
                # which would make the federated answer *less* strict than
                # the oracle — refuse instead, like _evaluate_cross.
                for request in requests:
                    for key in request.resources:
                        if key not in capacities:
                            raise QueryError(f"no shard can price resource {key!r}")
                report = admission_report(capacities, requests)
                if sp:
                    sp.set(shard="cross", flow_count=len(fixed_flows))
                return report
            finally:
                self._end_query(started, "check_admission")

    # -- freshness / telemetry ---------------------------------------------------

    def staleness_seconds(self) -> float | None:
        """The *worst* (largest) staleness across cells, or None."""
        values = [
            staleness
            for cell in self.registry.cells
            if (staleness := cell.staleness_seconds()) is not None
        ]
        return max(values) if values else None

    def _publish_gauges(self) -> None:
        """Register federation gauges (weakly, like the Remos facade)."""
        registry = obs.get_registry()
        ref = weakref.ref(self)

        def reader(fn):
            def read() -> float:
                remos = ref()
                return 0.0 if remos is None else fn(remos)

            return read

        registry.gauge(
            "remos_federation_epoch",
            help="Epoch counter of the current federation summary",
        ).set_function(reader(lambda r: float(r.aggregator.epoch)))
        registry.gauge(
            "remos_federation_shards",
            help="Cells registered in the federation",
        ).set_function(reader(lambda r: float(len(r.registry))))
        for cell in self.registry.cells:
            cell_ref = weakref.ref(cell)
            registry.gauge(
                "remos_shard_epoch",
                labels={"shard": cell.name},
                help="Per-shard snapshot epoch counter",
            ).set_function(
                lambda c=cell_ref: float(c().epoch) if c() is not None else 0.0
            )
            registry.gauge(
                "remos_shard_staleness_seconds",
                labels={"shard": cell.name},
                help="Per-shard simulated seconds since the newest measurement",
            ).set_function(
                lambda c=cell_ref: (
                    (c().staleness_seconds() or 0.0) if c() is not None else 0.0
                )
            )

    def telemetry(self) -> dict:
        """Combined observability snapshot, shaped like Remos.telemetry."""
        if obs.metrics_enabled():
            self._publish_gauges()
        summary = self.aggregator.current()
        return {
            "status": "ok" if summary is not None else "no summary yet",
            "queries_answered": self.queries_answered,
            "cache": self.cache_stats.to_dict(),
            "view": None,
            "snapshot": None if summary is None else summary.to_dict(),
            "collector": {
                "type": "federation",
                "cells": {
                    cell.name: {
                        "epoch": cell.epoch,
                        "staleness_seconds": cell.staleness_seconds(),
                    }
                    for cell in self.registry.cells
                },
                "backbones": {
                    owner: cell.epoch for owner, cell in self._backbones.items()
                },
            },
            "observability_enabled": obs.observability_enabled(),
            "federation": {
                "name": self.name,
                "shards": len(self.registry),
                "epoch": self.aggregator.epoch,
                "merges": self.aggregator.publishes,
            },
            "metrics": obs.get_registry().to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FederatedRemos {self.name!r} shards={len(self.registry)} "
            f"epoch={self.aggregator.epoch}>"
        )
