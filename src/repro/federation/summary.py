"""Summary snapshots: what a cell tells its parent aggregator.

Federation keeps intra-shard detail in the leaves; what travels up the
aggregation tree is a :class:`CellSummary` — epoch stamps, host membership
and aggregate capacities — plus :class:`SummaryEdge` bundles describing
the inter-shard (WAN) links the backbone cell observes.  Bundle semantics
reuse the :class:`~repro.core.collapse.CollapseTree` conventions:
capacity = sum over members, latency = min over members.

Everything here is immutable plain data: a :class:`FederationSummary` is
published by the aggregator with one atomic reference store, exactly like
a :class:`~repro.core.snapshot.Snapshot`, and readers never see a partial
merge.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.collector.cell import Cell


@dataclass(frozen=True)
class CellSummary:
    """One shard's aggregate state, as seen from above.

    ``access_capacity``/``access_latency`` summarise the hosts' access
    links with bundle semantics (sum / min); ``host_count`` and
    ``total_compute_speed`` size the shard.  The epoch stamps let the
    aggregator detect movement without touching shard detail.
    """

    shard: str
    epoch: int
    generation: int
    structure_generation: int
    published_at: float
    hosts: frozenset[str]
    gateways: tuple[str, ...]
    host_count: int
    total_compute_speed: float
    access_capacity: float
    access_latency: float
    staleness_seconds: float | None

    def to_dict(self) -> dict:
        """Plain-data form for telemetry export."""
        return {
            "shard": self.shard,
            "epoch": self.epoch,
            "generation": self.generation,
            "structure_generation": self.structure_generation,
            "published_at": self.published_at,
            "host_count": self.host_count,
            "gateways": list(self.gateways),
            "total_compute_speed": self.total_compute_speed,
            "access_capacity": self.access_capacity,
            "access_latency": self.access_latency,
            "staleness_seconds": self.staleness_seconds,
        }


def summarize_cell(cell: "Cell") -> CellSummary:
    """Build a :class:`CellSummary` from a cell's current snapshot."""
    snapshot = cell.snapshot()
    topology = snapshot.view.topology
    hosts: list[str] = []
    total_speed = 0.0
    access_capacity = 0.0
    access_latency = float("inf")
    access_links = 0
    for node in topology.nodes:
        if not node.is_compute:
            continue
        hosts.append(node.name)
        total_speed += node.compute_speed
        for link in topology.links_at(node.name):
            access_links += 1
            access_capacity += link.capacity
            access_latency = min(access_latency, link.latency)
    return CellSummary(
        shard=cell.name,
        epoch=snapshot.epoch,
        generation=snapshot.generation,
        structure_generation=snapshot.structure_generation,
        published_at=snapshot.published_at,
        hosts=frozenset(hosts),
        gateways=cell.gateways,
        host_count=len(hosts),
        total_compute_speed=total_speed,
        access_capacity=access_capacity,
        # Guard on links seen, not host existence: linkless hosts would
        # otherwise leak inf into JSON telemetry.
        access_latency=access_latency if access_links else 0.0,
        staleness_seconds=cell.staleness_seconds(),
    )


@dataclass(frozen=True)
class SummaryEdge:
    """A bundle of physical WAN links between two shards.

    ``members`` are the physical link names in the owning backbone cell's
    view; ``capacity`` is their sum and ``latency`` their minimum (the
    CollapseTree bundle convention).  ``gateway_a``/``gateway_b`` name the
    border routers the bundle attaches to; ``owner`` names the aggregator
    whose backbone cell measures the members (cross-shard queries fetch
    live member availability from there).
    """

    a: str
    b: str
    gateway_a: str
    gateway_b: str
    members: tuple[str, ...]
    capacity: float
    latency: float
    owner: str

    def shards(self) -> frozenset[str]:
        """The unordered shard pair."""
        return frozenset((self.a, self.b))

    def gateway_of(self, shard: str) -> str:
        """The border router on *shard*'s side of the bundle."""
        if shard == self.a:
            return self.gateway_a
        if shard == self.b:
            return self.gateway_b
        raise QueryError(f"shard {shard!r} is not an endpoint of edge {self.a}|{self.b}")

    def other(self, shard: str) -> str:
        """The shard opposite *shard*."""
        if shard == self.a:
            return self.b
        if shard == self.b:
            return self.a
        raise QueryError(f"shard {shard!r} is not an endpoint of edge {self.a}|{self.b}")

    def to_dict(self) -> dict:
        """Plain-data form for telemetry export."""
        return {
            "a": self.a,
            "b": self.b,
            "gateway_a": self.gateway_a,
            "gateway_b": self.gateway_b,
            "members": list(self.members),
            "capacity": self.capacity,
            "latency_s": self.latency,
            "owner": self.owner,
        }


class FederationSummary:
    """One published epoch of the aggregation tree.

    Duck-compatible with :class:`~repro.core.snapshot.Snapshot` where the
    service plumbing needs it (``epoch``, ``generation``,
    ``structure_generation``, ``age_seconds``, ``to_dict``), so health
    endpoints and SLO monitors work unchanged against a federation.
    """

    __slots__ = (
        "name",
        "epoch",
        "published_at",
        "cells",
        "edges",
        "generation",
        "structure_generation",
        "_adjacency",
        "_init_done",
    )

    def __init__(
        self,
        name: str,
        epoch: int,
        cells: dict[str, CellSummary],
        edges: tuple[SummaryEdge, ...],
        published_at: float | None = None,
    ):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "epoch", epoch)
        object.__setattr__(self, "cells", dict(cells))
        object.__setattr__(self, "edges", tuple(edges))
        object.__setattr__(
            self,
            "published_at",
            time.time() if published_at is None else published_at,
        )
        object.__setattr__(
            self, "generation", sum(c.generation for c in cells.values())
        )
        object.__setattr__(
            self,
            "structure_generation",
            sum(c.structure_generation for c in cells.values()),
        )
        adjacency: dict[str, list[SummaryEdge]] = {shard: [] for shard in cells}
        for edge in self.edges:
            adjacency.setdefault(edge.a, []).append(edge)
            adjacency.setdefault(edge.b, []).append(edge)
        object.__setattr__(self, "_adjacency", adjacency)
        object.__setattr__(self, "_init_done", True)

    def __setattr__(self, name, value):
        if getattr(self, "_init_done", False):
            raise AttributeError(
                f"FederationSummary is immutable; cannot set {name!r}"
            )
        object.__setattr__(self, name, value)

    # -- inspection --------------------------------------------------------------

    def cell(self, shard: str) -> CellSummary:
        """Summary of one shard (raises QueryError for unknown shards)."""
        try:
            return self.cells[shard]
        except KeyError:
            raise QueryError(f"no shard {shard!r} in federation {self.name!r}") from None

    def edge_between(self, a: str, b: str) -> SummaryEdge | None:
        """The direct bundle between two shards, if any."""
        for edge in self._adjacency.get(a, ()):
            if edge.other(a) == b:
                return edge
        return None

    def summary_path(self, src_shard: str, dst_shard: str) -> tuple[SummaryEdge, ...]:
        """Shortest inter-shard route as a chain of summary edges.

        Dijkstra over the summary graph weighted by bundle latency, ties
        broken by hop count then shard name — deterministic, like the
        physical routing table.  Raises :class:`QueryError` when the
        shards are disconnected at summary level.
        """
        self.cell(src_shard)
        self.cell(dst_shard)
        if src_shard == dst_shard:
            return ()
        best: dict[str, tuple[float, int, tuple[str, ...]]] = {
            src_shard: (0.0, 0, (src_shard,))
        }
        frontier: list[tuple[float, int, tuple[str, ...], str]] = [
            (0.0, 0, (src_shard,), src_shard)
        ]
        while frontier:
            cost, hops, path, shard = heapq.heappop(frontier)
            if best.get(shard) != (cost, hops, path):
                continue
            if shard == dst_shard:
                edges: list[SummaryEdge] = []
                for a, b in zip(path, path[1:]):
                    edge = self.edge_between(a, b)
                    assert edge is not None
                    edges.append(edge)
                return tuple(edges)
            for edge in self._adjacency.get(shard, ()):
                neighbor = edge.other(shard)
                candidate = (cost + edge.latency, hops + 1, path + (neighbor,))
                current = best.get(neighbor)
                if current is None or candidate < current:
                    best[neighbor] = candidate
                    heapq.heappush(frontier, (*candidate, neighbor))
        raise QueryError(
            f"no summary path between shards {src_shard!r} and {dst_shard!r}"
        )

    def age_seconds(self, now: float | None = None) -> float:
        """Wall-clock seconds since this summary was published."""
        reference = time.time() if now is None else now
        return max(0.0, reference - self.published_at)

    def to_dict(self) -> dict:
        """Plain-data form for telemetry export."""
        return {
            "name": self.name,
            "epoch": self.epoch,
            "generation": self.generation,
            "structure_generation": self.structure_generation,
            "published_at": self.published_at,
            "age_seconds": self.age_seconds(),
            "shards": {shard: c.to_dict() for shard, c in self.cells.items()},
            "edges": [edge.to_dict() for edge in self.edges],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FederationSummary {self.name!r} epoch={self.epoch} "
            f"shards={sorted(self.cells)} edges={len(self.edges)}>"
        )
