"""Structured logging: key=value or JSON lines, disabled by default.

``get_logger(name)`` returns a :class:`StructLogger` whose methods take an
*event* name plus arbitrary keyword fields::

    log = get_logger("repro.collector.snmp")
    log.info("sweep", polls=3, generation=3, samples=42)

    # kv format  -> level=info logger=repro.collector.snmp event=sweep \
    #               polls=3 generation=3 samples=42
    # json format-> {"level": "info", "logger": ..., "event": "sweep", ...}

Logging is **off** until :func:`repro.obs.configure_observability` turns it
on; the disabled path is a single attribute check per call.  Loggers are
plain views over the module-global :class:`LogConfig`, so a logger created
at import time picks up any later reconfiguration.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO

from repro.obs.context import current_context
from repro.util.errors import ConfigurationError

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class LogConfig:
    """Mutable global logging configuration (one instance per process)."""

    __slots__ = ("enabled", "threshold", "format", "stream", "timestamps")

    def __init__(self):
        self.set_defaults()

    def set_defaults(self) -> None:
        self.enabled = False
        self.threshold = LEVELS["info"]
        self.format = "kv"
        self.stream: IO[str] | None = None  # None -> sys.stderr at emit time
        self.timestamps = True


_CONFIG = LogConfig()


def configure_logging(
    enabled: bool = True,
    level: str = "info",
    format: str = "kv",
    stream: IO[str] | None = None,
    timestamps: bool = True,
) -> None:
    """(Re)configure the global logger; called by ``configure_observability``."""
    if level not in LEVELS:
        raise ConfigurationError(f"unknown log level {level!r}; choose from {list(LEVELS)}")
    if format not in ("kv", "json"):
        raise ConfigurationError(f"unknown log format {format!r}; choose 'kv' or 'json'")
    _CONFIG.enabled = enabled
    _CONFIG.threshold = LEVELS[level]
    _CONFIG.format = format
    _CONFIG.stream = stream
    _CONFIG.timestamps = timestamps


def _format_value(value) -> str:
    """One kv-format value: floats compactly, awkward strings quoted."""
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if text == "" or any(c in text for c in (" ", "=", '"', "\n")):
        return json.dumps(text)
    return text


class StructLogger:
    """A named emitter of structured log lines (cheap when disabled)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _emit(self, level: str, event: str, fields: dict) -> None:
        config = _CONFIG
        stream = config.stream if config.stream is not None else sys.stderr
        # Lines emitted while a request TraceContext is bound to this
        # thread carry its trace id, so logs join spans and the HTTP
        # traceparent header on one id.  Only emitted lines pay the lookup.
        context = current_context()
        if context is not None and "trace_id" not in fields:
            fields = {"trace_id": context.trace_id, **fields}
        if config.format == "json":
            record: dict = {"level": level, "logger": self.name, "event": event}
            if config.timestamps:
                record["ts"] = round(time.time(), 6)
            record.update(fields)
            stream.write(json.dumps(record, default=str) + "\n")
            return
        parts = [f"level={level}", f"logger={self.name}", f"event={_format_value(event)}"]
        if config.timestamps:
            parts.insert(0, f"ts={time.time():.6f}")
        parts.extend(f"{key}={_format_value(value)}" for key, value in fields.items())
        stream.write(" ".join(parts) + "\n")

    def debug(self, event: str, **fields) -> None:
        if _CONFIG.enabled and _CONFIG.threshold <= 10:
            self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        if _CONFIG.enabled and _CONFIG.threshold <= 20:
            self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        if _CONFIG.enabled and _CONFIG.threshold <= 30:
            self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        if _CONFIG.enabled and _CONFIG.threshold <= 40:
            self._emit("error", event, fields)

    def enabled_for(self, level: str) -> bool:
        """True when a call at *level* would emit (guard expensive fields)."""
        return _CONFIG.enabled and _CONFIG.threshold <= LEVELS[level]


def get_logger(name: str) -> StructLogger:
    """A structured logger for *name* (conventionally the module path)."""
    return StructLogger(name)
