"""Per-query tracing: nested spans over the collector→modeler→query pipeline.

A :class:`Span` is one timed stage (``query.flow_info``,
``fairshare.allocate``, ``collector.sweep``, …) carrying attributes such as
the view generation or flow count.  Spans nest: whichever span is entered
while another is open becomes its child, so one query produces a tree
rooted at the public API call — the *query id* is the root's ``trace_id``.

The :class:`Tracer` keeps the most recent completed traces in a bounded
deque and, when bound to a :class:`~repro.obs.metrics.MetricsRegistry`,
feeds every span's duration into a per-stage latency histogram
(``remos_stage_seconds{stage=...}``) — that is where the per-stage quartile
summaries in ``repro stats`` come from.

Every instrumented query runs synchronously on the thread that issued it,
so the "current span" is **thread-local**: each reader thread of the
concurrent query service nests its own spans without observing anyone
else's (see ``docs/CONCURRENCY.md``).  The one instrumented stage that
yields to the simulation engine mid-span (``collector.sweep``) is opened
``detached`` so it never corrupts the nesting of spans opened by
interleaved processes.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.obs.context import current_context
from repro.obs.metrics import Histogram, MetricsRegistry

#: Name of the per-stage latency histogram fed by finished spans.
STAGE_HISTOGRAM = "remos_stage_seconds"


class _NoopSpan:
    """Shared do-nothing span returned whenever tracing is disabled.

    ``__enter__`` returns ``None`` so call sites can guard attribute
    recording with ``if sp:`` and pay nothing on the disabled path.
    """

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attributes) -> None:
        pass

    def add_link(self, trace_id: str, span_id: str, **attributes) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed stage of a trace (a context manager)."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "links",
        "error",
        "_tracer",
        "_prev",
        "_root",
        "_detached",
        "spans",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        root: "Span | None",
        detached: bool,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = 0.0
        self.end: float | None = None
        self.attributes: dict = {}
        #: Cross-trace references: spans of *other* traces causally tied to
        #: this one (a coalesced follower linking the leader's batch span).
        self.links: list[dict] = []
        self.error: str | None = None
        self._tracer = tracer
        self._prev: Span | None = None
        self._root = root if root is not None else self
        self._detached = detached
        #: On root spans only: every finished span of the trace, in finish
        #: order (children before parents, root last).
        self.spans: list[Span] = [] if root is None else root.spans

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "Span":
        if not self._detached:
            self._prev = self._tracer._current
            self._tracer._current = self
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.error = f"{exc_type.__name__}: {exc}"
        self.finish()
        return False

    def finish(self) -> None:
        """Stamp the end time and hand the span back to the tracer."""
        if self.end is not None:
            return
        self.end = self._tracer._clock()
        if not self._detached:
            self._tracer._current = self._prev
        self._tracer._finished(self)

    # -- recording ---------------------------------------------------------------

    def set(self, **attributes) -> None:
        """Attach attributes (generation, flow count, cache hits, …)."""
        self.attributes.update(attributes)

    def add_link(self, trace_id: str, span_id: str, **attributes) -> None:
        """Reference a span of another trace (OpenTelemetry-style link)."""
        link = {"trace_id": trace_id, "span_id": span_id}
        if attributes:
            link["attributes"] = attributes
        self.links.append(link)

    # -- readings ----------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Wall-clock seconds from enter to finish (so-far if unfinished)."""
        end = self.end if self.end is not None else self._tracer._clock()
        return end - self.start

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def children(self) -> list["Span"]:
        """Direct children, in finish order (requires a finished trace)."""
        return [s for s in self._root.spans if s.parent_id == self.span_id]

    def to_dict(self) -> dict:
        """Plain-data form for JSON export."""
        node = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "error": self.error,
        }
        if self.links:
            node["links"] = [dict(link) for link in self.links]
        return node

    def tree(self) -> dict:
        """Nested plain-data form rooted at this span."""
        node = self.to_dict()
        node["children"] = [child.tree() for child in self.children()]
        return node

    def format_tree(self, indent: int = 0) -> str:
        """Human-readable indented rendering of the span tree."""
        attrs = " ".join(f"{k}={v}" for k, v in sorted(self.attributes.items()))
        line = "  " * indent + f"{self.name} {self.duration * 1e3:.3f}ms"
        if attrs:
            line += f" [{attrs}]"
        lines = [line]
        for child in self.children():
            lines.append(child.format_tree(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name!r} trace={self.trace_id} {self.duration * 1e3:.3f}ms>"


class Tracer:
    """Creates spans, tracks nesting, and retains finished traces."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        max_traces: int = 64,
        clock=time.perf_counter,
    ):
        self._registry = registry
        self._clock = clock
        # Span nesting is per reader thread; ids and retention are global.
        self._local = threading.local()
        self._seq_lock = threading.Lock()
        self._trace_seq = 0
        self._span_seq = 0
        self.traces: deque[Span] = deque(maxlen=max_traces)
        self.spans_finished = 0
        self._stage_histograms: dict[str, Histogram] = {}

    @property
    def _current(self) -> Span | None:
        return getattr(self._local, "span", None)

    @_current.setter
    def _current(self, span: "Span | None") -> None:
        self._local.span = span

    def span(self, name: str, root: bool = False, detached: bool = False) -> Span:
        """Open a span (use as a context manager).

        ``root=True`` starts a fresh trace even when a span is currently
        open; ``detached`` additionally keeps the span out of the
        current-span slot so code that yields control mid-span (collector
        processes) cannot corrupt the nesting of interleaved traces.
        Detached spans are always trace roots.

        A trace root opened while a request :class:`TraceContext` is bound
        to the thread (:func:`repro.obs.context.bind_context`) adopts the
        bound *trace id* instead of minting a sequential ``q-NNNNNN`` one,
        so every span of the request correlates with its log lines and
        ``traceparent`` header on one id.  Detached spans never adopt: a
        collector sweep is not part of whichever request it interleaves.
        """
        parent = None if (root or detached) else self._current
        with self._seq_lock:
            if parent is None:
                bound = None if detached else current_context()
                if bound is not None:
                    trace_id = bound.trace_id
                else:
                    self._trace_seq += 1
                    trace_id = f"q-{self._trace_seq:06d}"
            else:
                trace_id = parent.trace_id
            self._span_seq += 1
            span_id = f"s-{self._span_seq:06d}"
        return Span(
            tracer=self,
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent.span_id if parent is not None else None,
            root=parent._root if parent is not None else None,
            detached=detached,
        )

    @property
    def current_span(self) -> Span | None:
        """The innermost open (non-detached) span, if any."""
        return self._current

    def _finished(self, span: Span) -> None:
        span._root.spans.append(span)
        with self._seq_lock:
            self.spans_finished += 1
            if span.is_root:
                self.traces.append(span)
            histogram = self._stage_histograms.get(span.name)
            if histogram is None and self._registry is not None:
                histogram = self._registry.histogram(
                    STAGE_HISTOGRAM,
                    labels={"stage": span.name},
                    help="Wall-clock seconds per pipeline stage (span durations)",
                )
                self._stage_histograms[span.name] = histogram
        if histogram is not None:
            histogram.observe(span.duration)

    def last_trace(self, name: str | None = None) -> Span | None:
        """The most recent finished trace (optionally by root span name)."""
        for trace in reversed(self.traces):
            if name is None or trace.name == name:
                return trace
        return None

    def reset(self) -> None:
        """Drop retained traces and nesting state (tests/benchmarks)."""
        self._current = None
        self.traces.clear()
        self.spans_finished = 0
        self._stage_histograms.clear()
