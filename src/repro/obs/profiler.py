"""A stdlib sampling wall-clock profiler emitting collapsed stacks.

A :class:`SamplingProfiler` runs one daemon thread that periodically grabs
``sys._current_frames()`` and folds every *other* thread's stack into a
``frame;frame;frame`` key (root first, innermost last, prefixed with the
thread name), counting samples per key.  The aggregate is the standard
**collapsed-stack** format::

    remos-query_0;core/api.py:flow_info;fairshare/maxmin.py:solve 42

ready for ``flamegraph.pl`` or speedscope, with no dependency beyond the
stdlib and no instrumentation of the profiled code: wall-clock sampling
sees lock waits and I/O exactly like CPU time, which is what matters for a
query service whose readers spend time blocked on the coalescing leader.

The HTTP front end exposes it at ``GET /debug/profile?seconds=N`` (one
profile at a time per process); :func:`profile` is the blocking
convenience used there and in tests.  Overhead while running is roughly
one ``sys._current_frames`` walk per interval (default 10 ms) — cheap
enough to run against a live service, zero when not running.
"""

from __future__ import annotations

import sys
import threading
import time

from repro.util.errors import ConfigurationError

#: Sampling floor: below this the sampler itself dominates the readings.
MIN_INTERVAL = 0.001


class SamplingProfiler:
    """Samples every thread's stack on a fixed interval; start/stop API."""

    def __init__(self, interval: float = 0.01, max_depth: int = 64):
        if interval < MIN_INTERVAL:
            raise ConfigurationError(
                f"sampling interval below the {MIN_INTERVAL * 1e3:.0f}ms floor"
            )
        self.interval = float(interval)
        self.max_depth = int(max_depth)
        self.samples = 0
        self.started_at: float | None = None
        self.stopped_at: float | None = None
        self._counts: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self.started_at = time.time()
        self.stopped_at = None
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling (idempotent); the aggregate stays readable."""
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        self.stopped_at = time.time()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling ----------------------------------------------------------------

    def _sample_loop(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._take_sample(own_id)

    def _take_sample(self, own_id: int) -> None:
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        folded: list[str] = []
        for thread_id, frame in frames.items():
            if thread_id == own_id:
                continue
            stack: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                stack.append(f"{_module_of(code.co_filename)}:{code.co_name}")
                frame = frame.f_back
                depth += 1
            stack.reverse()
            thread_name = names.get(thread_id, f"thread-{thread_id}")
            folded.append(";".join([thread_name] + stack))
        with self._lock:
            self.samples += 1
            for key in folded:
                self._counts[key] = self._counts.get(key, 0) + 1

    # -- readings ----------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """The raw ``collapsed-stack -> samples`` aggregate (a copy)."""
        with self._lock:
            return dict(self._counts)

    def collapsed(self) -> str:
        """Collapsed-stack text, hottest stacks first, one per line."""
        counts = self.counts()
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        return {
            "interval": self.interval,
            "samples": self.samples,
            "stacks": len(self._counts),
            "started_at": self.started_at,
            "stopped_at": self.stopped_at,
            "running": self.running,
        }


def _module_of(filename: str) -> str:
    """A compact frame location: the last two path segments, no extension."""
    parts = filename.replace("\\", "/").rsplit("/", 2)[-2:]
    return "/".join(parts)


def profile(seconds: float, interval: float = 0.01) -> SamplingProfiler:
    """Profile the whole process for *seconds*; returns the stopped profiler.

    Blocking convenience for ``GET /debug/profile`` and scripts::

        prof = profile(2.0)
        open("out.folded", "w").write(prof.collapsed())
    """
    if seconds <= 0:
        raise ConfigurationError("profile duration must be positive")
    profiler = SamplingProfiler(interval=interval)
    with profiler:
        time.sleep(seconds)
    return profiler
