"""Request-scoped trace context: W3C ``traceparent`` in, out, and through.

A :class:`TraceContext` is the identity of one request as it crosses the
HTTP boundary: a 128-bit *trace id* shared by every span, log line and
response header the request produces, plus the 64-bit *span id* of the
current hop.  The HTTP front end parses the context from an incoming
``traceparent`` header (or generates a fresh one), **binds** it to the
handling thread for the duration of the request, and echoes it on the
response — so a caller can join our spans, slow-query records and log
lines to its own trace on one id.

While a context is bound:

* :class:`~repro.obs.log.StructLogger` stamps ``trace_id=...`` on every
  emitted line;
* the :class:`~repro.obs.tracing.Tracer` roots new traces at the bound
  trace id instead of minting a sequential one, so the library-level
  ``query.*`` spans carry the request's id;
* :class:`~repro.obs.slowlog.SlowQueryLog` records inherit the id.

Binding is **thread-local** (requests are handled synchronously on one
thread each, like span nesting — see ``docs/CONCURRENCY.md``) and costs
nothing on un-bound threads: the lookup happens only when a line is
actually emitted or a trace root is actually opened.
"""

from __future__ import annotations

import os
import re
import threading
from contextlib import contextmanager

#: ``version-traceid-spanid-flags`` with fixed field widths (W3C level 1).
_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


class TraceContext:
    """One request's trace identity: ``(trace_id, span_id, sampled)``."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool = True):
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    @classmethod
    def generate(cls) -> "TraceContext":
        """A fresh context with random (non-zero) W3C-format ids."""
        return cls(trace_id=_random_hex(16), span_id=_random_hex(8))

    def child(self) -> "TraceContext":
        """Same trace, new span id — the next hop of this request."""
        return TraceContext(self.trace_id, _random_hex(8), self.sampled)

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        return f"00-{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.sampled == other.sampled
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceContext {self.to_traceparent()}>"


def _random_hex(nbytes: int) -> str:
    """``2 * nbytes`` lowercase hex chars, never all zeros (W3C forbids it)."""
    while True:
        value = os.urandom(nbytes).hex()
        if value.strip("0"):
            return value


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header value; ``None`` when malformed.

    Strict per the W3C trace-context level-1 grammar: four ``-``-separated
    lowercase-hex fields of fixed width, version ``ff`` reserved, all-zero
    trace or span ids invalid.  Unknown (non-``00``) versions are accepted
    as long as the level-1 prefix parses, as the spec requires.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip())
    if match is None:
        return None
    version, trace_id, span_id, flags = match.groups()
    if version == "ff":
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id, span_id, sampled=bool(int(flags, 16) & 0x01))


# -- thread-local binding --------------------------------------------------------

_active = threading.local()


def current_context() -> TraceContext | None:
    """The context bound to this thread, if any."""
    return getattr(_active, "context", None)


@contextmanager
def bind_context(context: TraceContext):
    """Bind *context* to the calling thread for the ``with`` body.

    Bindings nest (the previous binding is restored on exit), and binding
    never leaks across threads: each request thread sees only its own.
    """
    previous = getattr(_active, "context", None)
    _active.context = context
    try:
        yield context
    finally:
        _active.context = previous
