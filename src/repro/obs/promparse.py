"""A strict parser for the Prometheus text exposition format (v0.0.4).

The export audit's other half: :mod:`repro.obs.metrics` *writes* the text
format, this module *reads it back* pedantically, so a round-trip test can
prove every family emits ``# HELP``/``# TYPE`` exactly once, label values
are escaped correctly, and no duplicate series slip out.  ``repro top``
reuses it to scrape ``/metrics`` without an external client library.

:func:`parse` raises :class:`PromParseError` (with the offending line
number) on any violation of the subset we emit:

* metric and label names must match the Prometheus grammar;
* ``# HELP`` and ``# TYPE`` at most once per family, ``# TYPE`` before
  any of the family's samples, and no samples from a family may appear
  after another family's samples started (families are contiguous);
* label values must use only the three legal escapes (``\\\\``, ``\\"``,
  ``\\n``) and sample values must parse as floats (``+Inf``/``-Inf``/
  ``NaN`` included);
* a sample's name must be its family's name, or — for ``summary``
  families — the family name plus ``_sum``/``_count``;
* no two samples of a family may carry the same label set.
"""

from __future__ import annotations

import math
import re

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}
#: Suffixes a summary/histogram family may attach to its sample names.
_FAMILY_SUFFIXES = ("_sum", "_count", "_bucket")


class PromParseError(ValueError):
    """A violation of the exposition format, annotated with its line."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


class Family:
    """One metric family: its metadata and every parsed sample."""

    __slots__ = ("name", "help", "type", "samples")

    def __init__(self, name: str):
        self.name = name
        self.help: str | None = None
        self.type: str | None = None
        #: ``(sample_name, labels, value)`` in exposition order.
        self.samples: list[tuple[str, dict[str, str], float]] = []

    def value(self, labels: dict[str, str] | None = None) -> float | None:
        """The value of the sample matching *labels* exactly (None if absent)."""
        wanted = labels or {}
        for sample_name, sample_labels, value in self.samples:
            if sample_name == self.name and sample_labels == wanted:
                return value
        return None


def _base_family(sample_name: str, families: dict[str, Family]) -> Family | None:
    """The family a sample line belongs to, honouring summary suffixes."""
    if sample_name in families:
        return families[sample_name]
    for suffix in _FAMILY_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            family = families.get(base)
            if family is not None and family.type in ("summary", "histogram"):
                return family
    return None


def _parse_value(text: str, lineno: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise PromParseError(lineno, f"unparseable sample value {text!r}") from None


def _parse_labels(body: str, lineno: int) -> dict[str, str]:
    """Parse the inside of ``{...}`` character by character (strict escapes)."""
    labels: dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0:
            raise PromParseError(lineno, f"label without '=' in {body!r}")
        name = body[i:eq]
        if not _LABEL_NAME_RE.match(name):
            raise PromParseError(lineno, f"invalid label name {name!r}")
        if name in labels:
            raise PromParseError(lineno, f"duplicate label name {name!r}")
        if eq + 1 >= n or body[eq + 1] != '"':
            raise PromParseError(lineno, f"label value for {name!r} not quoted")
        i = eq + 2
        chars: list[str] = []
        while True:
            if i >= n:
                raise PromParseError(lineno, f"unterminated label value for {name!r}")
            c = body[i]
            if c == "\\":
                if i + 1 >= n:
                    raise PromParseError(lineno, "dangling backslash in label value")
                escape = body[i + 1]
                if escape == "\\":
                    chars.append("\\")
                elif escape == '"':
                    chars.append('"')
                elif escape == "n":
                    chars.append("\n")
                else:
                    raise PromParseError(
                        lineno, f"illegal escape \\{escape} in label value"
                    )
                i += 2
            elif c == '"':
                i += 1
                break
            elif c == "\n":
                raise PromParseError(lineno, "raw newline in label value")
            else:
                chars.append(c)
                i += 1
        labels[name] = "".join(chars)
        if i < n:
            if body[i] != ",":
                raise PromParseError(lineno, f"expected ',' after label {name!r}")
            i += 1
    return labels


def parse(text: str) -> dict[str, Family]:
    """Parse an exposition document into ``{family name: Family}``.

    Raises :class:`PromParseError` on the first violation.
    """
    families: dict[str, Family] = {}
    #: Family whose samples are currently streaming (contiguity check).
    current: Family | None = None
    closed: set[str] = set()
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # a plain comment
            if len(parts) < 3:
                raise PromParseError(lineno, f"{parts[1]} line without a metric name")
            keyword, name = parts[1], parts[2]
            if not _NAME_RE.match(name):
                raise PromParseError(lineno, f"invalid metric name {name!r}")
            if name in closed:
                raise PromParseError(
                    lineno, f"family {name!r} reopened after its samples ended"
                )
            family = families.setdefault(name, Family(name))
            if keyword == "HELP":
                if family.help is not None:
                    raise PromParseError(lineno, f"second HELP line for {name!r}")
                if family.samples:
                    raise PromParseError(lineno, f"HELP for {name!r} after its samples")
                family.help = parts[3] if len(parts) > 3 else ""
            else:
                if family.type is not None:
                    raise PromParseError(lineno, f"second TYPE line for {name!r}")
                if family.samples:
                    raise PromParseError(lineno, f"TYPE for {name!r} after its samples")
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _KINDS:
                    raise PromParseError(lineno, f"unknown TYPE {kind!r} for {name!r}")
                family.type = kind
            continue
        # -- a sample line ---------------------------------------------------
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)\s*$", line)
        if match is None:
            raise PromParseError(lineno, f"unparseable sample line {line!r}")
        sample_name, _, label_body, value_text = match.groups()
        labels = _parse_labels(label_body, lineno) if label_body else {}
        value = _parse_value(value_text, lineno)
        family = _base_family(sample_name, families)
        if family is None:
            # An untyped family announced by its first sample.
            if any(sample_name.endswith(s) for s in _FAMILY_SUFFIXES):
                raise PromParseError(
                    lineno,
                    f"sample {sample_name!r} uses a summary suffix without a "
                    "TYPE'd base family",
                )
            family = families.setdefault(sample_name, Family(sample_name))
        if family.name in closed:
            raise PromParseError(
                lineno, f"family {family.name!r} has non-contiguous samples"
            )
        if current is not None and current is not family:
            closed.add(current.name)
        current = family
        key = (sample_name, tuple(sorted(labels.items())))
        seen = {
            (existing_name, tuple(sorted(existing_labels.items())))
            for existing_name, existing_labels, _ in family.samples
        }
        if key in seen:
            raise PromParseError(
                lineno, f"duplicate series {sample_name}{labels!r}"
            )
        family.samples.append((sample_name, labels, value))
    return families
