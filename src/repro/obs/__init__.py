"""repro.obs — the observability layer: metrics, tracing, structured logs.

One switchboard for the whole pipeline.  Everything is **off by default**
and the disabled fast path costs one module-global check per call site, so
un-instrumented behaviour (and benchmark numbers) are unchanged until a
user opts in::

    from repro import obs

    obs.configure_observability()            # turn everything on
    remos.flow_info(...)                     # now traced + measured
    print(obs.get_registry().to_prometheus())
    print(obs.get_tracer().last_trace().format_tree())

Instrumented call sites use three verbs:

* ``obs.span("query.flow_info")`` — a context manager timing one pipeline
  stage; yields ``None`` when tracing is off, so attribute recording is
  guarded by a plain ``if sp:``;
* ``obs.inc("remos_collector_sweeps_total", collector="snmp")`` — bump a
  counter (no-op when metrics are off);
* ``obs.get_logger(__name__).info("sweep", generation=3)`` — a structured
  log line (no-op unless logging is on).

See ``docs/OBSERVABILITY.md`` for the metric-name and span taxonomy.
"""

from __future__ import annotations

from typing import IO

from repro.obs.context import (
    TraceContext,
    bind_context,
    current_context,
    parse_traceparent,
)
from repro.obs.log import StructLogger, configure_logging, get_logger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import SamplingProfiler, profile
from repro.obs.slo import FreshnessMonitor, LatencySLO, SLORegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import NOOP_SPAN, STAGE_HISTOGRAM, Span, Tracer

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "StructLogger",
    "STAGE_HISTOGRAM",
    "NOOP_SPAN",
    "TraceContext",
    "parse_traceparent",
    "bind_context",
    "current_context",
    "current_span",
    "SlowQueryLog",
    "SLORegistry",
    "LatencySLO",
    "FreshnessMonitor",
    "SamplingProfiler",
    "profile",
    "configure_observability",
    "reset_observability",
    "observability_enabled",
    "metrics_enabled",
    "tracing_enabled",
    "get_registry",
    "get_tracer",
    "get_logger",
    "span",
    "inc",
    "observe",
]


class _State:
    """Process-global observability state (flags + live backends)."""

    __slots__ = ("metrics_on", "tracing_on", "registry", "tracer")

    def __init__(self):
        self.metrics_on = False
        self.tracing_on = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer(registry=self.registry)


_state = _State()


def configure_observability(
    enabled: bool = True,
    *,
    metrics: bool | None = None,
    tracing: bool | None = None,
    logging: bool | None = None,
    log_level: str = "info",
    log_format: str = "kv",
    log_stream: IO[str] | None = None,
    log_timestamps: bool = True,
    max_traces: int = 64,
) -> None:
    """Single entry point switching the three facilities on (or off).

    *enabled* is the master default; ``metrics`` / ``tracing`` /
    ``logging`` override it individually.  Existing registry contents and
    retained traces survive reconfiguration (use
    :func:`reset_observability` for a clean slate).
    """
    _state.metrics_on = enabled if metrics is None else metrics
    _state.tracing_on = enabled if tracing is None else tracing
    _state.tracer.traces = type(_state.tracer.traces)(
        _state.tracer.traces, maxlen=max_traces
    )
    configure_logging(
        enabled=(enabled if logging is None else logging),
        level=log_level,
        format=log_format,
        stream=log_stream,
        timestamps=log_timestamps,
    )


def reset_observability() -> None:
    """Back to the pristine disabled state with empty backends (tests)."""
    from repro.obs.log import _CONFIG

    _state.metrics_on = False
    _state.tracing_on = False
    _state.registry = MetricsRegistry()
    _state.tracer = Tracer(registry=_state.registry)
    _CONFIG.set_defaults()


def observability_enabled() -> bool:
    """True when metrics or tracing are on (logging is independent)."""
    return _state.metrics_on or _state.tracing_on


def metrics_enabled() -> bool:
    return _state.metrics_on


def tracing_enabled() -> bool:
    return _state.tracing_on


def get_registry() -> MetricsRegistry:
    """The process-wide registry (readable even while disabled)."""
    return _state.registry


def get_tracer() -> Tracer:
    """The process-wide tracer (readable even while disabled)."""
    return _state.tracer


# -- hot-path verbs used by instrumented call sites -----------------------------


def span(name: str, root: bool = False, detached: bool = False):
    """A timing span, or the shared no-op when tracing is off."""
    if not _state.tracing_on:
        return NOOP_SPAN
    return _state.tracer.span(name, root=root, detached=detached)


def current_span() -> Span | None:
    """This thread's innermost open span (None when tracing is off)."""
    if not _state.tracing_on:
        return None
    return _state.tracer.current_span


def inc(name: str, amount: float = 1.0, help: str = "", **labels) -> None:
    """Bump a counter (created on first use); no-op when metrics are off."""
    if not _state.metrics_on:
        return
    _state.registry.counter(name, labels=labels or None, help=help).inc(amount)


def observe(name: str, value: float, help: str = "", **labels) -> None:
    """Record a histogram observation; no-op when metrics are off."""
    if not _state.metrics_on:
        return
    _state.registry.histogram(name, labels=labels or None, help=help).observe(value)
