"""The slow-query log: forensic records for requests over a latency budget.

A :class:`SlowQueryLog` keeps the most recent completed queries whose
wall-clock duration crossed a threshold, each as a plain-data record
carrying everything needed to reconstruct the request after the fact *from
the log alone*:

* identity — the endpoint name, the request's trace id, a wall-clock
  completion timestamp;
* the query arguments as given (flow specs, node lists, timeframe);
* the data the answer was computed from — snapshot epoch, view generation
  and structure generation;
* the cache-hit profile of the query (hits/misses deltas);
* the **full span tree** of the request (when tracing was on), in the
  nested `Span.tree()` form.

Records live in a bounded ring (oldest evicted first) guarded by one lock;
the HTTP front end serves them at ``GET /debug/slow`` newest-first.  Every
admitted record also bumps ``remos_slow_queries_total{endpoint=...}``.
"""

from __future__ import annotations

import threading
import time
from collections import deque


class SlowQueryLog:
    """A bounded, thread-safe ring of slow-query forensic records.

    Parameters
    ----------
    threshold_seconds:
        Durations at or above this are recorded (0 records everything —
        useful in tests and when hunting a regression interactively).
    capacity:
        Ring size; the oldest record is evicted when full.
    """

    def __init__(self, threshold_seconds: float = 0.25, capacity: int = 128):
        self.threshold_seconds = float(threshold_seconds)
        self.capacity = int(capacity)
        self._records: deque[dict] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self.observed = 0
        self.recorded = 0

    def observe(
        self,
        endpoint: str,
        duration: float,
        *,
        trace_id: str | None = None,
        args: dict | None = None,
        epoch: int | None = None,
        generation: int | None = None,
        structure_generation: int | None = None,
        cache_hits: int | None = None,
        cache_misses: int | None = None,
        span_tree: dict | None = None,
        status: int | None = None,
        ts: float | None = None,
        shard: str | None = None,
    ) -> dict | None:
        """Record one completed query if it crossed the threshold.

        Returns the record admitted to the ring, or ``None`` when the
        query was fast enough.  Import of the metrics verb is deferred to
        the slow path, so observing a fast query costs one comparison.
        """
        with self._lock:
            self.observed += 1
            if duration < self.threshold_seconds:
                return None
            record = {
                "endpoint": endpoint,
                "duration": duration,
                "threshold": self.threshold_seconds,
                "trace_id": trace_id,
                "ts": time.time() if ts is None else ts,
                "args": args or {},
                "epoch": epoch,
                "generation": generation,
                "structure_generation": structure_generation,
                "cache_hits": cache_hits,
                "cache_misses": cache_misses,
                "status": status,
                "span_tree": span_tree,
                # Which federation shard answered (None outside federations;
                # "cross" for queries composed across shards).
                "shard": shard,
            }
            self._records.append(record)
            self.recorded += 1
        from repro import obs

        obs.inc(
            "remos_slow_queries_total",
            help="Completed queries recorded by the slow-query log",
            endpoint=endpoint,
        )
        return record

    def records(self, limit: int | None = None) -> list[dict]:
        """Retained records, newest first (optionally capped at *limit*)."""
        with self._lock:
            newest_first = list(reversed(self._records))
        if limit is not None:
            newest_first = newest_first[: max(0, int(limit))]
        return newest_first

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def to_dict(self, limit: int | None = None) -> dict:
        """The ``GET /debug/slow`` payload: ring metadata plus records."""
        return {
            "threshold_seconds": self.threshold_seconds,
            "capacity": self.capacity,
            "observed": self.observed,
            "recorded": self.recorded,
            "records": self.records(limit),
        }

    def reset(self) -> None:
        """Drop retained records and counts (tests / between experiments)."""
        with self._lock:
            self._records.clear()
            self.observed = 0
            self.recorded = 0
