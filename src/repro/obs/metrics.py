"""The metrics registry: counters, gauges, and quartile histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments, each
optionally distinguished by a fixed label set (Prometheus-style).  Three
instrument kinds cover everything the pipeline reports:

* :class:`Counter` — a monotonically increasing total (sweeps completed,
  cache hits);
* :class:`Gauge` — a point-in-time value, settable directly or lazily via a
  callback read at export time (staleness, live hit rate);
* :class:`Histogram` — a bounded sample reservoir summarised as the paper's
  own five-number quartile measure (:class:`~repro.stats.StatMeasure`), so
  per-stage latencies are reported in exactly the statistical language
  Remos answers queries in.

The registry exports as plain dicts (JSON) and as the Prometheus text
exposition format (counters/gauges verbatim, histograms as summaries with
``quantile`` labels).  Everything is stdlib + the existing stats layer; no
external metrics client is required.
"""

from __future__ import annotations

import math
import threading
from typing import Callable

from repro.stats import StatMeasure
from repro.util.errors import ConfigurationError

#: Immutable, hashable form of a label set: sorted (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str] | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a Prometheus label value: backslash, double-quote, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape a HELP line: backslash and newline (quotes are legal there)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


class Counter:
    """A monotonically increasing total.  Increments are thread-safe."""

    __slots__ = ("name", "labels", "_value", "_lock")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative: counters never go down)."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"labels": dict(self.labels), "value": self._value}


class Gauge:
    """A point-in-time value, set directly or read from a callback.

    Increments are thread-safe.  Callback reads are guarded: a callback
    that raises (e.g. one registered by a facade whose collector is gone)
    degrades to the last directly-set value instead of breaking the whole
    export.
    """

    __slots__ = ("name", "labels", "_value", "_fn", "_lock")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn: Callable[[], float] | None = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the gauge lazily from *fn* at export time (last caller wins)."""
        self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return float(fn())
            except Exception:
                return self._value
        return self._value

    def snapshot(self) -> dict:
        return {"labels": dict(self.labels), "value": self.value}


class Histogram:
    """A bounded reservoir of observations summarised as quartiles.

    The newest ``max_samples`` observations are kept (older ones slide
    out), so the summary tracks recent behaviour without unbounded memory.
    ``count`` and ``sum`` cover *every* observation ever made, matching
    Prometheus summary semantics.
    """

    __slots__ = ("name", "labels", "max_samples", "_samples", "_count", "_sum", "_lock")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = (), max_samples: int = 2048):
        if max_samples <= 0:
            raise ConfigurationError("histogram needs a positive sample bound")
        self.name = name
        self.labels = labels
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (thread-safe)."""
        with self._lock:
            self._count += 1
            self._sum += value
            samples = self._samples
            samples.append(float(value))
            if len(samples) > self.max_samples:
                # Drop the oldest half in one go: O(1) amortised per observe.
                del samples[: len(samples) // 2]

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def summary(self) -> StatMeasure | None:
        """Quartile summary of the retained samples (None when empty)."""
        with self._lock:
            if not self._samples:
                return None
            samples = list(self._samples)
        return StatMeasure.from_samples(samples)

    def snapshot(self) -> dict:
        measure = self.summary()
        return {
            "labels": dict(self.labels),
            "count": self._count,
            "sum": self._sum,
            "summary": measure.to_dict() if measure is not None else None,
        }


#: Quantiles exported for histograms, as (prometheus quantile, attribute).
_EXPORT_QUANTILES = (
    ("0", "minimum"),
    ("0.25", "q1"),
    ("0.5", "median"),
    ("0.75", "q3"),
    ("1", "maximum"),
)


class MetricsRegistry:
    """Get-or-create home for every instrument, with JSON/Prometheus export.

    Instruments are identified by ``(name, labels)``; asking twice returns
    the same object, and asking for an existing name with a different
    *kind* is an error (one name = one kind, as in Prometheus).
    """

    def __init__(self):
        self._instruments: dict[tuple[str, LabelKey], Counter | Gauge | Histogram] = {}
        self._help: dict[str, str] = {}
        self._kinds: dict[str, str] = {}
        # Get-or-create must be atomic: two threads asking for the same
        # (name, labels) must receive the same instrument, never two
        # instruments racing on the registry dict.
        self._lock = threading.RLock()

    def _get(self, cls, name: str, labels: dict[str, str] | None, help: str, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            known = self._kinds.get(name)
            if known is not None and known != cls.kind:
                raise ConfigurationError(
                    f"metric {name!r} is already registered as a {known}"
                )
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
                self._kinds[name] = cls.kind
                if help:
                    self._help[name] = help
            return instrument

    def counter(
        self, name: str, labels: dict[str, str] | None = None, help: str = ""
    ) -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(
        self, name: str, labels: dict[str, str] | None = None, help: str = ""
    ) -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        help: str = "",
        max_samples: int = 2048,
    ) -> Histogram:
        return self._get(Histogram, name, labels, help, max_samples=max_samples)

    def __len__(self) -> int:
        return len(self._instruments)

    def reset(self) -> None:
        """Forget every instrument (tests / between benchmark phases)."""
        with self._lock:
            self._instruments.clear()
            self._help.clear()
            self._kinds.clear()

    # -- export -----------------------------------------------------------------

    def _by_name(self) -> dict[str, list[Counter | Gauge | Histogram]]:
        with self._lock:
            items = sorted(self._instruments.items(), key=lambda item: item[0])
        grouped: dict[str, list] = {}
        for (name, _), instrument in items:
            grouped.setdefault(name, []).append(instrument)
        return grouped

    def to_dict(self) -> dict:
        """Plain-data form: ``{name: {type, help, series: [...]}}``."""
        result: dict[str, dict] = {}
        for name, instruments in self._by_name().items():
            result[name] = {
                "type": self._kinds.get(name, instruments[0].kind),
                "help": self._help.get(name, ""),
                "series": [instrument.snapshot() for instrument in instruments],
            }
        return result

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (histograms as summaries).

        Audit contract (round-trip-tested against the strict parser in
        :mod:`repro.obs.promparse`): every family emits exactly one
        ``# HELP`` and one ``# TYPE`` line, both ahead of its samples,
        families are contiguous, and label values carry the three legal
        escapes.
        """
        lines: list[str] = []
        for name, instruments in self._by_name().items():
            kind = self._kinds.get(name, instruments[0].kind)
            help_text = self._help.get(name, "")
            lines.append(f"# HELP {name} {_escape_help(help_text)}".rstrip())
            lines.append(f"# TYPE {name} {'summary' if kind == 'histogram' else kind}")
            for instrument in instruments:
                if isinstance(instrument, Histogram):
                    measure = instrument.summary()
                    if measure is not None:
                        for quantile, attribute in _EXPORT_QUANTILES:
                            labels = _format_labels(
                                instrument.labels, (("quantile", quantile),)
                            )
                            value = getattr(measure, attribute)
                            lines.append(f"{name}{labels} {_format_value(value)}")
                    labels = _format_labels(instrument.labels)
                    lines.append(f"{name}_sum{labels} {_format_value(instrument.sum)}")
                    lines.append(f"{name}_count{labels} {instrument.count}")
                else:
                    labels = _format_labels(instrument.labels)
                    lines.append(f"{name}{labels} {_format_value(instrument.value)}")
        return "\n".join(lines) + ("\n" if lines else "")
