"""Service-level objectives: latency budgets and freshness monitors.

Two complementary kinds of objective, matching how the query service can
disappoint its callers:

* :class:`LatencySLO` — *"target fraction of requests under a threshold"*
  per endpoint.  Every recorded request is classified good/bad against the
  threshold; the **error budget** is the number of bad requests the target
  still allows.  Budgets are reported (``GET /debug/slo``, gauges) but do
  not flip health: a latency blip is an alert, not an outage.

* :class:`FreshnessMonitor` — *"a live reading must stay under a
  maximum"*: snapshot-epoch age and sweep duration.  Remos's whole value
  is trusting its answers about the network, so a stale epoch **does**
  flip ``/healthz`` to 503 with a machine-readable reason — serving
  confidently from minutes-old measurements is worse than refusing.

The :class:`SLORegistry` owns both, feeds the per-endpoint latency
histograms and budget gauges into the metrics registry via the ``obs``
verbs (no-ops when metrics are off), and answers the two operational
questions: :meth:`SLORegistry.health` (healthy? why not?) and
:meth:`SLORegistry.to_dict` (the full objective report).
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.util.errors import ConfigurationError


class LatencySLO:
    """One endpoint's latency objective: *target* of requests ≤ *threshold*.

    ``record`` classifies a request duration; the budget math follows the
    standard SRE formulation: with N total requests and target t, the
    error budget is ``(1 - t) * N`` bad requests; ``budget_remaining`` is
    the fraction of that budget still unspent (1.0 untouched, 0.0
    exhausted, negative when overdrawn).
    """

    __slots__ = ("endpoint", "threshold_seconds", "target", "total", "breaches", "_lock")

    def __init__(self, endpoint: str, threshold_seconds: float, target: float = 0.99):
        if not 0.0 < target <= 1.0:
            raise ConfigurationError(f"SLO target must be in (0, 1], got {target}")
        if threshold_seconds <= 0:
            raise ConfigurationError("SLO latency threshold must be positive")
        self.endpoint = endpoint
        self.threshold_seconds = float(threshold_seconds)
        self.target = float(target)
        self.total = 0
        self.breaches = 0
        self._lock = threading.Lock()

    def record(self, duration: float) -> bool:
        """Classify one request; returns True when it met the objective."""
        good = duration <= self.threshold_seconds
        with self._lock:
            self.total += 1
            if not good:
                self.breaches += 1
        return good

    @property
    def allowed_breaches(self) -> float:
        return (1.0 - self.target) * self.total

    @property
    def budget_remaining(self) -> float:
        """Fraction of the error budget unspent (clamped to [-1, 1])."""
        allowed = self.allowed_breaches
        if allowed <= 0.0:
            return 1.0 if self.breaches == 0 else -1.0
        return max(-1.0, (allowed - self.breaches) / allowed)

    @property
    def healthy(self) -> bool:
        return self.breaches <= self.allowed_breaches

    def to_dict(self) -> dict:
        return {
            "endpoint": self.endpoint,
            "threshold_seconds": self.threshold_seconds,
            "target": self.target,
            "total": self.total,
            "breaches": self.breaches,
            "allowed_breaches": self.allowed_breaches,
            "budget_remaining": self.budget_remaining,
            "healthy": self.healthy,
        }


class FreshnessMonitor:
    """A live reading (via *probe*) that must stay at or under *maximum*.

    ``probe`` returns the current reading in the monitor's unit (seconds
    for epoch age and sweep duration) or ``None`` when there is no reading
    yet — a fresh service without a published epoch is *not yet* stale.
    A probe that raises degrades to "no reading" rather than taking the
    health endpoint down with it.
    """

    __slots__ = ("name", "maximum", "reason", "_probe")

    def __init__(
        self,
        name: str,
        maximum: float,
        probe: Callable[[], float | None],
        reason: str,
    ):
        if maximum <= 0:
            raise ConfigurationError("monitor maximum must be positive")
        self.name = name
        self.maximum = float(maximum)
        self.reason = reason
        self._probe = probe

    def check(self) -> dict:
        """One machine-readable reading: name, value, bound, verdict."""
        try:
            reading = self._probe()
        except Exception:
            reading = None
        healthy = reading is None or reading <= self.maximum
        result = {
            "monitor": self.name,
            "reading": reading,
            "maximum": self.maximum,
            "healthy": healthy,
        }
        if not healthy:
            result["reason"] = self.reason
        return result


class SLORegistry:
    """Declared objectives for one service: latency SLOs plus monitors."""

    def __init__(self):
        self._latency: dict[str, LatencySLO] = {}
        self._monitors: list[FreshnessMonitor] = []
        self._lock = threading.Lock()

    # -- declaration -------------------------------------------------------------

    def declare_latency(
        self, endpoint: str, threshold_seconds: float, target: float = 0.99
    ) -> LatencySLO:
        """Declare (or re-declare) the latency objective for *endpoint*."""
        slo = LatencySLO(endpoint, threshold_seconds, target)
        with self._lock:
            self._latency[endpoint] = slo
        return slo

    def add_monitor(
        self,
        name: str,
        maximum: float,
        probe: Callable[[], float | None],
        reason: str,
    ) -> FreshnessMonitor:
        """Register a freshness-class monitor that can flip health."""
        monitor = FreshnessMonitor(name, maximum, probe, reason)
        with self._lock:
            self._monitors = [m for m in self._monitors if m.name != name]
            self._monitors.append(monitor)
        return monitor

    # -- recording ---------------------------------------------------------------

    def record_request(self, endpoint: str, duration: float) -> None:
        """Feed one completed request into its endpoint's objective.

        Endpoints without a declared objective get an implicit permissive
        one (1 s at 99 %) so every endpoint shows up in the report, and
        every request lands in ``remos_http_request_seconds{endpoint=}``.
        """
        slo = self._latency.get(endpoint)
        if slo is None:
            with self._lock:
                slo = self._latency.get(endpoint)
                if slo is None:
                    slo = LatencySLO(endpoint, threshold_seconds=1.0, target=0.99)
                    self._latency[endpoint] = slo
        good = slo.record(duration)
        from repro import obs

        obs.observe(
            "remos_http_request_seconds",
            duration,
            help="Wall-clock seconds per HTTP request",
            endpoint=endpoint,
        )
        obs.inc(
            "remos_slo_requests_total",
            help="Requests classified against a latency SLO",
            endpoint=endpoint,
        )
        if not good:
            obs.inc(
                "remos_slo_breaches_total",
                help="Requests that missed their latency SLO threshold",
                endpoint=endpoint,
            )

    # -- readings ----------------------------------------------------------------

    def health(self) -> tuple[bool, list[dict]]:
        """(healthy, reasons): the freshness monitors' collective verdict.

        Only monitor breaches appear in *reasons* — latency budgets are
        reported by :meth:`to_dict` but never flip health.
        """
        with self._lock:
            monitors = list(self._monitors)
        reasons = [
            check for check in (monitor.check() for monitor in monitors)
            if not check["healthy"]
        ]
        return (not reasons, reasons)

    def publish_gauges(self) -> None:
        """Register budget/monitor gauges on the global metrics registry.

        Callback gauges read live at export time, so scraping ``/metrics``
        always sees the current budget without the request path paying for
        gauge updates.
        """
        from repro import obs

        if not obs.metrics_enabled():
            return
        registry = obs.get_registry()
        with self._lock:
            latency = dict(self._latency)
            monitors = list(self._monitors)
        for endpoint, slo in latency.items():
            registry.gauge(
                "remos_slo_error_budget_remaining",
                labels={"endpoint": endpoint},
                help="Fraction of the endpoint's latency error budget unspent",
            ).set_function(lambda s=slo: s.budget_remaining)
        for monitor in monitors:
            registry.gauge(
                "remos_slo_monitor_reading",
                labels={"monitor": monitor.name},
                help="Current reading of a freshness-class SLO monitor",
            ).set_function(
                lambda m=monitor: (
                    reading if (reading := m.check()["reading"]) is not None else 0.0
                )
            )

    def to_dict(self) -> dict:
        """The full ``GET /debug/slo`` report."""
        with self._lock:
            latency = dict(self._latency)
            monitors = list(self._monitors)
        healthy, reasons = self.health()
        return {
            "healthy": healthy,
            "reasons": reasons,
            "latency": {name: slo.to_dict() for name, slo in sorted(latency.items())},
            "monitors": [monitor.check() for monitor in monitors],
        }
