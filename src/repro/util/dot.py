"""Graphviz DOT export for topologies and logical graphs.

Release-quality tooling: ``dot -Tpng`` renders what a query returned.
Network nodes come out as boxes, compute nodes as ellipses; edges are
labelled with capacity (and, for logical graphs, median availability per
direction when it differs from capacity).
"""

from __future__ import annotations

from repro.util.units import format_bandwidth, format_time


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def topology_to_dot(topology) -> str:
    """DOT source for a physical :class:`~repro.net.Topology`."""
    lines = [f"graph {_quote(topology.name)} {{"]
    lines.append("  node [fontsize=10];")
    for node in topology.nodes:
        shape = "box" if node.is_network else "ellipse"
        extra = ""
        if node.internal_bandwidth != float("inf"):
            extra = f"\\n{format_bandwidth(node.internal_bandwidth)} xbar"
        lines.append(
            f"  {_quote(node.name)} [shape={shape}, label={_quote(node.name + extra)}];"
        )
    for link in topology.links:
        label = f"{format_bandwidth(link.capacity)} / {format_time(link.latency)}"
        lines.append(
            f"  {_quote(link.a)} -- {_quote(link.b)} [label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def remos_graph_to_dot(graph) -> str:
    """DOT source for a logical :class:`~repro.core.RemosGraph`.

    Queried nodes are drawn bold; collapsed edges note how many physical
    links they hide; per-direction availability is shown when it is below
    capacity (i.e. when there is measured traffic).
    """
    lines = ["graph remos {", "  node [fontsize=10];"]
    queried = set(graph.query_nodes)
    for node in graph.nodes:
        shape = "ellipse" if node.is_compute else "box"
        style = ', style=bold' if node.name in queried else ""
        lines.append(f"  {_quote(node.name)} [shape={shape}{style}];")
    for edge in graph.edges:
        parts = [format_bandwidth(edge.capacity)]
        if len(edge.physical_links) > 1:
            parts.append(f"({len(edge.physical_links)} links)")
        for endpoint in (edge.a, edge.b):
            try:
                available = edge.available_from(endpoint).median
            except Exception:
                continue
            if available < edge.capacity * 0.999:
                parts.append(f"{endpoint}->: {format_bandwidth(available)}")
        label = "\\n".join(parts)
        lines.append(
            f"  {_quote(edge.a)} -- {_quote(edge.b)} [label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)
