"""Fixed-capacity ring buffer used by the collectors' metric stores.

Collectors poll agents for years of simulated time; keeping every sample
would grow without bound, so time series are held in bounded ring buffers.
The buffer stores arbitrary items (the metric store puts ``(time, value)``
pairs in it) and evicts the oldest item once full.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Generic, TypeVar

from repro.util.errors import ConfigurationError

T = TypeVar("T")


class RingBuffer(Generic[T]):
    """A bounded FIFO with O(1) append and oldest-first iteration."""

    __slots__ = ("_items", "_capacity", "_start", "_count")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigurationError(f"ring buffer capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._items: list[T | None] = [None] * self._capacity
        self._start = 0
        self._count = 0

    @property
    def capacity(self) -> int:
        """Maximum number of items retained."""
        return self._capacity

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    @property
    def full(self) -> bool:
        """True once appends start evicting the oldest item."""
        return self._count == self._capacity

    def append(self, item: T) -> None:
        """Add *item*, evicting the oldest item if the buffer is full."""
        end = (self._start + self._count) % self._capacity
        self._items[end] = item
        if self._count == self._capacity:
            self._start = (self._start + 1) % self._capacity
        else:
            self._count += 1

    def extend(self, items) -> None:
        """Append every element of *items* in order."""
        for item in items:
            self.append(item)

    def __getitem__(self, index: int) -> T:
        """Item at *index*, where 0 is the oldest retained item."""
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(f"ring buffer index {index} out of range (len={self._count})")
        return self._items[(self._start + index) % self._capacity]  # type: ignore[return-value]

    def __iter__(self) -> Iterator[T]:
        for i in range(self._count):
            yield self._items[(self._start + i) % self._capacity]  # type: ignore[misc]

    def newest(self) -> T:
        """Most recently appended item."""
        if self._count == 0:
            raise IndexError("ring buffer is empty")
        return self[self._count - 1]

    def oldest(self) -> T:
        """Oldest retained item."""
        if self._count == 0:
            raise IndexError("ring buffer is empty")
        return self[0]

    def copy(self) -> "RingBuffer[T]":
        """A shallow copy (same items, independent storage).

        Snapshot publication clones the bounded series backing a frozen
        view with this; O(capacity) slot copy, no per-item work.
        """
        clone: RingBuffer[T] = RingBuffer(self._capacity)
        clone._items = list(self._items)
        clone._start = self._start
        clone._count = self._count
        return clone

    def clear(self) -> None:
        """Drop every item."""
        self._items = [None] * self._capacity
        self._start = 0
        self._count = 0

    def to_list(self) -> list[T]:
        """Items oldest-first as a plain list."""
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingBuffer(len={self._count}, capacity={self._capacity})"
