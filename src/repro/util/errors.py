"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Invalid configuration value (bad unit string, negative capacity, ...)."""


class TopologyError(ReproError):
    """Structural problem with a network topology (unknown node, no route, ...)."""


class SimulationError(ReproError):
    """Runtime failure inside the discrete-event simulation kernel."""


class QueryError(ReproError):
    """A Remos query could not be answered (unknown host, bad timeframe, ...)."""


class CollectorError(ReproError):
    """A collector failed to gather data (agent unreachable, no samples, ...)."""


class RuntimeModelError(ReproError):
    """Misuse of the Fx-like parallel runtime model (bad rank, no mapping, ...)."""
