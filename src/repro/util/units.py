"""Unit handling for bandwidth, byte counts and time.

Conventions used throughout the package:

* bandwidth is stored in **bits per second** (float),
* data amounts are stored in **bytes** (float; fractional bytes are allowed
  in fluid-flow arithmetic),
* time is stored in **seconds** (float).

Network units are decimal (1 Mbps = 1e6 bit/s), matching how link speeds are
specified by both the paper and SNMP's ``ifSpeed``.
"""

from __future__ import annotations

import re

from repro.util.errors import ConfigurationError

KILO = 1_000.0
MEGA = 1_000_000.0
GIGA = 1_000_000_000.0

_BANDWIDTH_SUFFIXES = {
    "bps": 1.0,
    "kbps": KILO,
    "mbps": MEGA,
    "gbps": GIGA,
    "b/s": 1.0,
    "kb/s": KILO,
    "mb/s": MEGA,
    "gb/s": GIGA,
}

_BYTE_SUFFIXES = {
    "b": 1.0,
    "kb": KILO,
    "mb": MEGA,
    "gb": GIGA,
    "kib": 1024.0,
    "mib": 1024.0**2,
    "gib": 1024.0**3,
}

_TIME_SUFFIXES = {
    "s": 1.0,
    "sec": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "ns": 1e-9,
    "min": 60.0,
    "h": 3600.0,
}

_NUMBER_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*([a-zA-Z/]*)\s*$")


def kbps(value: float) -> float:
    """Return *value* kilobits/second expressed in bits/second."""
    return value * KILO


def mbps(value: float) -> float:
    """Return *value* megabits/second expressed in bits/second."""
    return value * MEGA


def gbps(value: float) -> float:
    """Return *value* gigabits/second expressed in bits/second."""
    return value * GIGA


def bits_to_bytes(bits: float) -> float:
    """Convert a bit count (or bit rate) to bytes (or bytes/second)."""
    return bits / 8.0


def bytes_to_bits(nbytes: float) -> float:
    """Convert a byte count (or byte rate) to bits (or bits/second)."""
    return nbytes * 8.0


def _parse(text: str, suffixes: dict[str, float], default: float, what: str) -> float:
    match = _NUMBER_RE.match(text)
    if match is None:
        raise ConfigurationError(f"cannot parse {what} from {text!r}")
    value = float(match.group(1))
    suffix = match.group(2).lower()
    if not suffix:
        return value * default
    try:
        return value * suffixes[suffix]
    except KeyError:
        raise ConfigurationError(
            f"unknown {what} unit {match.group(2)!r} in {text!r}; "
            f"expected one of {sorted(suffixes)}"
        ) from None


def parse_bandwidth(value: float | str) -> float:
    """Parse a bandwidth into bits/second.

    Accepts a bare number (already bits/second) or a string such as
    ``"100Mbps"``, ``"1.5 Gb/s"`` or ``"56kbps"``.
    """
    if isinstance(value, (int, float)):
        result = float(value)
    else:
        result = _parse(value, _BANDWIDTH_SUFFIXES, 1.0, "bandwidth")
    if result < 0:
        raise ConfigurationError(f"bandwidth must be non-negative, got {value!r}")
    return result


def parse_bytes(value: float | str) -> float:
    """Parse a data amount into bytes (``"4MB"``, ``"512KiB"``, or a number)."""
    if isinstance(value, (int, float)):
        result = float(value)
    else:
        result = _parse(value, _BYTE_SUFFIXES, 1.0, "byte count")
    if result < 0:
        raise ConfigurationError(f"byte count must be non-negative, got {value!r}")
    return result


def parse_time(value: float | str) -> float:
    """Parse a duration into seconds (``"10ms"``, ``"2min"``, or a number)."""
    if isinstance(value, (int, float)):
        result = float(value)
    else:
        result = _parse(value, _TIME_SUFFIXES, 1.0, "time")
    if result < 0:
        raise ConfigurationError(f"time must be non-negative, got {value!r}")
    return result


def _format(value: float, steps: list[tuple[float, str]], unit: str) -> str:
    for factor, suffix in steps:
        if abs(value) >= factor:
            return f"{value / factor:.3g}{suffix}"
    return f"{value:.3g}{unit}"


def format_bandwidth(bits_per_second: float) -> str:
    """Human-readable bandwidth, e.g. ``format_bandwidth(1e8) == '100Mbps'``."""
    return _format(
        bits_per_second,
        [(GIGA, "Gbps"), (MEGA, "Mbps"), (KILO, "kbps")],
        "bps",
    )


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count, e.g. ``format_bytes(2e6) == '2MB'``."""
    return _format(nbytes, [(GIGA, "GB"), (MEGA, "MB"), (KILO, "kB")], "B")


def format_time(seconds: float) -> str:
    """Human-readable duration, e.g. ``format_time(0.0021) == '2.1ms'``."""
    if seconds == 0:
        return "0s"
    if abs(seconds) >= 1.0:
        return f"{seconds:.3g}s"
    if abs(seconds) >= 1e-3:
        return f"{seconds * 1e3:.3g}ms"
    if abs(seconds) >= 1e-6:
        return f"{seconds * 1e6:.3g}us"
    return f"{seconds * 1e9:.3g}ns"
