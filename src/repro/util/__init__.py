"""Shared utilities: units, errors, ring buffers, deterministic RNG.

These helpers are deliberately dependency-light; every other subpackage may
import from here, and this package imports nothing else from :mod:`repro`.
"""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    SimulationError,
    TopologyError,
    QueryError,
)
from repro.util.units import (
    KILO,
    MEGA,
    GIGA,
    bits_to_bytes,
    bytes_to_bits,
    parse_bandwidth,
    parse_bytes,
    parse_time,
    format_bandwidth,
    format_bytes,
    format_time,
    mbps,
    gbps,
    kbps,
)
from repro.util.ringbuf import RingBuffer
from repro.util.rng import make_rng, spawn_rng

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "TopologyError",
    "QueryError",
    "KILO",
    "MEGA",
    "GIGA",
    "bits_to_bytes",
    "bytes_to_bits",
    "parse_bandwidth",
    "parse_bytes",
    "parse_time",
    "format_bandwidth",
    "format_bytes",
    "format_time",
    "mbps",
    "gbps",
    "kbps",
    "RingBuffer",
    "make_rng",
    "spawn_rng",
]
