"""Deterministic random-number helpers.

Every stochastic component (traffic sources, measurement jitter) takes an
explicit :class:`numpy.random.Generator`.  These helpers centralise creation
so experiments are reproducible bit-for-bit from a single integer seed.
"""

from __future__ import annotations

try:  # numpy is the optional ``repro[fast]`` accelerator
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy smoke test
    np = None


def _require_numpy() -> None:
    if np is None:
        from repro.util.errors import ConfigurationError

        raise ConfigurationError(
            "deterministic RNG streams require numpy; install the "
            "'repro[fast]' extra"
        )


def make_rng(seed: "int | np.random.Generator | None" = 0) -> "np.random.Generator":
    """Return a Generator for *seed*.

    Passing an existing Generator returns it unchanged, so APIs can accept
    either a seed or a generator.  ``None`` gives OS entropy (only sensible
    in interactive exploration, never in tests or benchmarks).
    """
    _require_numpy()
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: "np.random.Generator", count: int) -> "list[np.random.Generator]":
    """Derive *count* independent child generators from *rng*.

    Used to give each traffic source its own stream so adding a source does
    not perturb the draws seen by existing ones.
    """
    _require_numpy()
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
