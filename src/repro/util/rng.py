"""Deterministic random-number helpers.

Every stochastic component (traffic sources, measurement jitter) takes an
explicit :class:`numpy.random.Generator`.  These helpers centralise creation
so experiments are reproducible bit-for-bit from a single integer seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a Generator for *seed*.

    Passing an existing Generator returns it unchanged, so APIs can accept
    either a seed or a generator.  ``None`` gives OS entropy (only sensible
    in interactive exploration, never in tests or benchmarks).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive *count* independent child generators from *rng*.

    Used to give each traffic source its own stream so adding a source does
    not perturb the draws seen by existing ones.
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
