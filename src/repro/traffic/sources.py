"""Traffic source processes for the fluid network.

Every source starts its own process on construction and exposes ``stop()``
for early termination plus a ``done`` event (the process handle).  All
randomness comes from an injected generator (see :mod:`repro.util.rng`).
"""

from __future__ import annotations

import numpy as np

from repro.netsim import FluidNetwork
from repro.sim import Interrupt, Process
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng
from repro.util.units import parse_bandwidth, parse_bytes, parse_time


class _Source:
    """Common scaffolding: lifecycle process plus stop()."""

    def __init__(self, net: FluidNetwork, label: str):
        self.net = net
        self.label = label
        self.done: Process = net.env.process(self._run(), name=label)

    def _run(self):
        raise NotImplementedError  # pragma: no cover

    def stop(self) -> None:
        """Terminate the source early (idempotent once finished)."""
        if self.done.is_alive:
            self.done.interrupt("stop")


class CBRSource(_Source):
    """Constant-bit-rate flow between two hosts for a fixed interval."""

    def __init__(
        self,
        net: FluidNetwork,
        src: str,
        dst: str,
        rate: float | str,
        start: float | str = 0.0,
        duration: float | str = float("inf"),
        weight: float = 1.0,
        label: str | None = None,
    ):
        self.src = src
        self.dst = dst
        self.rate = parse_bandwidth(rate)
        self.weight = weight
        self.start = parse_time(start)
        self.duration = (
            float("inf") if duration == float("inf") else parse_time(duration)
        )
        super().__init__(net, label or f"cbr:{src}->{dst}")

    def _run(self):
        env = self.net.env
        flow = None
        try:
            if self.start > 0:
                yield env.timeout(self.start)
            flow = self.net.open_flow(
                self.src,
                self.dst,
                demand=self.rate,
                weight=self.weight,
                label=self.label,
            )
            if self.duration == float("inf"):
                yield env.event()  # run forever (until interrupted)
            else:
                yield env.timeout(self.duration)
        except Interrupt:
            pass
        finally:
            if flow is not None:
                self.net.close_flow(flow)


class GreedySource(_Source):
    """A flow that absorbs all bandwidth max-min fairness grants it."""

    def __init__(
        self,
        net: FluidNetwork,
        src: str,
        dst: str,
        start: float | str = 0.0,
        duration: float | str = float("inf"),
        weight: float = 1.0,
        label: str | None = None,
    ):
        self.src = src
        self.dst = dst
        self.start = parse_time(start)
        self.duration = (
            float("inf") if duration == float("inf") else parse_time(duration)
        )
        self.weight = weight
        super().__init__(net, label or f"greedy:{src}->{dst}")

    def _run(self):
        env = self.net.env
        flow = None
        try:
            if self.start > 0:
                yield env.timeout(self.start)
            flow = self.net.open_flow(
                self.src,
                self.dst,
                demand=float("inf"),
                weight=self.weight,
                label=self.label,
            )
            if self.duration == float("inf"):
                yield env.event()
            else:
                yield env.timeout(self.duration)
        except Interrupt:
            pass
        finally:
            if flow is not None:
                self.net.close_flow(flow)


class OnOffSource(_Source):
    """Bursty source: exponential ON periods at *rate*, exponential OFF gaps.

    Produces exactly the "periodic availability of a high burst bandwidth"
    the paper contrasts with a steady average (§4.4) — the resulting
    available-bandwidth samples are bimodal, not normal.
    """

    def __init__(
        self,
        net: FluidNetwork,
        src: str,
        dst: str,
        rate: float | str,
        mean_on: float | str = 1.0,
        mean_off: float | str = 1.0,
        rng: int | np.random.Generator | None = 0,
        start: float | str = 0.0,
        duration: float | str = float("inf"),
        weight: float = 1.0,
        label: str | None = None,
    ):
        self.src = src
        self.dst = dst
        self.rate = parse_bandwidth(rate)
        self.weight = weight
        self.mean_on = parse_time(mean_on)
        self.mean_off = parse_time(mean_off)
        if self.mean_on <= 0 or self.mean_off <= 0:
            raise ConfigurationError("mean_on and mean_off must be positive")
        self.rng = make_rng(rng)
        self.start = parse_time(start)
        self.duration = (
            float("inf") if duration == float("inf") else parse_time(duration)
        )
        super().__init__(net, label or f"onoff:{src}->{dst}")

    def _run(self):
        env = self.net.env
        flow = None
        stop_at = None
        try:
            if self.start > 0:
                yield env.timeout(self.start)
            stop_at = env.now + self.duration
            flow = self.net.open_flow(
                self.src, self.dst, demand=0.0, weight=self.weight, label=self.label
            )
            while env.now < stop_at:
                on_time = self.rng.exponential(self.mean_on)
                self.net.set_demand(flow, self.rate)
                yield env.timeout(min(on_time, max(0.0, stop_at - env.now)))
                if env.now >= stop_at:
                    break
                off_time = self.rng.exponential(self.mean_off)
                self.net.set_demand(flow, 0.0)
                yield env.timeout(min(off_time, max(0.0, stop_at - env.now)))
        except Interrupt:
            pass
        finally:
            if flow is not None:
                self.net.close_flow(flow)


class PoissonTransferSource(_Source):
    """Fires bulk transfers of exponential size at Poisson arrival times."""

    def __init__(
        self,
        net: FluidNetwork,
        src: str,
        dst: str,
        mean_interarrival: float | str = 1.0,
        mean_size: float | str = "1MB",
        rng: int | np.random.Generator | None = 0,
        start: float | str = 0.0,
        duration: float | str = float("inf"),
        label: str | None = None,
    ):
        self.src = src
        self.dst = dst
        self.mean_interarrival = parse_time(mean_interarrival)
        self.mean_size = parse_bytes(mean_size)
        if self.mean_interarrival <= 0 or self.mean_size <= 0:
            raise ConfigurationError("mean interarrival and size must be positive")
        self.rng = make_rng(rng)
        self.start = parse_time(start)
        self.duration = (
            float("inf") if duration == float("inf") else parse_time(duration)
        )
        self.transfers_started = 0
        super().__init__(net, label or f"poisson:{src}->{dst}")

    def _run(self):
        env = self.net.env
        try:
            if self.start > 0:
                yield env.timeout(self.start)
            stop_at = env.now + self.duration
            while env.now < stop_at:
                yield env.timeout(self.rng.exponential(self.mean_interarrival))
                if env.now >= stop_at:
                    break
                size = max(1.0, self.rng.exponential(self.mean_size))
                self.net.transfer(
                    self.src,
                    self.dst,
                    size,
                    label=f"{self.label}#{self.transfers_started}",
                )
                self.transfers_started += 1
        except Interrupt:
            pass
