"""Named competing-traffic scenarios.

The paper's Table 2 and Table 3 experiments inject "a synthetic program
that generates communication traffic between nodes m-6 and m-8".  A
:class:`TrafficScenario` bundles several :class:`TrafficSpec` entries so an
experiment can start/stop a whole pattern with one call and describe it in
its results table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netsim import FluidNetwork
from repro.traffic.sources import CBRSource, GreedySource, OnOffSource, _Source
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng, spawn_rng


@dataclass(frozen=True)
class TrafficSpec:
    """One competing traffic stream.

    ``kind`` is ``"cbr"``, ``"greedy"`` or ``"onoff"``; ``rate`` applies to
    cbr/onoff; ``mean_on``/``mean_off`` to onoff only.  ``weight`` models
    source aggressiveness: the paper notes that "how much bandwidth a flow
    gets depends on the behavior of the source, i.e. how aggressive is the
    source and how quickly it backs off" — a UDP-style blaster that never
    backs off holds its rate against adaptive application flows, which a
    weight much greater than 1 reproduces under weighted max-min sharing.
    """

    src: str
    dst: str
    kind: str = "cbr"
    rate: float | str = "90Mbps"
    mean_on: float | str = 2.0
    mean_off: float | str = 2.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("cbr", "greedy", "onoff"):
            raise ConfigurationError(f"unknown traffic kind {self.kind!r}")
        if self.weight <= 0:
            raise ConfigurationError("traffic weight must be positive")


@dataclass
class TrafficScenario:
    """A named set of competing traffic streams.

    Example::

        scenario = TrafficScenario("m6-to-m8", [TrafficSpec("m-6", "m-8")])
        sources = scenario.start(net, rng=0)
        ...
        scenario.stop()
    """

    name: str
    specs: list[TrafficSpec] = field(default_factory=list)
    _sources: list[_Source] = field(default_factory=list, repr=False)

    def start(
        self, net: FluidNetwork, rng: int | np.random.Generator | None = 0
    ) -> list[_Source]:
        """Launch every stream on *net*; returns the live sources."""
        if self._sources:
            raise ConfigurationError(f"scenario {self.name!r} already started")
        streams = spawn_rng(make_rng(rng), max(1, len(self.specs)))
        for spec, stream in zip(self.specs, streams):
            label = f"{self.name}:{spec.src}->{spec.dst}"
            if spec.kind == "cbr":
                source: _Source = CBRSource(
                    net, spec.src, spec.dst, spec.rate, weight=spec.weight, label=label
                )
            elif spec.kind == "greedy":
                source = GreedySource(
                    net, spec.src, spec.dst, weight=spec.weight, label=label
                )
            else:
                source = OnOffSource(
                    net,
                    spec.src,
                    spec.dst,
                    spec.rate,
                    mean_on=spec.mean_on,
                    mean_off=spec.mean_off,
                    rng=stream,
                    weight=spec.weight,
                    label=label,
                )
            self._sources.append(source)
        return list(self._sources)

    def stop(self) -> None:
        """Terminate every stream (idempotent)."""
        for source in self._sources:
            source.stop()
        self._sources.clear()

    @property
    def is_running(self) -> bool:
        """True between start() and stop()."""
        return bool(self._sources)

    def describe(self) -> str:
        """Human-readable one-liner for results tables."""
        if not self.specs:
            return f"{self.name}: (no traffic)"
        parts = ", ".join(f"{s.src}->{s.dst} ({s.kind})" for s in self.specs)
        return f"{self.name}: {parts}"


def no_traffic() -> TrafficScenario:
    """The empty scenario (baseline columns in Tables 2 and 3)."""
    return TrafficScenario("no-traffic", [])
