"""Traffic sources and competing-load scenarios.

Sources are DES processes that open/close/modulate flows on a
:class:`~repro.netsim.FluidNetwork`:

* :class:`CBRSource` — constant bit-rate (the paper's fixed/audio-like flow);
* :class:`GreedySource` — takes every bit max-min grants it (an aggressive
  bulk application, like the paper's synthetic traffic program);
* :class:`OnOffSource` — exponentially-distributed on/off bursts (produces
  the bimodal bandwidth distributions that motivate quartile reporting, §4.4);
* :class:`PoissonTransferSource` — random bulk transfers at Poisson arrivals.

:mod:`repro.traffic.generator` packages named multi-source scenarios used by
the Table 2/3 experiments.
"""

from repro.traffic.sources import (
    CBRSource,
    GreedySource,
    OnOffSource,
    PoissonTransferSource,
)
from repro.traffic.generator import TrafficScenario, TrafficSpec
from repro.traffic.trace import TraceSource, record_trace

__all__ = [
    "CBRSource",
    "GreedySource",
    "OnOffSource",
    "PoissonTransferSource",
    "TrafficScenario",
    "TrafficSpec",
    "TraceSource",
    "record_trace",
]
