"""Trace-driven traffic replay.

Remos's evaluation used live testbed traffic; operators often have
historical utilization traces instead.  A :class:`TraceSource` replays a
``[(time, bits_per_second), ...]`` schedule onto a flow, so recorded (or
hand-crafted) load shapes can drive experiments reproducibly.  A
convenience recorder turns a live simulation's utilization into a trace
for later replay.
"""

from __future__ import annotations

from repro.netsim import FluidNetwork
from repro.sim import Interrupt
from repro.traffic.sources import _Source
from repro.util.errors import ConfigurationError


class TraceSource(_Source):
    """Replays a rate schedule between two hosts.

    ``trace`` is a list of (time offset seconds, rate bits/s) pairs with
    strictly increasing offsets; each rate holds from its offset until the
    next entry.  After the last entry the final rate holds until
    :meth:`stop` — append a ``(t, 0.0)`` entry to end the load — unless
    ``loop=True``, which repeats the schedule forever.
    """

    def __init__(
        self,
        net: FluidNetwork,
        src: str,
        dst: str,
        trace: list[tuple[float, float]],
        loop: bool = False,
        weight: float = 1.0,
        label: str | None = None,
    ):
        if not trace:
            raise ConfigurationError("trace must have at least one entry")
        offsets = [t for t, _ in trace]
        if offsets[0] < 0 or any(b <= a for a, b in zip(offsets, offsets[1:])):
            raise ConfigurationError("trace offsets must be non-negative and increasing")
        if any(rate < 0 for _, rate in trace):
            raise ConfigurationError("trace rates must be non-negative")
        if loop and offsets[0] != 0.0:
            raise ConfigurationError("looping traces must start at offset 0")
        self.src = src
        self.dst = dst
        self.trace = [(float(t), float(r)) for t, r in trace]
        self.loop = loop
        self.weight = weight
        self.replays = 0
        super().__init__(net, label or f"trace:{src}->{dst}")

    def _run(self):
        env = self.net.env
        flow = None
        try:
            if self.trace[0][0] > 0:
                yield env.timeout(self.trace[0][0])
            flow = self.net.open_flow(
                self.src, self.dst, demand=0.0, weight=self.weight, label=self.label
            )
            while True:
                cycle_start = env.now - self.trace[0][0]
                for index, (offset, rate) in enumerate(self.trace):
                    target = cycle_start + offset
                    if target > env.now:
                        yield env.timeout(target - env.now)
                    self.net.set_demand(flow, rate)
                self.replays += 1
                if not self.loop:
                    yield env.event()  # hold the final rate until stop()
                # Hold the final rate until the schedule wraps.
                period = self.trace[-1][0] - self.trace[0][0]
                if period <= 0:
                    break
                yield env.timeout(cycle_start + period + self.trace[0][0] - env.now)
        except Interrupt:
            pass
        finally:
            if flow is not None:
                self.net.close_flow(flow)


def record_trace(
    net: FluidNetwork,
    link_name: str,
    from_node: str,
    duration: float,
    sample_interval: float = 1.0,
) -> list[tuple[float, float]]:
    """Sample a link direction's load into a replayable trace.

    Advances the simulation by *duration* while sampling; returns
    ``[(offset, bits_per_second), ...]`` suitable for :class:`TraceSource`.
    """
    if duration <= 0 or sample_interval <= 0:
        raise ConfigurationError("duration and sample_interval must be positive")
    env = net.env
    start = env.now
    trace: list[tuple[float, float]] = []
    elapsed = 0.0
    while elapsed < duration:
        trace.append((elapsed, net.link_load(link_name, from_node)))
        step = min(sample_interval, duration - elapsed)
        env.run(until=env.now + step)
        elapsed = env.now - start
    return trace
