"""MIB-II object identifiers used by the simulated agents.

A pragmatic subset of RFC 1213's MIB-II: the system group, the interfaces
table columns the Collector needs (speed, octet counters, oper status), and
— in lieu of walking ipRouteTable/ipNetToMediaTable the way real topology
discovery does — a neighbour column reporting the node name on the far end
of each interface plus the link name.  The neighbour column lives under the
ifXTable ``ifAlias`` position, where real deployments also stash peer
information.
"""

from repro.snmp.oid import OID

MIB2 = OID("1.3.6.1.2.1")

# -- system group -------------------------------------------------------------
SYS_DESCR = MIB2.extend(1, 1, 0)
SYS_NAME = MIB2.extend(1, 5, 0)

# -- interfaces group ----------------------------------------------------------
IF_NUMBER = MIB2.extend(2, 1, 0)
_IF_ENTRY = MIB2.extend(2, 2, 1)

# Column bases; append the 1-based ifIndex to address a row.
IF_INDEX = _IF_ENTRY.extend(1)
IF_DESCR = _IF_ENTRY.extend(2)
IF_SPEED = _IF_ENTRY.extend(5)
IF_OPER_STATUS = _IF_ENTRY.extend(8)
IF_IN_OCTETS = _IF_ENTRY.extend(10)
IF_OUT_OCTETS = _IF_ENTRY.extend(16)

# ifXTable ifAlias — repurposed to expose the neighbour "<node>|<link>" for
# topology discovery.
IF_NEIGHBOR = MIB2.extend(31, 1, 1, 1, 18)

# Enterprise OID exposing the node's internal (crossbar) forwarding
# bandwidth in bits/second; 0 means unconstrained.  The paper stresses that
# "it is just as important that the nodes include performance information"
# (§4.3, Fig. 1) — real deployments would get this from vendor MIBs.
NODE_INTERNAL_BW = OID("1.3.6.1.4.1.99999.1.1.0")

# Enterprise OID exposing cumulative CPU-busy centiseconds (a counter, so
# collectors derive utilization from deltas exactly like octet counters).
# Only compute nodes implement it.
HOST_BUSY_CS = OID("1.3.6.1.4.1.99999.1.2.0")

# Enterprise OIDs for host resources (the paper's "simple interface to
# computation and memory resources"): sustained flop rate and physical
# memory.  Real deployments would use the Host Resources MIB (RFC 2790).
HOST_SPEED_FLOPS = OID("1.3.6.1.4.1.99999.1.3.0")
HOST_MEMORY_BYTES = OID("1.3.6.1.4.1.99999.1.4.0")

# ifOperStatus values (RFC 1213).
STATUS_UP = 1
STATUS_DOWN = 2

# 32-bit counter wrap, as in real SNMPv1/v2c octet counters.  The collectors
# must handle wraps; at 100 Mbps a counter wraps every ~5.7 minutes.
COUNTER32_MAX = 2**32


def column_index(oid: OID, column: OID) -> int:
    """Extract the ifIndex from a row OID under *column*."""
    suffix = oid.strip_prefix(column)
    if len(suffix) != 1:
        raise ValueError(f"{oid} is not a row of column {column}")
    return suffix[0]
