"""Object identifiers: dotted integer paths with lexicographic ordering.

GETNEXT semantics depend on the total order over OIDs; this class stores an
OID as a tuple of ints and derives ordering from tuple comparison, which is
exactly SNMP's lexicographic rule.
"""

from __future__ import annotations

from functools import total_ordering

from repro.util.errors import ConfigurationError


@total_ordering
class OID:
    """An immutable SNMP object identifier."""

    __slots__ = ("parts",)

    def __init__(self, value: "str | tuple[int, ...] | list[int] | OID"):
        if isinstance(value, OID):
            parts: tuple[int, ...] = value.parts
        elif isinstance(value, str):
            text = value.strip().lstrip(".")
            if not text:
                raise ConfigurationError("empty OID string")
            try:
                parts = tuple(int(piece) for piece in text.split("."))
            except ValueError:
                raise ConfigurationError(f"invalid OID string {value!r}") from None
        else:
            parts = tuple(int(piece) for piece in value)
        if not parts or any(piece < 0 for piece in parts):
            raise ConfigurationError(f"invalid OID components {parts!r}")
        object.__setattr__(self, "parts", parts)

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("OID is immutable")

    def extend(self, *suffix: int) -> "OID":
        """A child OID with *suffix* appended."""
        return OID(self.parts + tuple(int(piece) for piece in suffix))

    def startswith(self, prefix: "OID") -> bool:
        """True if *prefix* is an ancestor of (or equal to) this OID."""
        return self.parts[: len(prefix.parts)] == prefix.parts

    def strip_prefix(self, prefix: "OID") -> tuple[int, ...]:
        """Components after *prefix* (raises if not under it)."""
        if not self.startswith(prefix):
            raise ConfigurationError(f"{self} is not under {prefix}")
        return self.parts[len(prefix.parts):]

    def __eq__(self, other) -> bool:
        return isinstance(other, OID) and self.parts == other.parts

    def __lt__(self, other: "OID") -> bool:
        return self.parts < other.parts

    def __hash__(self) -> int:
        return hash(self.parts)

    def __str__(self) -> str:
        return ".".join(str(piece) for piece in self.parts)

    def __repr__(self) -> str:
        return f"OID({str(self)!r})"
