"""SNMP client: issues requests that consume simulated time.

Queries are not free — the paper stresses that Remos overhead is "directly
related to the depth and frequency of its requests".  The client charges a
per-request round-trip (network RTT to the agent plus agent processing) so
collector polling frequency shows up as measurable overhead in the
ablation benchmarks.

Methods are generators: call them from a process as
``value = yield from client.get(node, oid)``.
"""

from __future__ import annotations

from typing import Any

from repro.netsim import FluidNetwork
from repro.snmp.agent import EndOfMib, SNMPAgent
from repro.snmp.oid import OID
from repro.util.errors import ConfigurationError


class SNMPClient:
    """Talks to the agents of a simulated network from a given host."""

    def __init__(
        self,
        net: FluidNetwork,
        agents: dict[str, SNMPAgent],
        client_host: str | None = None,
        processing_delay: float = 0.5e-3,
    ):
        self.net = net
        self.agents = agents
        self.client_host = client_host
        self.processing_delay = processing_delay
        self.requests_sent = 0
        self.time_spent = 0.0

    def _agent(self, node_name: str) -> SNMPAgent:
        try:
            return self.agents[node_name]
        except KeyError:
            raise ConfigurationError(f"no SNMP agent registered for {node_name!r}") from None

    def _request_cost(self, node_name: str) -> float:
        """Round-trip time for one request: 2x path latency + processing."""
        cost = self.processing_delay
        if self.client_host is not None and self.client_host != node_name:
            route = self.net.routing.route(self.client_host, node_name)
            cost += 2.0 * route.latency
        return cost

    def _charge(self, node_name: str):
        cost = self._request_cost(node_name)
        self.requests_sent += 1
        self.time_spent += cost
        return self.net.env.timeout(cost)

    def get(self, node_name: str, oid: OID):
        """GET one value (generator; use with ``yield from``)."""
        agent = self._agent(node_name)
        yield self._charge(node_name)
        return agent.get(oid)

    def getnext(self, node_name: str, oid: OID):
        """GETNEXT (generator)."""
        agent = self._agent(node_name)
        yield self._charge(node_name)
        return agent.getnext(oid)

    def walk(self, node_name: str, prefix: OID):
        """Walk a subtree via repeated GETNEXT (generator).

        Each row costs one round trip, like a real (non-bulk) walk.
        """
        agent = self._agent(node_name)
        results: list[tuple[OID, Any]] = []
        cursor = prefix
        while True:
            yield self._charge(node_name)
            try:
                cursor, value = agent.getnext(cursor)
            except EndOfMib:
                break
            if not cursor.startswith(prefix):
                break
            results.append((cursor, value))
        return results
