"""Per-node SNMP agents over the fluid simulation.

An agent lazily computes values at query time, so ``ifInOctets`` /
``ifOutOctets`` reflect the byte-exact integrals the fluid network keeps.
Counters wrap at 2^32 like real Counter32 objects — collectors must handle
the wrap (and the SNMP collector's tests verify they do).
"""

from __future__ import annotations

from typing import Any

from repro.netsim import FluidNetwork
from repro.snmp import mib
from repro.snmp.oid import OID
from repro.util.errors import ReproError


class SNMPError(ReproError):
    """Agent-level failure (unreachable agent, malformed request)."""


class NoSuchObject(SNMPError):
    """GET for an OID the agent does not implement."""


class EndOfMib(SNMPError):
    """GETNEXT walked past the last implemented OID."""


class SNMPAgent:
    """MIB-II-ish agent for one node of the simulated network.

    Interfaces are the node's attached links in attachment order, with
    1-based ``ifIndex``; octet counters are read live from the fluid
    network.  Set ``reachable = False`` to simulate an unmanaged device
    (a commercial ISP's router, say) — every request then raises
    :class:`SNMPError`, which is what pushes the Remos implementation to
    its benchmark collector (§5).
    """

    def __init__(self, node_name: str, net: FluidNetwork, reachable: bool = True):
        self.node_name = node_name
        self.net = net
        self.reachable = reachable
        self.requests_served = 0
        topology = net.topology
        self.node = topology.node(node_name)
        self._links = topology.links_at(node_name)

    # -- value computation -----------------------------------------------------

    def _interface_link(self, if_index: int):
        if not 1 <= if_index <= len(self._links):
            raise NoSuchObject(f"{self.node_name}: no interface {if_index}")
        return self._links[if_index - 1]

    def _value(self, oid: OID) -> Any:
        if oid == mib.SYS_DESCR:
            kind = "router" if self.node.is_network else "host"
            return f"repro simulated {kind} {self.node_name}"
        if oid == mib.SYS_NAME:
            return self.node_name
        if oid == mib.IF_NUMBER:
            return len(self._links)
        if oid == mib.NODE_INTERNAL_BW:
            bandwidth = self.node.internal_bandwidth
            return 0 if bandwidth == float("inf") else int(bandwidth)
        if oid == mib.HOST_BUSY_CS and self.node.is_compute:
            return int(self.net.host_activity.busy_seconds(self.node_name) * 100.0)
        if oid == mib.HOST_SPEED_FLOPS and self.node.is_compute:
            return int(self.node.compute_speed)
        if oid == mib.HOST_MEMORY_BYTES and self.node.is_compute:
            return int(self.node.memory_bytes)

        for column in (
            mib.IF_INDEX,
            mib.IF_DESCR,
            mib.IF_SPEED,
            mib.IF_OPER_STATUS,
            mib.IF_IN_OCTETS,
            mib.IF_OUT_OCTETS,
            mib.IF_NEIGHBOR,
        ):
            if oid.startswith(column) and len(oid.parts) == len(column.parts) + 1:
                if_index = oid.parts[-1]
                link = self._interface_link(if_index)
                if column == mib.IF_INDEX:
                    return if_index
                if column == mib.IF_DESCR:
                    return f"{self.node_name}:{link.name}"
                if column == mib.IF_SPEED:
                    return int(link.capacity)
                if column == mib.IF_OPER_STATUS:
                    return mib.STATUS_UP
                if column == mib.IF_IN_OCTETS:
                    other = link.other(self.node_name)
                    octets = self.net.link_octets(link.name, other)
                    return int(octets) % mib.COUNTER32_MAX
                if column == mib.IF_OUT_OCTETS:
                    octets = self.net.link_octets(link.name, self.node_name)
                    return int(octets) % mib.COUNTER32_MAX
                if column == mib.IF_NEIGHBOR:
                    return f"{link.other(self.node_name)}|{link.name}"
        raise NoSuchObject(f"{self.node_name}: no object {oid}")

    def _all_oids(self) -> list[OID]:
        oids = [mib.SYS_DESCR, mib.SYS_NAME, mib.IF_NUMBER, mib.NODE_INTERNAL_BW]
        if self.node.is_compute:
            oids.extend([mib.HOST_BUSY_CS, mib.HOST_SPEED_FLOPS, mib.HOST_MEMORY_BYTES])
        for column in (
            mib.IF_INDEX,
            mib.IF_DESCR,
            mib.IF_SPEED,
            mib.IF_OPER_STATUS,
            mib.IF_IN_OCTETS,
            mib.IF_OUT_OCTETS,
            mib.IF_NEIGHBOR,
        ):
            for if_index in range(1, len(self._links) + 1):
                oids.append(column.extend(if_index))
        return sorted(oids)

    # -- protocol operations ------------------------------------------------------

    def _check_reachable(self) -> None:
        if not self.reachable:
            raise SNMPError(f"agent on {self.node_name} does not respond")

    def get(self, oid: OID) -> Any:
        """GET: the value at exactly *oid*."""
        self._check_reachable()
        self.requests_served += 1
        return self._value(oid)

    def getnext(self, oid: OID) -> tuple[OID, Any]:
        """GETNEXT: the first implemented OID strictly after *oid*."""
        self._check_reachable()
        self.requests_served += 1
        for candidate in self._all_oids():
            if candidate > oid:
                return candidate, self._value(candidate)
        raise EndOfMib(f"{self.node_name}: walked past end of MIB")

    def walk(self, prefix: OID) -> list[tuple[OID, Any]]:
        """All (oid, value) pairs under *prefix* via repeated GETNEXT."""
        self._check_reachable()
        results: list[tuple[OID, Any]] = []
        cursor = prefix
        while True:
            try:
                cursor, value = self.getnext(cursor)
            except EndOfMib:
                break
            if not cursor.startswith(prefix):
                break
            results.append((cursor, value))
        return results
