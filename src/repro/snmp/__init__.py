"""Simulated SNMP substrate.

The paper's primary Collector "uses SNMP to extract both static topology and
dynamic bandwidth information from the routers" (§5).  Real agents are
unavailable here, so each simulated node runs an :class:`SNMPAgent` exposing
a MIB-II-like view — system group, ifTable with ``ifSpeed`` and byte-exact
``ifInOctets``/``ifOutOctets`` integrated from the fluid simulation, and a
neighbour table for topology discovery.  An :class:`SNMPClient` issues
GET/GETNEXT/walk requests that consume simulated time (and can be directed
at "unresponsive" agents, exercising the benchmark-collector fallback).
"""

from repro.snmp.oid import OID
from repro.snmp import mib
from repro.snmp.agent import SNMPAgent, SNMPError, NoSuchObject
from repro.snmp.client import SNMPClient

__all__ = ["OID", "mib", "SNMPAgent", "SNMPClient", "SNMPError", "NoSuchObject"]
