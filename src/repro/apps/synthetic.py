"""A parameterised compute/communicate loop for ablations and tests."""

from __future__ import annotations

from repro.fx.program import CommPattern, FxProgram, ProgramContext
from repro.util.errors import ConfigurationError


class SyntheticApp(FxProgram):
    """Alternates a compute phase and one collective, *iterations* times.

    Useful for sweeping the compute/communication ratio in ablation
    benchmarks without the application-specific constants of FFT/Airshed.
    """

    def __init__(
        self,
        flops_per_rank: float = 1e8,
        comm_bytes: float = 1e6,
        pattern: str = "all_to_all",
        iterations: int = 10,
        compiled_for: int | None = None,
    ):
        if pattern not in ("all_to_all", "ring_exchange", "allreduce", "broadcast"):
            raise ConfigurationError(f"unknown pattern {pattern!r}")
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        self.flops_per_rank = flops_per_rank
        self.comm_bytes = comm_bytes
        self.pattern = pattern
        self.iterations = iterations
        self.compiled_for = compiled_for
        self.name = f"synthetic({pattern})"

    def iteration(self, ctx: ProgramContext, index: int):
        yield from ctx.compute(self.flops_per_rank)
        if self.pattern == "all_to_all":
            yield from ctx.comm.all_to_all(self.comm_bytes / max(1, ctx.size**2))
        elif self.pattern == "ring_exchange":
            yield from ctx.comm.ring_exchange(self.comm_bytes / max(1, ctx.size))
        elif self.pattern == "allreduce":
            yield from ctx.comm.allreduce(self.comm_bytes / max(1, ctx.size))
        else:
            yield from ctx.comm.broadcast(0, self.comm_bytes / max(1, ctx.size))

    def communication_pattern(self) -> list[CommPattern]:
        return [CommPattern(kind=self.pattern, bytes_per_iteration=self.comm_bytes)]
