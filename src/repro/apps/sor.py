"""Pipelined SOR with a tunable pipeline depth.

§6 of the paper cites Siegell & Steenkiste [21]: "an adaptation module
selects the optimal pipeline depth for a pipelined SOR application based
on network and CPU performance" — the canonical example of an adaptation
parameter *internal* to the application.

Model
-----
One SOR sweep over an N x N grid striped across P ranks.  A wavefront
dependency forces pipelining: each rank computes a chunk, ships the chunk
boundary to its successor, and only then may the successor proceed.  With
pipeline depth d (chunks per rank per sweep), one sweep is

    (d + P - 1) pipeline steps,
    each step = chunk compute (work/d per rank) + boundary shift (B/d bytes),

so deep pipelines amortise the (P-1)-step fill but pay d message latencies
— the classic throughput/latency trade-off.  :func:`optimal_depth` finds
the analytic minimiser from exactly the quantities a Remos query returns
(bandwidth, latency) plus the host speed, and
:class:`~repro.adapt.depth.DepthAdapter` wires it to live measurements.
"""

from __future__ import annotations

import math

from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.fx.program import CommPattern, FxProgram, ProgramContext
from repro.util.errors import ConfigurationError


class PipelinedSOR(FxProgram):
    """Pipelined successive over-relaxation on an n x n grid.

    ``depth`` is the adaptation parameter; change it between iterations
    via :attr:`depth` (iteration boundaries are the legal points).
    """

    #: flops per grid point per sweep (5-point stencil + relaxation).
    FLOPS_PER_POINT = 6.0
    #: bytes per boundary element (double precision).
    ELEMENT_BYTES = 8.0

    def __init__(
        self,
        n: int = 2048,
        sweeps: int = 10,
        depth: int = 1,
        calibration: Calibration = DEFAULT_CALIBRATION,
        compiled_for: int | None = None,
    ):
        if n < 2:
            raise ConfigurationError(f"grid size must be >= 2, got {n}")
        if sweeps < 1:
            raise ConfigurationError("sweeps must be >= 1")
        self.n = n
        self.iterations = sweeps
        self.depth = depth
        self.calibration = calibration
        self.compiled_for = compiled_for
        self.name = f"SOR({n})"

    @property
    def depth(self) -> int:
        """Current pipeline depth (chunks per rank per sweep)."""
        return self._depth

    @depth.setter
    def depth(self, value: int) -> None:
        if value < 1:
            raise ConfigurationError(f"pipeline depth must be >= 1, got {value}")
        self._depth = int(value)

    # -- cost pieces -----------------------------------------------------------

    def sweep_flops_per_rank(self, size: int) -> float:
        """Total flops one rank performs per sweep."""
        return self.FLOPS_PER_POINT * self.n * self.n / size

    def boundary_bytes(self) -> float:
        """Bytes of boundary shipped per rank per sweep."""
        return self.ELEMENT_BYTES * self.n

    def iteration(self, ctx: ProgramContext, index: int):
        """One pipelined sweep: (d + P - 1) compute+shift steps."""
        depth = self._depth
        steps = depth + ctx.size - 1
        chunk_flops = self.sweep_flops_per_rank(ctx.size) / depth
        chunk_bytes = self.boundary_bytes() / depth
        for _ in range(steps):
            yield from ctx.compute(chunk_flops)
            yield from ctx.comm.shift(chunk_bytes)

    def communication_pattern(self) -> list[CommPattern]:
        return [
            CommPattern(
                kind="shift",
                bytes_per_iteration=self.boundary_bytes(),
            )
        ]

    def required_nodes(self) -> int:
        return 1


def sweep_time_estimate(
    n: int,
    size: int,
    depth: int,
    compute_speed: float,
    bandwidth: float,
    latency: float,
) -> float:
    """Predicted wall time of one sweep (the model the adapter minimises)."""
    chunk_compute = PipelinedSOR.FLOPS_PER_POINT * n * n / size / depth / compute_speed
    chunk_bytes = PipelinedSOR.ELEMENT_BYTES * n / depth
    chunk_comm = latency + chunk_bytes * 8.0 / bandwidth
    return (depth + size - 1) * (chunk_compute + chunk_comm)


def optimal_depth(
    n: int,
    size: int,
    compute_speed: float,
    bandwidth: float,
    latency: float,
    max_depth: int = 256,
) -> int:
    """Depth minimising :func:`sweep_time_estimate` (integer line search).

    The cost is unimodal in d (amortised fill ~1/d vs per-step overhead
    ~d), so scanning candidate depths is cheap and exact.
    """
    if size < 2:
        return 1  # no pipeline without a successor
    best_depth, best_time = 1, math.inf
    for depth in range(1, max_depth + 1):
        t = sweep_time_estimate(n, size, depth, compute_speed, bandwidth, latency)
        if t < best_time:
            best_depth, best_time = depth, t
    return best_depth
