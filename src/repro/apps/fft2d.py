"""Two-dimensional FFT, the paper's first benchmark program.

"The FFT program performs a two dimensional FFT, which is parallelized
such that it consists of a set of independent 1 dimensional row FFTs,
followed by a transpose, and a set of independent 1 dimensional column
FFTs" (§8).

Cost model for an N x N complex-double grid on P ranks:

* row phase — each rank transforms N/P rows: ``5 N log2 N`` flops per row;
* transpose — every rank exchanges the off-diagonal blocks: N^2/P^2
  elements (16 bytes each) per rank pair, all pairs simultaneously;
* column phase — same as the row phase.
"""

from __future__ import annotations

import math

from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.fx.program import CommPattern, FxProgram, ProgramContext
from repro.util.errors import ConfigurationError


class FFT2D(FxProgram):
    """A 2-D FFT of size n x n, optionally repeated (frames)."""

    def __init__(
        self,
        n: int = 512,
        frames: int = 1,
        calibration: Calibration = DEFAULT_CALIBRATION,
        compiled_for: int | None = None,
    ):
        if n < 2 or (n & (n - 1)) != 0:
            raise ConfigurationError(f"FFT size must be a power of two >= 2, got {n}")
        if frames < 1:
            raise ConfigurationError("frames must be >= 1")
        self.n = n
        self.calibration = calibration
        self.name = f"FFT({n})"
        self.iterations = frames
        self.compiled_for = compiled_for

    # -- cost helpers -----------------------------------------------------------

    def _phase_flops_per_rank(self, size: int) -> float:
        rows_per_rank = self.n / size
        per_row = self.calibration.fft_flops_per_point * self.n * math.log2(self.n)
        return rows_per_rank * per_row

    def _transpose_bytes_per_pair(self, size: int) -> float:
        return self.n * self.n * self.calibration.fft_element_bytes / (size * size)

    def iteration(self, ctx: ProgramContext, index: int):
        """Row FFTs, transpose, column FFTs."""
        yield from ctx.compute(self._phase_flops_per_rank(ctx.size))
        yield from ctx.comm.all_to_all(self._transpose_bytes_per_pair(ctx.size))
        yield from ctx.compute(self._phase_flops_per_rank(ctx.size))

    def communication_pattern(self) -> list[CommPattern]:
        """One all-to-all of the full grid per iteration."""
        total = self.n * self.n * self.calibration.fft_element_bytes
        return [CommPattern(kind="all_to_all", bytes_per_iteration=total)]

    def required_nodes(self) -> int:
        return 1

    def memory_bytes_per_rank(self, size: int) -> float:
        """Working set per rank — input slab plus transpose buffer."""
        return 2 * self.n * self.n * self.calibration.fft_element_bytes / size
