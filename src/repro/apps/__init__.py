"""The paper's evaluation applications, as Fx program models.

* :class:`FFT2D` — the two-dimensional FFT: independent row FFTs, a
  transpose (all-to-all), independent column FFTs (§8);
* :class:`Airshed` — the pollution model's computation/communication
  shape: per simulated hour, transport with boundary exchanges, two grid
  redistributions, heavy chemistry, and a gather to the root (§8, [23]);
* :class:`SyntheticApp` — a parameterised compute/communicate loop for
  ablations and tests.

The *numerics* are not simulated — the evaluation depends on the
compute/communication ratio and the communication pattern, which these
models preserve (see ``repro.bench.calibration`` for the constants).
"""

from repro.apps.fft2d import FFT2D
from repro.apps.airshed import Airshed
from repro.apps.synthetic import SyntheticApp
from repro.apps.sor import PipelinedSOR, optimal_depth, sweep_time_estimate

__all__ = [
    "FFT2D",
    "Airshed",
    "SyntheticApp",
    "PipelinedSOR",
    "optimal_depth",
    "sweep_time_estimate",
]
