"""The Airshed pollution model's computation/communication shape.

"Airshed contains a rich set of computation and communication operations,
as it simulates diverse chemical and physical phenomena" (§8; Subhlok et
al. [23]).  Each outer iteration (a simulated hour) runs:

1. **transport** — parallel compute plus a boundary ring exchange
   (stencil-style advection);
2. **redistribute** — all-to-all: the grid moves from the horizontal
   decomposition used by transport to the column decomposition used by
   chemistry;
3. **chemistry** — the dominant, embarrassingly parallel computation;
4. **redistribute back** — second all-to-all;
5. **collect** — concentrations gathered to rank 0, plus serial I/O and
   coordination work there.

Constants live in :class:`~repro.bench.calibration.Calibration`; they are
solved from the paper's anchor measurements (see that module's docstring).
"""

from __future__ import annotations

from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.fx.program import CommPattern, FxProgram, ProgramContext
from repro.util.errors import ConfigurationError


class Airshed(FxProgram):
    """Airshed pollution modelling (cost model)."""

    def __init__(
        self,
        hours: int | None = None,
        calibration: Calibration = DEFAULT_CALIBRATION,
        compiled_for: int | None = None,
    ):
        self.calibration = calibration
        self.iterations = hours if hours is not None else calibration.airshed_iterations
        if self.iterations < 1:
            raise ConfigurationError("Airshed needs at least one iteration")
        self.name = "Airshed"
        self.compiled_for = compiled_for
        # Split the parallel work: transport is ~1/4, chemistry ~3/4 of the
        # per-iteration parallel flops (chemistry dominates in Airshed).
        per_iteration = calibration.airshed_parallel_flops / self.iterations
        self._transport_flops = 0.25 * per_iteration
        self._chemistry_flops = 0.75 * per_iteration
        self._serial_flops = calibration.airshed_serial_flops / self.iterations

    def _redistribution_bytes_per_pair(self, size: int) -> float:
        return self.calibration.airshed_grid_bytes / (size * size)

    def iteration(self, ctx: ProgramContext, index: int):
        """One simulated hour."""
        cal = self.calibration
        # 1. transport + boundary exchange
        yield from ctx.compute(self._transport_flops / ctx.size)
        yield from ctx.comm.ring_exchange(cal.airshed_boundary_bytes / ctx.size)
        # 2. redistribute to chemistry decomposition
        yield from ctx.comm.all_to_all(self._redistribution_bytes_per_pair(ctx.size))
        # 3. chemistry
        yield from ctx.compute(self._chemistry_flops / ctx.size)
        # 4. redistribute back
        yield from ctx.comm.all_to_all(self._redistribution_bytes_per_pair(ctx.size))
        # 5. collect + serial work at the root
        yield from ctx.comm.gather(0, cal.airshed_gather_bytes / ctx.size)
        yield from ctx.serial_compute(self._serial_flops)

    def communication_pattern(self) -> list[CommPattern]:
        """Two grid redistributions dominate; boundary + gather are minor."""
        cal = self.calibration
        return [
            CommPattern(kind="all_to_all", bytes_per_iteration=2 * cal.airshed_grid_bytes),
            CommPattern(kind="ring_exchange", bytes_per_iteration=cal.airshed_boundary_bytes),
            CommPattern(kind="gather", bytes_per_iteration=cal.airshed_gather_bytes),
        ]

    def required_nodes(self) -> int:
        """Grid slices of ~90MB must fit in 256MB hosts: >= 2 nodes."""
        return 2

    def memory_bytes_per_rank(self, size: int) -> float:
        """Two decompositions of the grid live simultaneously per rank."""
        return 2.0 * self.calibration.airshed_grid_bytes / size
