"""Rank-to-host mappings.

A mapping is an ordered list of distinct compute hosts; rank *i* runs on
``hosts[i]``.  Mappings are immutable — migration replaces the runtime's
mapping rather than mutating it, so reports can record the history.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net import Topology
from repro.util.errors import RuntimeModelError


@dataclass(frozen=True)
class NodeMapping:
    """An immutable assignment of ranks to hosts."""

    hosts: tuple[str, ...]

    def __init__(self, hosts):
        object.__setattr__(self, "hosts", tuple(hosts))
        if not self.hosts:
            raise RuntimeModelError("mapping needs at least one host")
        if len(set(self.hosts)) != len(self.hosts):
            raise RuntimeModelError(f"mapping has duplicate hosts: {self.hosts}")

    @property
    def size(self) -> int:
        """Number of active ranks."""
        return len(self.hosts)

    def host_of(self, rank: int) -> str:
        """Host running *rank*."""
        if not 0 <= rank < self.size:
            raise RuntimeModelError(f"rank {rank} out of range 0..{self.size - 1}")
        return self.hosts[rank]

    def rank_of(self, host: str) -> int:
        """Rank running on *host*."""
        try:
            return self.hosts.index(host)
        except ValueError:
            raise RuntimeModelError(f"host {host!r} is not in the mapping") from None

    def validate_against(self, topology: Topology) -> None:
        """Check every host exists and is a compute node."""
        for host in self.hosts:
            if not topology.has_node(host):
                raise RuntimeModelError(f"mapping host {host!r} not in topology")
            if not topology.node(host).is_compute:
                raise RuntimeModelError(f"mapping host {host!r} is not a compute node")

    def imbalance_factor(self, compiled_for: int | None) -> float:
        """Load-imbalance multiplier for compute phases.

        A program compiled into *compiled_for* partitions running on P
        hosts places ceil(compiled_for / P) partitions on the most loaded
        host; relative to an ideally recompiled program (compiled_for / P
        partitions per host) that costs
        ``ceil(compiled_for / P) * P / compiled_for``.  Running 8
        partitions on 5 nodes gives 2 * 5 / 8 = 1.25 — the Table 3
        overhead of compiling for 8 and running on 5.
        """
        if compiled_for is None:
            return 1.0
        if compiled_for < self.size:
            raise RuntimeModelError(
                f"program compiled for {compiled_for} partitions cannot use "
                f"{self.size} hosts"
            )
        import math

        return math.ceil(compiled_for / self.size) * self.size / compiled_for

    def __iter__(self):
        return iter(self.hosts)

    def __len__(self) -> int:
        return self.size

    def __str__(self) -> str:
        return ",".join(self.hosts)
