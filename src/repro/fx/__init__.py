"""A simulated Fx-style data-parallel runtime.

The paper's applications are Fx (HPF-variant) programs whose runtime was
"enhanced so that the assignment of nodes to tasks could be modified
during execution" (§7.1).  This package reproduces the runtime behaviours
the evaluation depends on:

* a program is *compiled for* N partitions but may execute on fewer active
  nodes (the mapping), paying a load-imbalance factor — the source of
  Table 3's 862s-vs-650s overhead;
* compute phases advance simulated time according to each host's speed;
* communication phases are real concurrent flows on the fluid network, so
  external traffic slows them exactly as it would on the testbed;
* at *migration points* (iteration boundaries, where "the active data set
  is replicated"), the mapping can be changed with no data-copy cost.

Programs subclass :class:`FxProgram`; the :class:`FxRuntime` executes them
and produces a :class:`RunReport` with compute/communication breakdowns.
"""

from repro.fx.mapping import NodeMapping
from repro.fx.comm import CommWorld
from repro.fx.program import FxProgram, ProgramContext
from repro.fx.runtime import FxRuntime, RunReport

__all__ = [
    "NodeMapping",
    "CommWorld",
    "FxProgram",
    "ProgramContext",
    "FxRuntime",
    "RunReport",
]
