"""Collective communication over the fluid network.

Every collective opens its member transfers *simultaneously* and waits for
all of them — this is exactly the internal-sharing situation Remos's
simultaneous flow queries exist to predict (§4.2).  All methods are
generators to be driven from a simulation process (``yield from``).

Accounting: ``bytes_moved`` and ``busy_time`` let run reports split compute
from communication.
"""

from __future__ import annotations

from repro.fx.mapping import NodeMapping
from repro.netsim import FluidNetwork
from repro.util.errors import RuntimeModelError

# Payload of synchronisation messages (barrier tokens): small but non-zero,
# so a barrier still costs latency.
SYNC_BYTES = 64.0


class CommWorld:
    """Collectives bound to one mapping of ranks onto hosts."""

    def __init__(self, net: FluidNetwork, mapping: NodeMapping):
        mapping.validate_against(net.topology)
        self.net = net
        self.mapping = mapping
        self.bytes_moved = 0.0
        self.busy_time = 0.0

    @property
    def env(self):
        """The simulation engine."""
        return self.net.env

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self.mapping.size

    def _wait_all(self, handles):
        """Wait for a set of transfers; book time and bytes."""
        started = self.env.now
        if handles:
            yield self.env.all_of([handle.done for handle in handles])
        self.busy_time += self.env.now - started
        self.bytes_moved += sum(handle.size_bytes for handle in handles)

    def _check_rank(self, rank: int) -> str:
        return self.mapping.host_of(rank)

    # -- point to point ----------------------------------------------------------

    def send(self, src_rank: int, dst_rank: int, nbytes: float):
        """One message from rank to rank (generator)."""
        src = self._check_rank(src_rank)
        dst = self._check_rank(dst_rank)
        handle = self.net.transfer(src, dst, nbytes, label=f"p2p:{src}->{dst}")
        yield from self._wait_all([handle])

    # -- collectives ----------------------------------------------------------------

    def all_to_all(self, bytes_per_pair: float):
        """Every rank sends *bytes_per_pair* to every other rank at once.

        This is the Fx transpose pattern — P(P-1) simultaneous flows.
        """
        if bytes_per_pair < 0:
            raise RuntimeModelError("bytes_per_pair must be non-negative")
        handles = []
        for i in range(self.size):
            for j in range(self.size):
                if i == j:
                    continue
                src, dst = self.mapping.host_of(i), self.mapping.host_of(j)
                handles.append(
                    self.net.transfer(src, dst, bytes_per_pair, label=f"a2a:{src}->{dst}")
                )
        yield from self._wait_all(handles)

    def broadcast(self, root_rank: int, nbytes: float):
        """Root sends *nbytes* to every other rank simultaneously."""
        root = self._check_rank(root_rank)
        handles = [
            self.net.transfer(root, host, nbytes, label=f"bcast:{root}->{host}")
            for host in self.mapping
            if host != root
        ]
        yield from self._wait_all(handles)

    def multicast_broadcast(self, root_rank: int, nbytes: float):
        """Broadcast over a multicast distribution tree (§4.5 extension).

        One stream crosses each tree link once, so the root's uplink
        carries the payload once instead of (P-1) times — compare
        :meth:`broadcast` in the broadcast-strategy ablation.
        """
        root = self._check_rank(root_rank)
        receivers = [host for host in self.mapping if host != root]
        if not receivers:
            return
        handle = self.net.multicast_transfer(
            root, receivers, nbytes, label=f"mbcast:{root}"
        )
        yield from self._wait_all([handle])

    def gather(self, root_rank: int, nbytes_per_rank: float):
        """Every non-root rank sends *nbytes_per_rank* to root."""
        root = self._check_rank(root_rank)
        handles = [
            self.net.transfer(host, root, nbytes_per_rank, label=f"gather:{host}->{root}")
            for host in self.mapping
            if host != root
        ]
        yield from self._wait_all(handles)

    def scatter(self, root_rank: int, nbytes_per_rank: float):
        """Root sends a distinct *nbytes_per_rank* block to each rank."""
        yield from self.broadcast(root_rank, nbytes_per_rank)

    def allreduce(self, nbytes: float):
        """Reduce-to-root then broadcast (the flat 1998-style algorithm)."""
        yield from self.gather(0, nbytes)
        yield from self.broadcast(0, nbytes)

    def shift(self, nbytes: float):
        """Each rank sends *nbytes* to its successor (no wraparound).

        The pipeline step of systolic/pipelined algorithms (e.g. pipelined
        SOR): rank i's boundary moves to rank i+1, all sends concurrent.
        """
        if self.size < 2:
            return
            yield  # pragma: no cover - generator marker
        handles = []
        for i in range(self.size - 1):
            src, dst = self.mapping.host_of(i), self.mapping.host_of(i + 1)
            handles.append(self.net.transfer(src, dst, nbytes, label=f"shift:{src}->{dst}"))
        yield from self._wait_all(handles)

    def ring_exchange(self, nbytes: float):
        """Each rank exchanges *nbytes* with both ring neighbours at once.

        The boundary-exchange pattern of stencil codes (Airshed transport).
        With fewer than 2 ranks there is nothing to exchange; with exactly
        2 the two directions collapse to one pair each way.
        """
        if self.size < 2:
            return
            yield  # pragma: no cover - makes this a generator
        handles = []
        seen = set()
        for i in range(self.size):
            for j in ((i + 1) % self.size, (i - 1) % self.size):
                if (i, j) in seen or i == j:
                    continue
                seen.add((i, j))
                src, dst = self.mapping.host_of(i), self.mapping.host_of(j)
                handles.append(
                    self.net.transfer(src, dst, nbytes, label=f"ring:{src}->{dst}")
                )
        yield from self._wait_all(handles)

    def barrier(self):
        """Synchronise all ranks (token gather + release broadcast)."""
        if self.size < 2:
            return
            yield  # pragma: no cover
        yield from self.gather(0, SYNC_BYTES)
        yield from self.broadcast(0, SYNC_BYTES)
