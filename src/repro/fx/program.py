"""The program model: what an Fx application looks like to the runtime.

A program declares how many partitions it was *compiled for*, how many
iterations its outer loop runs, and supplies an ``iteration`` generator
that uses the :class:`ProgramContext` for compute and communication.  The
iteration boundary is the migration point (§7.3): before each iteration
the runtime calls the adaptation hook, which may remap the program.

Programs also expose their communication pattern
(:meth:`FxProgram.communication_pattern`) because "programming tools often
have this information" (§6) and the adaptation layer feeds it into Remos
flow queries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator

from repro.fx.comm import CommWorld
from repro.fx.mapping import NodeMapping
from repro.util.errors import RuntimeModelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.fx.runtime import FxRuntime


@dataclass(frozen=True)
class CommPattern:
    """One entry of a program's static communication pattern.

    ``kind`` names the collective; ``bytes_per_iteration`` the data it
    moves per outer-loop iteration (total across all flows).
    """

    kind: str
    bytes_per_iteration: float


class ProgramContext:
    """Facilities a program's iteration body may use.

    All operations are generators (``yield from ctx.compute(...)``).
    Compute is charged per-rank against host speed, scaled by the
    compiled-for imbalance factor; communication goes through the
    :class:`CommWorld` for the current mapping.
    """

    def __init__(self, runtime: "FxRuntime", program: "FxProgram"):
        self._runtime = runtime
        self._program = program
        self.compute_time = 0.0

    @property
    def env(self):
        """The simulation engine (read the clock via ``ctx.env.now``)."""
        return self._runtime.env

    @property
    def mapping(self) -> NodeMapping:
        """Current rank-to-host mapping."""
        return self._runtime.mapping

    @property
    def comm(self) -> CommWorld:
        """Collectives over the current mapping."""
        return self._runtime.comm

    @property
    def size(self) -> int:
        """Number of active ranks."""
        return self.mapping.size

    def compute(self, flops_per_rank: float):
        """All ranks compute in parallel; time = slowest rank (generator).

        The imbalance factor for running `compiled_for` partitions on
        fewer hosts multiplies the duration.
        """
        if flops_per_rank < 0:
            raise RuntimeModelError("flops_per_rank must be non-negative")
        topology = self._runtime.net.topology
        activity = self._runtime.net.host_activity
        factor = self.mapping.imbalance_factor(self._program.compiled_for)
        # Fair time-sharing with whatever else runs on each host: our rank
        # gets 1/(1 + competing share) of the CPU (frozen at phase start).
        duration = 0.0
        for host in self.mapping:
            fraction = 1.0 / (1.0 + activity.active_share(host))
            speed = topology.node(host).compute_speed * fraction
            duration = max(duration, flops_per_rank * factor / speed)
        self.compute_time += duration
        for host in self.mapping:
            activity.set_share(host, +1.0)
        try:
            yield self.env.timeout(duration)
        finally:
            for host in self.mapping:
                activity.set_share(host, -1.0)

    def serial_compute(self, flops: float):
        """Unparallelised work on rank 0 (generator)."""
        topology = self._runtime.net.topology
        activity = self._runtime.net.host_activity
        root = self.mapping.host_of(0)
        fraction = 1.0 / (1.0 + activity.active_share(root))
        duration = flops / (topology.node(root).compute_speed * fraction)
        self.compute_time += duration
        activity.set_share(root, +1.0)
        try:
            yield self.env.timeout(duration)
        finally:
            activity.set_share(root, -1.0)


class FxProgram(abc.ABC):
    """Base class for simulated Fx applications."""

    #: Human-readable name used in reports and benchmark tables.
    name: str = "program"

    #: Partition count baked in at compile time (None = recompiled per run).
    compiled_for: int | None = None

    #: Outer-loop iterations; each boundary is a migration point.
    iterations: int = 1

    @abc.abstractmethod
    def iteration(self, ctx: ProgramContext, index: int) -> Generator:
        """One outer-loop iteration (generator using ctx operations)."""

    def setup(self, ctx: ProgramContext) -> Generator:
        """Optional one-time initialisation (default: nothing)."""
        return
        yield  # pragma: no cover - makes this a generator

    def communication_pattern(self) -> list[CommPattern]:
        """Static description of the per-iteration communication.

        Used by the adaptation layer to build Remos flow queries without
        running the program.  Subclasses should override.
        """
        return []

    def required_nodes(self) -> int:
        """Minimum number of hosts (defaults to 1)."""
        return 1

    def memory_bytes_per_rank(self, size: int) -> float:
        """Working-set bytes each rank needs when run on *size* hosts.

        The node-count constraint of §2: "a certain minimum number of
        nodes are often required to fit the data sets into the physical
        memory of all participating nodes."  Defaults to 0 (no memory
        pressure); data-holding programs override.
        """
        return 0.0


#: Signature of the adaptation hook: called before every iteration with
#: (runtime, program, iteration index); may call runtime.remap(...).
AdaptHook = Callable[["FxRuntime", FxProgram, int], Generator]
