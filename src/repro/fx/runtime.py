"""The Fx runtime: executes programs, supports remapping at migration points.

The runtime models SPMD execution at the coordinator level: compute phases
advance the virtual clock by the slowest rank's duration, communication
phases run real concurrent flows on the fluid network.  Remapping swaps the
mapping between iterations; with the paper's replicated-data assumption
"no data copying or explicit synchronization is necessary for migration"
(§8.3), so a remap's direct cost is zero — the *indirect* costs (adaptation
decision time, running with an imbalanced compiled-for factor) are modelled
explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fx.comm import CommWorld
from repro.fx.mapping import NodeMapping
from repro.fx.program import AdaptHook, FxProgram, ProgramContext
from repro.netsim import FluidNetwork
from repro.util.errors import RuntimeModelError


@dataclass
class MigrationRecord:
    """One remap event in a run."""

    iteration: int
    time: float
    from_hosts: tuple[str, ...]
    to_hosts: tuple[str, ...]


@dataclass
class RunReport:
    """Outcome of one program run."""

    program: str
    hosts_initial: tuple[str, ...]
    started_at: float = 0.0
    finished_at: float = 0.0
    compute_time: float = 0.0
    comm_time: float = 0.0
    adapt_time: float = 0.0
    bytes_moved: float = 0.0
    iteration_times: list[float] = field(default_factory=list)
    migrations: list[MigrationRecord] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        """Total wall-clock (simulated) execution time in seconds."""
        return self.finished_at - self.started_at

    @property
    def final_hosts(self) -> tuple[str, ...]:
        """Hosts in use when the program finished."""
        if self.migrations:
            return self.migrations[-1].to_hosts
        return self.hosts_initial

    def __str__(self) -> str:
        return (
            f"{self.program} on {','.join(self.hosts_initial)}: "
            f"{self.elapsed:.3f}s (compute {self.compute_time:.3f}s, "
            f"comm {self.comm_time:.3f}s, {len(self.migrations)} migrations)"
        )


class FxRuntime:
    """Executes one program at a time over a fluid network."""

    def __init__(self, net: FluidNetwork):
        self.net = net
        self.env = net.env
        self._mapping: NodeMapping | None = None
        self._comm: CommWorld | None = None
        self._report: RunReport | None = None
        self._running = False

    @property
    def mapping(self) -> NodeMapping:
        """Current rank-to-host mapping."""
        if self._mapping is None:
            raise RuntimeModelError("no program is mapped")
        return self._mapping

    @property
    def comm(self) -> CommWorld:
        """Collectives over the current mapping."""
        if self._comm is None:
            raise RuntimeModelError("no program is mapped")
        return self._comm

    @property
    def report(self) -> RunReport:
        """The report of the current/most recent run."""
        if self._report is None:
            raise RuntimeModelError("no program has been launched")
        return self._report

    # -- mapping ------------------------------------------------------------------

    def _install_mapping(self, hosts) -> None:
        mapping = hosts if isinstance(hosts, NodeMapping) else NodeMapping(hosts)
        mapping.validate_against(self.net.topology)
        previous_comm = self._comm
        self._mapping = mapping
        self._comm = CommWorld(self.net, mapping)
        if previous_comm is not None:
            # Carry accounting across migrations.
            self._comm.bytes_moved = previous_comm.bytes_moved
            self._comm.busy_time = previous_comm.busy_time

    def remap(self, hosts, iteration: int = -1) -> None:
        """Switch the active mapping (legal only at migration points).

        With replicated data at migration points the remap itself is free;
        callers model decision costs separately (see
        :meth:`charge_adaptation`).
        """
        if self._mapping is None:
            raise RuntimeModelError("cannot remap before launch")
        old = self._mapping.hosts
        self._install_mapping(hosts)
        if self._report is not None:
            self._report.migrations.append(
                MigrationRecord(
                    iteration=iteration,
                    time=self.env.now,
                    from_hosts=old,
                    to_hosts=self._mapping.hosts,
                )
            )

    def charge_adaptation(self, seconds: float):
        """Spend *seconds* on adaptation decision-making (generator)."""
        if seconds < 0:
            raise RuntimeModelError("adaptation cost must be non-negative")
        if self._report is not None:
            self._report.adapt_time += seconds
        yield self.env.timeout(seconds)

    # -- execution -----------------------------------------------------------------

    def launch(self, program: FxProgram, hosts, adapt_hook: AdaptHook | None = None):
        """Run *program* on *hosts*; returns the completion Process.

        The process's value is the :class:`RunReport`.  ``adapt_hook`` is
        invoked (as a sub-generator) before every iteration — the migration
        point — and may call :meth:`remap` / :meth:`charge_adaptation`.
        """
        if self._running:
            raise RuntimeModelError("runtime already has a program running")
        if program.iterations < 1:
            raise RuntimeModelError("program must have at least one iteration")
        self._install_mapping(hosts)
        if self.mapping.size < program.required_nodes():
            raise RuntimeModelError(
                f"{program.name} needs >= {program.required_nodes()} hosts, "
                f"got {self.mapping.size}"
            )
        self._report = RunReport(
            program=program.name,
            hosts_initial=self.mapping.hosts,
            started_at=self.env.now,
        )
        self._running = True
        return self.env.process(self._run(program, adapt_hook), name=f"fx:{program.name}")

    def _run(self, program: FxProgram, adapt_hook: AdaptHook | None):
        report = self._report
        assert report is not None
        ctx = ProgramContext(self, program)
        try:
            yield from program.setup(ctx)
            for index in range(program.iterations):
                if adapt_hook is not None:
                    yield from adapt_hook(self, program, index)
                    # The hook may have remapped; refresh the context's view
                    # implicitly (ctx reads mapping/comm via the runtime).
                iteration_start = self.env.now
                yield from program.iteration(ctx, index)
                report.iteration_times.append(self.env.now - iteration_start)
        finally:
            self._running = False
            report.finished_at = self.env.now
            report.compute_time = ctx.compute_time
            comm = self._comm
            assert comm is not None
            report.comm_time = comm.busy_time
            report.bytes_moved = comm.bytes_moved
        return report
