"""The per-epoch collapse tree behind hierarchical logical graphs.

A :class:`CollapseTree` classifies every physical link of a hierarchical
topology once — *access* links (host to its ToR group) and *bundles* (all
links between a group and its parent group) — and precomputes the static
roll-ups (bundle capacity = sum of members, latency = min).  The Modeler
then answers a ``remos_get_graph`` over thousands of hosts by expanding
only the queried hosts' access links plus the bundles up to the queried
set's common ancestor, instead of walking the full physical graph; dynamic
availability is rolled up per bundle at query time (element-wise min over
member directions, the same conservative rule chain collapse uses).

Lifecycle mirrors :class:`~repro.net.routing.RoutingTable`: built lazily
per structure, kept across metrics-only sweeps, shared by reference when a
snapshot epoch forks with the topology structurally unchanged (the tree is
immutable apart from the ``rebase`` pointer swap), and rebuilt on a
structural change.  See ``docs/TOPOLOGIES.md``.
"""

from __future__ import annotations

from repro import obs
from repro.net import RoutingTable, Topology
from repro.net.hierarchy import Hierarchy
from repro.util.errors import TopologyError


class _Access:
    """A host's attachment: its access link names and the ToR switch."""

    __slots__ = ("links", "switch", "group")

    def __init__(self, links: tuple[str, ...], switch: str, group: str):
        self.links = links
        self.switch = switch
        self.group = group


class CollapseTree:
    """Link classification + static roll-ups for one (topology, hierarchy).

    Construction is O(V + E) and raises :class:`TopologyError` when the
    links do not fit the hierarchy (a switch outside every group, links
    between non-adjacent groups, intra-group links, a group with no uplink
    to its parent, ...) — the Modeler's ``auto`` collapse mode treats that
    as "no hierarchy" and falls back to the flat path.
    """

    def __init__(self, topology: Topology, hierarchy: Hierarchy):
        self.topology = topology
        self.hierarchy = hierarchy
        # The hint object the tree was derived from (None if inferred);
        # validity requires the candidate topology to carry the same hint.
        self._hint = topology.hierarchy
        self._signature: tuple | None = None
        self.access: dict[str, _Access] = {}
        #: (child group id, parent group id) -> ((link name, child end,
        #: parent end), ...) for every physical link in the bundle.
        self.bundles: dict[tuple[str, str], tuple[tuple[str, str, str], ...]] = {}
        self.bundle_capacity: dict[tuple[str, str], float] = {}
        self.bundle_latency: dict[tuple[str, str], float] = {}
        self._classify()
        obs.inc(
            "remos_collapse_builds_total",
            help="Collapse-tree constructions (kept across metrics-only sweeps)",
        )

    # -- construction ---------------------------------------------------------

    def _classify(self) -> None:
        topology, hierarchy = self.topology, self.hierarchy
        member_group = hierarchy.member_group
        host_group = hierarchy.host_group
        access_links: dict[str, list[str]] = {}
        access_switch: dict[str, str] = {}
        bundles: dict[tuple[str, str], list[tuple[str, str, str]]] = {}
        for link in topology.links:
            a_compute = topology.node(link.a).is_compute
            b_compute = topology.node(link.b).is_compute
            if a_compute and b_compute:
                raise TopologyError(
                    f"link {link.name!r} connects two hosts; hierarchies have "
                    "no host-host links"
                )
            if a_compute or b_compute:
                host, switch = (link.a, link.b) if a_compute else (link.b, link.a)
                gid = host_group.get(host)
                if gid is None:
                    raise TopologyError(f"host {host!r} is not placed in the hierarchy")
                if member_group.get(switch) != gid:
                    raise TopologyError(
                        f"host {host!r} attaches to {switch!r}, which is not in "
                        f"its group {gid!r}"
                    )
                seen = access_switch.setdefault(host, switch)
                if seen != switch:
                    raise TopologyError(
                        f"host {host!r} attaches to both {seen!r} and {switch!r}; "
                        "hierarchical hosts are single-homed"
                    )
                access_links.setdefault(host, []).append(link.name)
                continue
            ga, gb = member_group.get(link.a), member_group.get(link.b)
            if ga is None or gb is None:
                missing = link.a if ga is None else link.b
                raise TopologyError(
                    f"switch {missing!r} belongs to no hierarchy group"
                )
            if ga == gb:
                raise TopologyError(
                    f"link {link.name!r} runs inside group {ga!r}; intra-group "
                    "links cannot be collapsed"
                )
            if hierarchy.groups[ga].parent == gb:
                bundles.setdefault((ga, gb), []).append((link.name, link.a, link.b))
            elif hierarchy.groups[gb].parent == ga:
                bundles.setdefault((gb, ga), []).append((link.name, link.b, link.a))
            else:
                raise TopologyError(
                    f"link {link.name!r} connects non-adjacent groups "
                    f"{ga!r} and {gb!r}"
                )
        for host in topology.compute_nodes:
            if host.name not in access_links:
                if host.name in host_group:
                    raise TopologyError(f"host {host.name!r} has no access link")
                raise TopologyError(f"host {host.name!r} is not placed in the hierarchy")
        for gid, group in hierarchy.groups.items():
            if group.parent is not None and (gid, group.parent) not in bundles:
                raise TopologyError(
                    f"group {gid!r} has no uplink bundle to its parent "
                    f"{group.parent!r}"
                )
        for host, names in access_links.items():
            self.access[host] = _Access(
                tuple(names), access_switch[host], host_group[host]
            )
        for key, members in bundles.items():
            self.bundles[key] = tuple(members)
            self.bundle_capacity[key] = sum(
                topology.link(name).capacity for name, _, _ in members
            )
            self.bundle_latency[key] = min(
                topology.link(name).latency for name, _, _ in members
            )

    # -- epoch validity (mirrors RoutingTable) --------------------------------

    def signature(self) -> tuple:
        """Structural signature of the topology this tree was built from."""
        if self._signature is None:
            self._signature = RoutingTable._topology_signature(self.topology)
        return self._signature

    def is_valid_for(self, topology: Topology) -> bool:
        """True when this tree is exact for *topology*.

        Requires the same hierarchy hint object (an in-place re-merge keeps
        it; attaching a different hierarchy is a semantic change even if
        the links are identical) plus structural identity — the identity
        fast path first, the signature otherwise.
        """
        if topology.hierarchy is not self._hint:
            return False
        if topology is self.topology:
            return True
        return RoutingTable._topology_signature(topology) == self.signature()

    def rebase(self, topology: Topology) -> None:
        """Re-point at a structurally identical topology object.

        Only call after :meth:`is_valid_for` returned True; every stored
        link name and roll-up resolves identically against the new object.
        """
        self.topology = topology

    def node_name(self, group_id: str) -> str:
        """The logical-graph name for a group.

        Singleton groups keep the member switch's physical name (queries
        over them stay exact); multi-member groups become ``agg:<id>``.
        """
        group = self.hierarchy.groups[group_id]
        if len(group.members) == 1:
            return group.members[0]
        return f"agg:{group_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CollapseTree: {len(self.access)} hosts, "
            f"{len(self.bundles)} bundles, depth {self.hierarchy.depth}>"
        )
