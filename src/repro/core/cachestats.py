"""Observability for the generation-stamped query cache.

One :class:`CacheStats` instance is shared by a :class:`~repro.core.Remos`
facade and the :class:`~repro.core.Modeler` it keeps alive across collector
view refreshes.  Every memoised lookup records a hit or a miss (globally and
per cache), every generation change that dropped cached entries records an
invalidation, and every public query records its wall-clock time — so the
effect of the cache is measurable, not assumed.  See ``docs/PERFORMANCE.md``
for how to read the counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters describing the behaviour of the Modeler's caches.

    Attributes
    ----------
    hits / misses:
        Memoised-lookup outcomes summed over every cache.
    invalidations:
        Times a generation change (or a view rebind) dropped cached entries.
    partial_invalidations:
        Times a metrics-only delta chain let the Modeler evict just the
        touched entries instead of dropping every cache.
    entries_evicted:
        Cache entries removed by those partial invalidations (full drops
        are not counted here).
    routing_rebuilds:
        Times a view refresh carried a structurally different topology and
        forced a new routing table (0 while topology is stable).
    queries:
        Public Remos queries answered (flow_info, get_graph, node_info,
        check_admission).
    query_time:
        Total wall-clock seconds spent answering those queries.
    per_cache:
        ``{cache name: {"hits": n, "misses": n}}`` breakdown; cache names
        are ``"bandwidth"``, ``"cpu"``, ``"capacities"`` and ``"graph"``.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    partial_invalidations: int = 0
    entries_evicted: int = 0
    routing_rebuilds: int = 0
    queries: int = 0
    query_time: float = 0.0
    per_cache: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Guards the read-modify-write increments: one CacheStats is shared by
    #: every reader thread querying the same facade.  ~100ns per record —
    #: invisible next to any memoised lookup.
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # -- recording (called by Modeler / Remos) ---------------------------------

    def hit(self, cache: str) -> None:
        """Record a lookup served from *cache*."""
        with self.lock:
            self.hits += 1
            self._bucket(cache)["hits"] += 1

    def miss(self, cache: str) -> None:
        """Record a lookup *cache* had to compute."""
        with self.lock:
            self.misses += 1
            self._bucket(cache)["misses"] += 1

    def invalidated(self) -> None:
        """Record one cache-dropping event (generation change / rebind)."""
        with self.lock:
            self.invalidations += 1

    def partially_invalidated(self, evicted: int) -> None:
        """Record one delta-driven eviction pass removing *evicted* entries."""
        with self.lock:
            self.partial_invalidations += 1
            self.entries_evicted += evicted

    def record_query(self, seconds: float) -> None:
        """Account one answered query and its wall-clock cost."""
        with self.lock:
            self.queries += 1
            self.query_time += seconds

    def _bucket(self, cache: str) -> dict[str, int]:
        return self.per_cache.setdefault(cache, {"hits": 0, "misses": 0})

    # -- derived readings ---------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of memoised lookups served from cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def mean_query_time(self) -> float:
        """Average wall-clock seconds per answered query (0.0 when idle)."""
        return self.query_time / self.queries if self.queries else 0.0

    def reset(self) -> None:
        """Zero every counter (e.g. between benchmark phases)."""
        with self.lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0
            self.partial_invalidations = 0
            self.entries_evicted = 0
            self.routing_rebuilds = 0
            self.queries = 0
            self.query_time = 0.0
            self.per_cache.clear()

    def to_dict(self) -> dict:
        """Plain-data form for JSON export / benchmark reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "partial_invalidations": self.partial_invalidations,
            "entries_evicted": self.entries_evicted,
            "routing_rebuilds": self.routing_rebuilds,
            "queries": self.queries,
            "query_time": self.query_time,
            "mean_query_time": self.mean_query_time,
            "per_cache": {name: dict(counts) for name, counts in self.per_cache.items()},
        }

    def __str__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.2%}, invalidations={self.invalidations}, "
            f"queries={self.queries}, mean_query_time={self.mean_query_time * 1e3:.3f}ms)"
        )
