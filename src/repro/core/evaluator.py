"""Shared timeframe evaluation: one ladder for every dynamic series.

Before this module, ``Modeler._compute_used_bandwidth`` and
``Modeler._compute_cpu_load`` each carried their own copy of the
``TimeframeKind`` branch ladder, with subtly divergent CURRENT-accuracy
rules and a fresh predictor instantiated on every FUTURE call.  The
:class:`TimeframeEvaluator` owns that logic once:

* **STATIC / CURRENT / HISTORY** answers are bit-identical to the
  pre-refactor ladders (``tests/core/test_timeframe_differential.py``
  checks against the frozen oracle), except that CURRENT now applies
  *one* accuracy rule to every series — the sample-derived rule the
  bandwidth path always used — instead of the CPU path's hard-coded
  ``.degraded(0.9)``;
* **FUTURE** answers flow through the forecaster registry with a
  per-epoch predictor memo, the ``"auto"`` predictor resolved per series
  from measured backtest skill, and the fixed ``PREDICTION_DISCOUNT``
  prior replaced by the :class:`~repro.stats.forecast.Backtester`'s
  measured accuracy once enough past predictions have been scored.

One evaluator per :class:`~repro.core.modeler.Modeler` epoch (the memo is
per-epoch state); the backtester inside is shared across epochs through
:meth:`fork`, exactly like the modeler's cache-stats counters, so the
accuracy record survives sweeps and snapshot publication.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Hashable

from repro.core.timeframe import Timeframe, TimeframeKind
from repro.stats import StatMeasure, make_predictor
from repro.stats.forecast import Backtester
from repro.stats.predictors import PREDICTION_DISCOUNT, AutoPredictor
from repro.util.errors import ConfigurationError

# Accuracy attached to availability claims about series nobody has
# measured (assumed idle): low, but not zero — the topology is known.
UNMEASURED_ACCURACY = 0.25


def current_window_width(series) -> float:
    """The trailing window CURRENT derives its accuracy from.

    Ten average sample spacings (at least ten seconds): wide enough to
    judge how stable the latest reading is, narrow enough to stay
    "current".  Shared with the cache-validation fast path
    (``Modeler._window_unmoved``), which must agree on the width to prove
    a CURRENT entry's window did not move.
    """
    return 10 * max(1.0, series.span() / max(1, len(series)))


class TimeframeEvaluator:
    """Evaluates one series under one timeframe; owned by a Modeler epoch.

    Thread contract: reader threads of a published snapshot share one
    evaluator.  The predictor memo is a benign-race dict fill (predictors
    are stateless and interchangeable); the backtester serialises its own
    mutations internally.
    """

    def __init__(self, backtester: Backtester | None = None):
        self.backtester = backtester if backtester is not None else Backtester()
        # Per-epoch memo: (name, window) -> predictor instance.  FUTURE
        # answers are also cached above us per (resource, timeframe), so
        # this mostly saves construction across *distinct* resources.
        self._predictors: dict[tuple[str, float], object] = {}

    def fork(self) -> "TimeframeEvaluator":
        """A successor for the next epoch: fresh memo, shared backtester."""
        return TimeframeEvaluator(backtester=self.backtester)

    # -- the ladder ---------------------------------------------------------------

    def evaluate(
        self,
        series_key: Hashable,
        series,
        timeframe: Timeframe,
        now: float | None,
    ) -> StatMeasure:
        """The measure for *series* under *timeframe* evaluated at *now*.

        *series* is None (or empty) for resources nobody has measured;
        *series_key* is the stable identity the backtester files FUTURE
        predictions under — ``(link_name, from_node)`` for both bandwidth
        and CPU series (CPU rides the pseudo-link convention).
        """
        if timeframe.kind is TimeframeKind.STATIC:
            return StatMeasure.constant(0.0)
        if series is None or series.empty:
            return StatMeasure.constant(0.0).degraded(UNMEASURED_ACCURACY)
        if now is None:
            now = series.latest()[0]
        if timeframe.kind is TimeframeKind.CURRENT:
            return self._evaluate_current(series, now)
        if timeframe.kind is TimeframeKind.HISTORY:
            return self._evaluate_history(series, timeframe, now)
        return self._evaluate_future(series_key, series, timeframe, now)

    @staticmethod
    def _evaluate_current(series, now: float) -> StatMeasure:
        """Latest value, trusted as far as its recent stability earns.

        The one CURRENT rule for every series: quartiles collapse onto
        the latest sample; accuracy is derived from the trailing window's
        sample count and dispersion (``sample_accuracy``), falling back
        to 0.5 when the window is empty.  (The CPU path used to hard-code
        ``.degraded(0.9)`` here — same quartiles, blind accuracy.)
        """
        recent = series.window(now - current_window_width(series), now)
        latest = series.latest_value()
        accuracy = StatMeasure.from_samples(recent).accuracy if recent.size else 0.5
        return StatMeasure.constant(latest).degraded(min(1.0, accuracy))

    @staticmethod
    def _evaluate_history(series, timeframe: Timeframe, now: float) -> StatMeasure:
        window = series.window(now - timeframe.window, now)
        if window.size == 0:
            return StatMeasure.constant(series.latest_value()).degraded(0.5)
        return StatMeasure.from_samples(window)

    # -- FUTURE -------------------------------------------------------------------

    def _predictor(self, name: str, window: float):
        key = (name, window)
        predictor = self._predictors.get(key)
        if predictor is None:
            predictor = make_predictor(name, history_window=window)
            self._predictors[key] = predictor
        return predictor

    def resolve_predictor(self, series_key: Hashable, timeframe: Timeframe) -> str:
        """The concrete model a FUTURE query will use for *series_key*.

        ``"auto"`` resolves to the candidate with the best measured
        pinball loss for this (series, horizon), or the registry default
        before any candidate has earned a record.
        """
        if timeframe.predictor != "auto":
            return timeframe.predictor
        best = self.backtester.best(
            series_key, timeframe.horizon, AutoPredictor.CANDIDATES
        )
        return best if best is not None else AutoPredictor.DEFAULT

    def _evaluate_future(
        self, series_key: Hashable, series, timeframe: Timeframe, now: float
    ) -> StatMeasure:
        backtester = self.backtester
        # Settle first: any prediction whose horizon has elapsed is scored
        # against the samples that actually landed, so the accuracy stamped
        # below reflects everything known at evaluation time.
        backtester.settle(series_key, series, now)
        resolved = self.resolve_predictor(series_key, timeframe)
        try:
            measure = self._predictor(resolved, timeframe.window).predict(
                series, now, timeframe.horizon
            )
        except ConfigurationError:
            # The evaluation clock ran past this series: its prediction
            # window retains no samples.  Degrade to the last known value
            # (matching the predictors' own too-few-samples fallback)
            # instead of failing the whole query.
            measure = StatMeasure.constant(series.latest_value()).degraded(
                0.5 * PREDICTION_DISCOUNT
            )
        if timeframe.predictor == "auto":
            # Shadow-record every candidate so "auto" accumulates the
            # comparative evidence it arbitrates on; without this only the
            # answering model would ever build a record.
            for name in AutoPredictor.CANDIDATES:
                if name == resolved:
                    continue
                try:
                    shadow = self._predictor(name, timeframe.window).predict(
                        series, now, timeframe.horizon
                    )
                except Exception:
                    continue  # a model that cannot fit this series scores nothing
                backtester.record(
                    series_key, name, timeframe.horizon, now, shadow
                )
        backtester.record(series_key, resolved, timeframe.horizon, now, measure)
        measured = backtester.accuracy(series_key, resolved, timeframe.horizon)
        if measured is not None:
            # Earned accuracy replaces the predictor's fixed prior.
            measure = replace(measure, accuracy=min(1.0, max(0.0, measured)))
        return measure
