"""The Modeler: turns a collector's NetworkView into Remos answers.

"The primary tasks of the modeler are as follows: generating a logical
topology, associating appropriate static and dynamic information with each
of the network components, and satisfying flow requests based on the
logical topology" (§5).  This module implements the first two tasks; flow
satisfaction lives in :mod:`repro.core.api` on top of the availability
estimates produced here.

Estimates are memoised under a **generation stamp**: every answer cached
here is keyed on the view's ``(generation, latest metric timestamp)`` and
dropped the moment a collector sweep advances either, so a cached answer is
exact for its generation and never served across generations.  The
staleness contract and the full performance model are documented in
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from typing import Hashable

from repro import obs
from repro.collector.base import NetworkView
from repro.core.cachestats import CacheStats
from repro.core.graph import RemosEdge, RemosGraph, RemosNode
from repro.core.timeframe import Timeframe, TimeframeKind
from repro.net import LinkDirection, RoutingTable
from repro.stats import StatMeasure, make_predictor
from repro.util.errors import QueryError

# Accuracy attached to availability claims about directions nobody has
# measured (assumed idle): low, but not zero — the topology is known.
UNMEASURED_ACCURACY = 0.25

_log = obs.get_logger("repro.core.modeler")


class Modeler:
    """Annotates topologies and estimates per-direction availability.

    Parameters
    ----------
    view:
        The collector's current belief about the network.
    routing:
        Routes over ``view.topology`` (built on demand if omitted).
    stats:
        Shared :class:`CacheStats` counters (Remos passes its own so stats
        survive view rebinds); a private instance is created if omitted.
    enable_cache:
        ``False`` recomputes every estimate from the raw series — the cold
        path benchmarks and differential tests compare against.
    """

    def __init__(
        self,
        view: NetworkView,
        routing: RoutingTable | None = None,
        stats: CacheStats | None = None,
        enable_cache: bool = True,
    ):
        self.view = view
        self.routing = routing or RoutingTable(view.topology)
        self.stats = stats if stats is not None else CacheStats()
        self.enable_cache = enable_cache
        self._bandwidth_cache: dict[tuple, StatMeasure] = {}
        self._cpu_cache: dict[tuple, StatMeasure] = {}
        self._capacities_cache: dict[tuple, dict[Hashable, float]] = {}
        self._graph_cache: dict[tuple, RemosGraph] = {}
        # Route → resource-key memo; purely structural (routes + static
        # crossbar finiteness), so it outlives generations and is dropped
        # only when the routing table itself is replaced.
        self._route_resources: dict[tuple[str, str], tuple[Hashable, ...]] = {}
        self._cache_stamp = self._view_stamp()

    # -- generation-stamped cache plumbing --------------------------------------

    def _view_stamp(self) -> tuple[int, float]:
        """The freshness token cached answers are valid for.

        The collector-bumped generation is the primary stamp; the newest
        metric timestamp (O(1)) rides along so even hand-mutated views that
        never bump generations cannot serve stale answers.
        """
        return (self.view.generation, self.view.metrics.latest_timestamp())

    def _refresh_caches(self, force: bool = False) -> None:
        """Drop every dynamic cache if the view advanced a generation."""
        stamp = self._view_stamp()
        if not force and stamp == self._cache_stamp:
            return
        if (
            self._bandwidth_cache
            or self._cpu_cache
            or self._capacities_cache
            or self._graph_cache
        ):
            self.stats.invalidated()
            obs.inc(
                "remos_cache_invalidations_by_cause_total",
                help="Cache-dropping events by cause",
                cause="rebind" if force else "generation",
            )
            if _log.enabled_for("debug"):
                _log.debug(
                    "cache_invalidated",
                    old_stamp=self._cache_stamp,
                    new_stamp=stamp,
                    entries=len(self._bandwidth_cache)
                    + len(self._cpu_cache)
                    + len(self._capacities_cache)
                    + len(self._graph_cache),
                )
        self._bandwidth_cache.clear()
        self._cpu_cache.clear()
        self._capacities_cache.clear()
        self._graph_cache.clear()
        self._cache_stamp = stamp

    def rebind(self, view: NetworkView) -> None:
        """Adopt a refreshed collector view without rebuilding the world.

        The routing table survives whenever the topology is unchanged —
        the common case, since collectors mutate metrics in place between
        discovery sweeps — and all dynamic caches are dropped
        unconditionally (the new view object may carry an equal generation
        number yet different data).
        """
        if view is self.view:
            return
        with obs.span("modeler.refresh") as sp:
            rebuilt = not self.routing.is_valid_for(view.topology)
            if rebuilt:
                self.routing = RoutingTable(view.topology)
                self.stats.routing_rebuilds += 1
                self._route_resources.clear()
            self.view = view
            self._refresh_caches(force=True)
            if sp:
                sp.set(generation=view.generation, routing_rebuilt=rebuilt)
        if _log.enabled_for("info"):
            _log.info(
                "view_rebound",
                generation=view.generation,
                routing_rebuilt=rebuilt,
                nodes=len(view.topology.nodes),
            )

    @property
    def now(self) -> float:
        """Query-evaluation time: the newest timestamp the metrics contain.

        The Modeler is passive — it cannot read the simulation clock (a
        real Modeler has no oracle either); "now" is the time of the most
        recent measurement.  O(1): the MetricsStore tracks it incrementally.
        """
        return self.view.metrics.latest_timestamp()

    # -- availability estimation ------------------------------------------------

    def used_bandwidth(
        self, direction: LinkDirection, timeframe: Timeframe
    ) -> StatMeasure:
        """Externally used bandwidth on a link direction for a timeframe."""
        return self._used_bandwidth(direction, timeframe, None)

    def _used_bandwidth(
        self, direction: LinkDirection, timeframe: Timeframe, now: float | None
    ) -> StatMeasure:
        """Memoised estimate; *now* is hoisted by per-sweep callers."""
        if timeframe.kind is TimeframeKind.STATIC:
            return StatMeasure.constant(0.0)
        if self.enable_cache:
            self._refresh_caches()
            key = (direction.key, timeframe)
            cached = self._bandwidth_cache.get(key)
            if cached is not None:
                self.stats.hit("bandwidth")
                return cached
            self.stats.miss("bandwidth")
        measure = self._compute_used_bandwidth(direction, timeframe, now)
        if self.enable_cache:
            self._bandwidth_cache[(direction.key, timeframe)] = measure
        return measure

    def _compute_used_bandwidth(
        self, direction: LinkDirection, timeframe: Timeframe, now: float | None
    ) -> StatMeasure:
        metrics = self.view.metrics
        link_name, from_node = direction.link.name, direction.src
        if not metrics.has_series(link_name, from_node):
            return StatMeasure.constant(0.0).degraded(UNMEASURED_ACCURACY)
        series = metrics.series(link_name, from_node)
        if series.empty:
            return StatMeasure.constant(0.0).degraded(UNMEASURED_ACCURACY)
        if now is None:
            now = self.now
        if timeframe.kind is TimeframeKind.CURRENT:
            recent = series.window(now - 10 * max(1.0, series.span() / max(1, len(series))), now)
            latest = series.latest_value()
            accuracy = StatMeasure.from_samples(recent).accuracy if recent.size else 0.5
            return StatMeasure.constant(latest).degraded(min(1.0, accuracy))
        if timeframe.kind is TimeframeKind.HISTORY:
            window = series.window(now - timeframe.window, now)
            if window.size == 0:
                return StatMeasure.constant(series.latest_value()).degraded(0.5)
            return StatMeasure.from_samples(window)
        # FUTURE
        predictor = make_predictor(timeframe.predictor, history_window=timeframe.window)
        return predictor.predict(series, now, timeframe.horizon)

    def available_bandwidth(
        self, direction: LinkDirection, timeframe: Timeframe
    ) -> StatMeasure:
        """Capacity minus external use, as a quartile measure."""
        return self._available_bandwidth(direction, timeframe, None)

    def _available_bandwidth(
        self, direction: LinkDirection, timeframe: Timeframe, now: float | None
    ) -> StatMeasure:
        used = self._used_bandwidth(direction, timeframe, now)
        return used.complement_of(direction.capacity)

    def cpu_load(self, host: str, timeframe: Timeframe) -> StatMeasure:
        """CPU utilization (0..1) of a host for a timeframe.

        The paper's "simple interface to computation resources" (§2):
        managed hosts report busy-time counters; unmonitored hosts are
        assumed idle with low accuracy, like unmeasured links.
        """
        node = self.view.topology.node(host)
        if not node.is_compute:
            raise QueryError(f"cpu_load is only defined for compute nodes, not {host!r}")
        if timeframe.kind is TimeframeKind.STATIC:
            return StatMeasure.constant(0.0)
        if self.enable_cache:
            self._refresh_caches()
            key = (host, timeframe)
            cached = self._cpu_cache.get(key)
            if cached is not None:
                self.stats.hit("cpu")
                return cached
            self.stats.miss("cpu")
        measure = self._compute_cpu_load(host, timeframe)
        if self.enable_cache:
            self._cpu_cache[(host, timeframe)] = measure
        return measure

    def _compute_cpu_load(self, host: str, timeframe: Timeframe) -> StatMeasure:
        metrics = self.view.metrics
        if not metrics.has_cpu_series(host):
            return StatMeasure.constant(0.0).degraded(UNMEASURED_ACCURACY)
        series = metrics.cpu_series(host)
        if series.empty:
            return StatMeasure.constant(0.0).degraded(UNMEASURED_ACCURACY)
        now = self.now
        if timeframe.kind is TimeframeKind.CURRENT:
            return StatMeasure.constant(series.latest_value()).degraded(0.9)
        if timeframe.kind is TimeframeKind.HISTORY:
            window = series.window(now - timeframe.window, now)
            if window.size == 0:
                return StatMeasure.constant(series.latest_value()).degraded(0.5)
            return StatMeasure.from_samples(window)
        predictor = make_predictor(timeframe.predictor, history_window=timeframe.window)
        return predictor.predict(series, now, timeframe.horizon)

    def available_capacities(
        self, timeframe: Timeframe, quantile: str = "median"
    ) -> dict[Hashable, float]:
        """Scalar resource capacities for one allocation run.

        Directed links contribute their available bandwidth at *quantile*
        (``"minimum"``/``"q1"``/``"median"``/``"q3"``/``"maximum"``/
        ``"mean"``); finite node crossbars contribute their static internal
        bandwidth (SNMP exposes no crossbar utilization).

        Memoised per ``(generation, timeframe, quantile)``; the six-quantile
        sweep ``flow_info`` runs shares one set of per-direction measures
        through the bandwidth cache.  Callers get their own dict copy.
        """
        if self.enable_cache:
            self._refresh_caches()
            key = (timeframe, quantile)
            cached = self._capacities_cache.get(key)
            if cached is not None:
                self.stats.hit("capacities")
                return dict(cached)
            self.stats.miss("capacities")
        # Hoist "now" out of the per-direction loop: one sweep = one query
        # evaluation time, regardless of caching.
        now = self.now
        capacities: dict[Hashable, float] = {}
        for direction in self.view.topology.iter_directions():
            available = self._available_bandwidth(direction, timeframe, now)
            capacities[direction.key] = getattr(available, quantile)
        for node in self.view.topology.nodes:
            if node.internal_bandwidth != float("inf"):
                capacities[("xbar", node.name)] = node.internal_bandwidth
        if self.enable_cache:
            self._capacities_cache[(timeframe, quantile)] = dict(capacities)
        return capacities

    def resources_for_route(self, src: str, dst: str) -> tuple[Hashable, ...]:
        """Resource keys a flow from *src* to *dst* consumes (memoised)."""
        key = (src, dst)
        cached = self._route_resources.get(key)
        if cached is not None:
            return cached
        route = self.routing.route(src, dst)
        resources: list[Hashable] = [hop.key for hop in route.hops]
        for name in route.node_sequence:
            if self.view.topology.node(name).internal_bandwidth != float("inf"):
                resources.append(("xbar", name))
        result = tuple(resources)
        self._route_resources[key] = result
        return result

    def resources_for_tree(self, src: str, dsts: list[str]) -> tuple[Hashable, ...]:
        """Resource keys a multicast flow consumes: each tree link once."""
        tree = self.routing.multicast_tree(src, list(dsts))
        resources: list[Hashable] = [hop.key for hop in tree.hops]
        for name in tree.nodes:
            if self.view.topology.node(name).internal_bandwidth != float("inf"):
                resources.append(("xbar", name))
        return tuple(resources)

    # -- logical topology ----------------------------------------------------------

    def logical_graph(self, nodes: list[str], timeframe: Timeframe) -> RemosGraph:
        """Build the pruned + collapsed logical topology for *nodes*.

        1. keep only nodes/links on routes among the queried nodes;
        2. collapse chains through degree-2 network nodes into single
           logical links (capacity = min, latency = sum, availability =
           element-wise min along the chain);
        3. annotate everything for *timeframe*.
        """
        topology = self.view.topology
        for name in nodes:
            if not topology.has_node(name):
                raise QueryError(f"unknown node {name!r} in get_graph query")
            if not topology.node(name).is_compute:
                raise QueryError(f"get_graph nodes must be compute nodes; {name!r} is not")
        if not nodes:
            raise QueryError("get_graph requires at least one node")

        # Memoised per (generation, sorted nodes, timeframe).  The query
        # order is part of the answer (RemosGraph.query_nodes), so a hit is
        # only served when the order matches too; callers must treat the
        # returned graph as read-only.
        if self.enable_cache:
            self._refresh_caches()
            key = (tuple(sorted(nodes)), timeframe)
            cached = self._graph_cache.get(key)
            if cached is not None and cached.query_nodes == list(nodes):
                self.stats.hit("graph")
                return cached
            self.stats.miss("graph")
        graph = self._compute_logical_graph(nodes, timeframe)
        if self.enable_cache:
            self._graph_cache[(tuple(sorted(nodes)), timeframe)] = graph
        return graph

    def _compute_logical_graph(
        self, nodes: list[str], timeframe: Timeframe
    ) -> RemosGraph:
        topology = self.view.topology
        now = self.now  # one evaluation time for the whole graph

        # Step 1: union of routing paths.
        keep_nodes: set[str] = set(nodes)
        keep_links: set[str] = set()
        for i, src in enumerate(nodes):
            for dst in nodes[i + 1:]:
                route = self.routing.route(src, dst)
                keep_nodes.update(route.node_sequence)
                keep_links.update(link.name for link in route.links)

        # Chains as link-name paths between "anchor" nodes.  Anchors are the
        # queried nodes, compute nodes, and network nodes with degree != 2
        # within the pruned subgraph.
        adjacency: dict[str, list[str]] = {name: [] for name in keep_nodes}
        for link_name in keep_links:
            link = topology.link(link_name)
            adjacency[link.a].append(link_name)
            adjacency[link.b].append(link_name)

        def is_anchor(name: str) -> bool:
            node = topology.node(name)
            if name in nodes or node.is_compute:
                return True
            if node.internal_bandwidth != float("inf"):
                return True  # finite crossbars must stay visible
            # First-hop routers (serving a kept host directly) stay: the
            # host's access link is behaviour the application observes.
            for link_name in adjacency[name]:
                if topology.node(topology.link(link_name).other(name)).is_compute:
                    return True
            return len(adjacency[name]) != 2

        graph = RemosGraph(list(nodes))
        for name in sorted(keep_nodes):
            if is_anchor(name):
                node = topology.node(name)
                graph.add_node(
                    RemosNode(
                        name=name,
                        kind=node.kind,
                        internal_bandwidth=node.internal_bandwidth,
                        compute_speed=node.compute_speed,
                        memory_bytes=node.memory_bytes,
                    )
                )

        # Step 2: walk chains anchor -> anchor, collapsing pass-through
        # network nodes.
        visited_links: set[str] = set()
        for start in sorted(keep_nodes):
            if not is_anchor(start):
                continue
            for first_link_name in adjacency[start]:
                if first_link_name in visited_links:
                    continue
                chain_links: list[str] = []
                chain_nodes: list[str] = [start]
                current = start
                link_name = first_link_name
                while True:
                    chain_links.append(link_name)
                    link = topology.link(link_name)
                    current = link.other(current)
                    chain_nodes.append(current)
                    if is_anchor(current):
                        break
                    next_links = [l for l in adjacency[current] if l != link_name]
                    assert len(next_links) == 1  # degree-2 non-anchor
                    link_name = next_links[0]
                visited_links.update(chain_links)
                self._add_logical_edge(graph, chain_nodes, chain_links, timeframe, now)
        return graph

    def _add_logical_edge(
        self,
        graph: RemosGraph,
        chain_nodes: list[str],
        chain_links: list[str],
        timeframe: Timeframe,
        now: float | None = None,
    ) -> None:
        topology = self.view.topology
        start, end = chain_nodes[0], chain_nodes[-1]
        links = [topology.link(name) for name in chain_links]
        capacity = min(link.capacity for link in links)
        latency = sum(link.latency for link in links)
        # Availability per direction: element-wise min along the chain.
        available: dict[str, StatMeasure] = {}
        for chain in (chain_nodes, list(reversed(chain_nodes))):
            measure: StatMeasure | None = None
            for a, b in zip(chain, chain[1:]):
                link = next(
                    l for l in links if {l.a, l.b} == {a, b}
                )
                direction = link.direction(a, b)
                step = self._available_bandwidth(direction, timeframe, now)
                measure = step if measure is None else StatMeasure.min_of(measure, step)
            assert measure is not None
            available[chain[0]] = measure
        name = chain_links[0] if len(chain_links) == 1 else f"{start}~{end}"
        if len(chain_links) > 1 and any(e.name == name for e in graph.edges):
            name = f"{name}~{len(graph.edges)}"  # parallel collapsed chains
        graph.add_edge(
            RemosEdge(
                name=name,
                a=start,
                b=end,
                capacity=capacity,
                latency=latency,
                available=available,
                physical_links=tuple(chain_links),
            )
        )
