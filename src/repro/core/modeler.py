"""The Modeler: turns a collector's NetworkView into Remos answers.

"The primary tasks of the modeler are as follows: generating a logical
topology, associating appropriate static and dynamic information with each
of the network components, and satisfying flow requests based on the
logical topology" (§5).  This module implements the first two tasks; flow
satisfaction lives in :mod:`repro.core.api` on top of the availability
estimates produced here.

Estimates are memoised under a **generation stamp**: every answer cached
here is keyed on the view's ``(generation, latest metric timestamp)``, so a
cached answer is exact for its generation and never served across
generations.  Invalidation is **fine-grained**: when the view can account
for a generation step with metrics-only :class:`~repro.collector.ViewDelta`
entries, only the touched resources are evicted — per-direction estimates
additionally carry a ``(series version, evaluation time)`` stamp proving
the summarised window did not move, so untouched entries survive sweeps
bit-for-bit.  Structural deltas (or journal gaps) fall back to the old
drop-everything behaviour.  The staleness contract and the full
performance model are documented in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from typing import Hashable

from repro import obs
from repro.collector.base import NetworkView
from repro.collector.metrics import CPU_PSEUDO_LINK
from repro.core.cachestats import CacheStats
from repro.core.collapse import CollapseTree
from repro.core.evaluator import (
    UNMEASURED_ACCURACY,
    TimeframeEvaluator,
    current_window_width,
)
from repro.core.graph import RemosEdge, RemosGraph, RemosNode
from repro.core.timeframe import Timeframe, TimeframeKind
from repro.net import Hierarchy, HierarchyRefusal, LinkDirection, NodeKind, RoutingTable
from repro.stats import StatMeasure
from repro.util.errors import QueryError, TopologyError

__all__ = ["Modeler", "CapacityView", "UNMEASURED_ACCURACY"]

# ``logical_graph(collapse="auto")`` switches from the flat (exact) path to
# the hierarchical one above this many queried nodes — below it the flat
# graph is cheap and strictly more detailed, and every pre-hierarchy query
# keeps its byte-identical answer.
AUTO_COLLAPSE_THRESHOLD = 64

_log = obs.get_logger("repro.core.modeler")


class _Entry:
    """One cached per-resource measure, stamped for incremental validity.

    ``version`` is the backing series' sample-append counter at compute
    time; ``now_used`` is the evaluation time the summary window was
    anchored at.  A hit is served only when the version still matches and
    (for timeframes whose answer depends on "now") the window provably did
    not move — see ``Modeler._window_unmoved``.
    """

    __slots__ = ("version", "now_used", "measure")

    def __init__(self, version: int, now_used: float, measure: StatMeasure):
        self.version = version
        self.now_used = now_used
        self.measure = measure


class _GraphEntry:
    """A cached logical graph plus what its annotations depend on."""

    __slots__ = ("graph", "link_names", "now_used")

    def __init__(self, graph: RemosGraph, link_names: frozenset, now_used: float):
        self.graph = graph
        self.link_names = link_names
        self.now_used = now_used


class Modeler:
    """Annotates topologies and estimates per-direction availability.

    Parameters
    ----------
    view:
        The collector's current belief about the network.
    routing:
        Routes over ``view.topology`` (built on demand if omitted).
    stats:
        Shared :class:`CacheStats` counters (Remos passes its own so stats
        survive view rebinds); a private instance is created if omitted.
    enable_cache:
        ``False`` recomputes every estimate from the raw series — the cold
        path benchmarks and differential tests compare against.
    """

    def __init__(
        self,
        view: NetworkView,
        routing: RoutingTable | None = None,
        stats: CacheStats | None = None,
        enable_cache: bool = True,
        evaluator: TimeframeEvaluator | None = None,
    ):
        self.view = view
        self.routing = routing or RoutingTable(view.topology)
        self.stats = stats if stats is not None else CacheStats()
        self.enable_cache = enable_cache
        #: The shared timeframe ladder.  Per-epoch object (predictor memo),
        #: but its Backtester is carried across forks like ``stats``.
        self.evaluator = evaluator if evaluator is not None else TimeframeEvaluator()
        self._bandwidth_cache: dict[tuple, _Entry] = {}
        self._cpu_cache: dict[tuple, _Entry] = {}
        self._capacities_cache: dict[tuple, dict[Hashable, float]] = {}
        self._graph_cache: dict[tuple, _GraphEntry] = {}
        # Route → resource-key memo; purely structural (routes + static
        # crossbar finiteness), so it outlives generations and is dropped
        # only when the routing table itself is replaced.
        self._route_resources: dict[tuple[str, str], tuple[Hashable, ...]] = {}
        self._cache_stamp = self._view_stamp()
        # Collapse tree for hierarchical graph queries: built lazily per
        # structure, kept across metrics-only sweeps.  ``_no_hierarchy``
        # memoises a failed build per structure level so auto-mode queries
        # on non-hierarchical topologies pay the inference attempt once.
        self._collapse: CollapseTree | None = None
        self._no_hierarchy: tuple[int, str, str] | None = None
        # Structure level the slow-path fallback warning fired at, so the
        # "whole-network graph went flat" warning is one-time per structure
        # (the counter keeps counting every fallback query).
        self._slow_path_warned: int | None = None
        # Per-epoch array materialisation for the vectorized query path
        # (repro.core.snaparrays); built lazily on first vectorized query.
        self._snaparrays = None
        # Structure level last synchronised against; advancing past it
        # means the topology changed under us (in place), so routing and
        # structural memos must be revalidated even with caching disabled.
        self._seen_structure = view.structure_generation

    # -- generation-stamped cache plumbing --------------------------------------

    def _view_stamp(self) -> tuple[int, float]:
        """The freshness token cached answers are valid for.

        The collector-bumped generation is the primary stamp; the newest
        metric timestamp (O(1)) rides along so even hand-mutated views that
        never bump generations cannot serve stale answers.
        """
        return (self.view.generation, self.view.metrics.latest_timestamp())

    def _refresh_caches(self, force: bool = False) -> None:
        """Synchronise caches with the view's stamps.

        A metrics-only delta chain evicts just the touched entries and
        patches the whole-world ``capacities`` dicts in place (one pass
        through the surviving per-direction cache).  Anything the journal
        cannot vouch for — a structural delta, a gap, a hand bump, a rebind
        — drops every dynamic cache as before.
        """
        stamp = self._view_stamp()
        if not force and stamp == self._cache_stamp:
            return
        chain = None
        if not force and stamp[0] != self._cache_stamp[0]:
            chain = self.view.deltas_since(self._cache_stamp[0])
        if chain is not None and not any(delta.is_structural for delta in chain):
            # Set the stamp first: the capacity-patching path below may
            # re-enter via _used_bandwidth, which must see us up to date.
            self._cache_stamp = stamp
            self._evict_touched(chain)
            return
        self.sync_structure()
        if chain is not None:
            cause = "structural"
        else:
            cause = "rebind" if force else "generation"
        if (
            self._bandwidth_cache
            or self._cpu_cache
            or self._capacities_cache
            or self._graph_cache
        ):
            self.stats.invalidated()
            obs.inc(
                "remos_cache_invalidations_by_cause_total",
                help="Cache-dropping events by cause",
                cause=cause,
            )
            if _log.enabled_for("debug"):
                _log.debug(
                    "cache_invalidated",
                    old_stamp=self._cache_stamp,
                    new_stamp=stamp,
                    cause=cause,
                    entries=len(self._bandwidth_cache)
                    + len(self._cpu_cache)
                    + len(self._capacities_cache)
                    + len(self._graph_cache),
                )
        self._bandwidth_cache.clear()
        self._cpu_cache.clear()
        self._capacities_cache.clear()
        self._graph_cache.clear()
        self._cache_stamp = stamp

    def _evict_touched(self, chain) -> None:
        """Evict exactly the cache entries a metrics-only chain invalidated."""
        touched: set[tuple[str, str]] = set()
        for delta in chain:
            touched |= delta.touched
        cpu_hosts = {src for link, src in touched if link == CPU_PSEUDO_LINK}
        directions = {key for key in touched if key[0] != CPU_PSEUDO_LINK}
        link_names = {link for link, _ in directions}
        evicted = 0
        if directions:
            for key in [
                key
                for key in self._bandwidth_cache
                if (key[0][0], key[0][1]) in directions
            ]:
                del self._bandwidth_cache[key]
                evicted += 1
            for key in [
                key
                for key, entry in self._graph_cache.items()
                if entry.link_names & link_names
            ]:
                del self._graph_cache[key]
                evicted += 1
        if cpu_hosts:
            for key in [key for key in self._cpu_cache if key[0] in cpu_hosts]:
                del self._cpu_cache[key]
                evicted += 1
        evicted += self._patch_capacities()
        self.stats.partially_invalidated(evicted)
        obs.inc(
            "remos_cache_invalidations_by_cause_total",
            help="Cache-dropping events by cause",
            cause="partial",
        )
        obs.inc(
            "remos_cache_entries_evicted_total",
            evicted,
            help="Cache entries evicted by delta-driven partial invalidations",
        )
        if _log.enabled_for("debug"):
            _log.debug(
                "cache_partially_invalidated",
                touched=len(touched),
                evicted=evicted,
                deltas=len(chain),
            )

    def _patch_capacities(self) -> int:
        """Repair cached whole-world capacities dicts in place; returns patches.

        A metrics-only sweep changes at most the touched directions plus any
        untouched direction whose summary window shifted when the evaluation
        clock advanced — exactly the directions whose bandwidth-cache slot
        fails validation.  One pass over the directions recomputes those and
        patches every cached ``(timeframe, quantile)`` dict, so steady-state
        allocation runs keep hitting the capacities cache instead of
        re-deriving the whole world from the per-direction entries.
        """
        if not self._capacities_cache:
            return 0
        by_timeframe: dict[Timeframe, list[str]] = {}
        for timeframe, quantile in self._capacities_cache:
            by_timeframe.setdefault(timeframe, []).append(quantile)
        now = self.now
        patched = 0
        for timeframe, quantiles in by_timeframe.items():
            if timeframe.kind is TimeframeKind.STATIC:
                continue  # capacity-only: no metric dependence
            for direction in self.view.topology.iter_directions():
                entry = self._bandwidth_cache.get((direction.key, timeframe))
                if entry is not None and (
                    self._validate_entry(
                        entry,
                        direction.link.name,
                        direction.src,
                        timeframe,
                        now,
                    )
                    is not None
                ):
                    continue
                available = self._available_bandwidth(direction, timeframe, now)
                for quantile in quantiles:
                    self._capacities_cache[(timeframe, quantile)][
                        direction.key
                    ] = getattr(available, quantile)
                patched += 1
        return patched

    def sync_structure(self) -> None:
        """Revalidate routing after an in-place structure change.

        Collectors since the incremental rework mutate the view's topology
        **in place** (same view object, new ``structure_generation``), so
        the rebind path never sees them; every routing-dependent entry
        point calls this instead.  O(1) while the structure level is
        unchanged.  The routing table is kept when the rebuilt topology is
        structurally identical (rebased onto the new object), else rebuilt,
        dropping the route-resource memo with it.
        """
        if self.view.structure_generation == self._seen_structure:
            return
        if not self.routing.is_valid_for(self.view.topology):
            self.routing = RoutingTable(self.view.topology)
            self.stats.routing_rebuilds += 1
            self._route_resources.clear()
        elif self.routing.topology is not self.view.topology:
            self.routing.rebase(self.view.topology)
        self._sync_collapse()
        self._seen_structure = self.view.structure_generation

    def _sync_collapse(self) -> None:
        """Keep or drop the collapse tree after a (possible) structure change."""
        self._no_hierarchy = None
        if self._collapse is None:
            return
        if not self._collapse.is_valid_for(self.view.topology):
            self._collapse = None
        elif self._collapse.topology is not self.view.topology:
            self._collapse.rebase(self.view.topology)

    def _validate_entry(
        self,
        entry: _Entry,
        link_name: str,
        from_node: str,
        timeframe: Timeframe,
        now: float,
    ) -> StatMeasure | None:
        """The cached measure if still exact at *now*, else None.

        Exactness needs two things: the backing series has not grown
        (version stamp), and — when the evaluation time moved without the
        series growing, i.e. some *other* resource was swept — this entry's
        summary window did not shift over any retained sample.  A validated
        entry is restamped to *now*, keeping later checks O(1).
        """
        if entry.version != self.view.metrics.version(link_name, from_node):
            return None
        if now != entry.now_used:
            if not self._window_unmoved(
                link_name, from_node, timeframe, entry.now_used, now
            ):
                return None
            entry.now_used = now
        return entry.measure

    def _window_unmoved(
        self,
        link_name: str,
        from_node: str,
        timeframe: Timeframe,
        now_used: float,
        now: float,
    ) -> bool:
        """True when moving evaluation time ``now_used -> now`` provably
        leaves the *unchanged* series' summary for *timeframe* intact.

        FUTURE predictions are anchored at "now", so they never survive a
        time shift — the evaluation clock advancing (any series swept)
        moves the forecast interval, and the cached measure must be
        recomputed even though this series gained no samples.  CURRENT and
        HISTORY answers depend only on the latest value (unchanged by
        assumption) and a trailing window's contents; the window's width
        is fixed given the series (CURRENT's accuracy window is
        ``current_window_width`` for every series, CPU included, since the
        accuracy-unification), so the summary changes only if a sample
        ages out — i.e. some retained sample falls in
        ``[old floor, new floor)``.
        """
        kind = timeframe.kind
        if kind is TimeframeKind.STATIC:
            return True
        if kind is TimeframeKind.FUTURE:
            return False
        metrics = self.view.metrics
        if not metrics.has_series(link_name, from_node):
            return True  # assumed-idle constant; time-independent
        series = metrics.series(link_name, from_node)
        if series.empty:
            return True
        if kind is TimeframeKind.CURRENT:
            width = current_window_width(series)
        else:  # HISTORY
            width = timeframe.window
        return not series.has_sample_in(now_used - width, now - width)

    def rebind(self, view: NetworkView) -> None:
        """Adopt a refreshed collector view without rebuilding the world.

        The routing table survives whenever the topology is unchanged —
        the common case, since collectors mutate metrics in place between
        discovery sweeps — and all dynamic caches are dropped
        unconditionally (the new view object may carry an equal generation
        number yet different data).
        """
        if view is self.view:
            return
        with obs.span("modeler.refresh") as sp:
            rebuilt = not self.routing.is_valid_for(view.topology)
            if rebuilt:
                self.routing = RoutingTable(view.topology)
                self.stats.routing_rebuilds += 1
                self._route_resources.clear()
            elif self.routing.topology is not view.topology:
                # Structurally identical rebuild: keep the table, re-point
                # it so later validity checks are O(1) identity again.
                self.routing.rebase(view.topology)
            self.view = view
            self._sync_collapse()
            self._seen_structure = view.structure_generation
            self._refresh_caches(force=True)
            if sp:
                sp.set(generation=view.generation, routing_rebuilt=rebuilt)
        if _log.enabled_for("info"):
            _log.info(
                "view_rebound",
                generation=view.generation,
                routing_rebuilt=rebuilt,
                nodes=len(view.topology.nodes),
            )

    def fork(self, view: NetworkView) -> "Modeler":
        """A successor Modeler bound to *view*, inheriting warm caches.

        Snapshot publication calls this **writer-side**: the previous
        epoch's Modeler stays untouched (readers may still be traversing
        it) while the child adopts its memoised state against the freshly
        frozen *view*.  Semantics mirror :meth:`rebind` + the incremental
        eviction a first query used to perform, moved before publication:

        * the routing table (and the structural route-resource memo) is
          **shared** with the parent when the topology is structurally
          unchanged — rebased for the O(1) identity fast path — and rebuilt
          (counting ``stats.routing_rebuilds``) otherwise;
        * per-entry cache wrappers are **copied** (the immutable measures
          and graphs inside are shared): entry revalidation restamps
          ``now_used`` in place, and two epochs evaluate at different
          "now"s, so wrappers must never be shared across snapshots;
        * when *view*'s journal can vouch for the step as metrics-only,
          the copied caches are reconciled immediately (same partial
          eviction + capacity patching as before); otherwise the child
          starts cold, exactly like the legacy rebind.

        Readers of the published child therefore only ever *fill* caches —
        no eviction, no restamping hazards — because a frozen view's stamp
        never moves again.
        """
        child = Modeler.__new__(Modeler)
        child.view = view
        child.stats = self.stats
        child.enable_cache = self.enable_cache
        # Fresh per-epoch evaluator sharing the parent's Backtester, so
        # forecast accuracy keeps accruing across snapshot publications.
        child.evaluator = self.evaluator.fork()
        if self.routing.is_valid_for(view.topology):
            child.routing = self.routing
            if self.routing.topology is not view.topology:
                self.routing.rebase(view.topology)
            # Shared on purpose: purely structural, identical for both
            # epochs, and concurrent fills insert identical tuples.
            child._route_resources = self._route_resources
        else:
            child.routing = RoutingTable(view.topology)
            self.stats.routing_rebuilds += 1
            child._route_resources = {}
        # The collapse tree is likewise shared when still valid: immutable
        # per-epoch state apart from the rebase pointer swap, so readers of
        # both epochs can traverse it concurrently.
        child._collapse = None
        child._no_hierarchy = None
        # Carried so the flat-fallback warning stays one-time across epochs
        # of the same structure.
        child._slow_path_warned = self._slow_path_warned
        # Array materialisation is cheap to rebuild and partly dynamic;
        # each epoch's modeler starts with a fresh one.
        child._snaparrays = None
        if self._collapse is not None and self._collapse.is_valid_for(view.topology):
            if self._collapse.topology is not view.topology:
                self._collapse.rebase(view.topology)
            child._collapse = self._collapse
        child._seen_structure = view.structure_generation
        child._cache_stamp = self._cache_stamp

        stamp = (view.generation, view.metrics.latest_timestamp())
        carry = self.enable_cache and stamp == self._cache_stamp
        chain = None
        if self.enable_cache and not carry and stamp[0] != self._cache_stamp[0]:
            chain = view.deltas_since(self._cache_stamp[0])
            carry = chain is not None and not any(d.is_structural for d in chain)
        if carry:
            child._bandwidth_cache = {
                key: _Entry(entry.version, entry.now_used, entry.measure)
                for key, entry in self._bandwidth_cache.items()
            }
            child._cpu_cache = {
                key: _Entry(entry.version, entry.now_used, entry.measure)
                for key, entry in self._cpu_cache.items()
            }
            child._capacities_cache = {
                key: dict(capacities)
                for key, capacities in self._capacities_cache.items()
            }
            child._graph_cache = {
                key: _GraphEntry(entry.graph, entry.link_names, entry.now_used)
                for key, entry in self._graph_cache.items()
            }
            # Reconcile against the frozen stamps now, so the partial
            # eviction (and its stats) happens before publication.
            child._refresh_caches()
        else:
            child._bandwidth_cache = {}
            child._cpu_cache = {}
            child._capacities_cache = {}
            child._graph_cache = {}
            child._cache_stamp = stamp
            if (
                self._bandwidth_cache
                or self._cpu_cache
                or self._capacities_cache
                or self._graph_cache
            ):
                cause = "structural" if chain is not None else "generation"
                self.stats.invalidated()
                obs.inc(
                    "remos_cache_invalidations_by_cause_total",
                    help="Cache-dropping events by cause",
                    cause=cause,
                )
        return child

    @property
    def now(self) -> float:
        """Query-evaluation time: the newest timestamp the metrics contain.

        The Modeler is passive — it cannot read the simulation clock (a
        real Modeler has no oracle either); "now" is the time of the most
        recent measurement.  O(1): the MetricsStore tracks it incrementally.
        """
        return self.view.metrics.latest_timestamp()

    # -- availability estimation ------------------------------------------------

    def used_bandwidth(
        self, direction: LinkDirection, timeframe: Timeframe
    ) -> StatMeasure:
        """Externally used bandwidth on a link direction for a timeframe."""
        return self._used_bandwidth(direction, timeframe, None)

    def _used_bandwidth(
        self, direction: LinkDirection, timeframe: Timeframe, now: float | None
    ) -> StatMeasure:
        """Memoised estimate; *now* is hoisted by per-sweep callers."""
        if timeframe.kind is TimeframeKind.STATIC:
            return StatMeasure.constant(0.0)
        link_name, from_node = direction.link.name, direction.src
        if self.enable_cache:
            self._refresh_caches()
            if now is None:
                now = self.now
            key = (direction.key, timeframe)
            entry = self._bandwidth_cache.get(key)
            if entry is not None:
                measure = self._validate_entry(
                    entry, link_name, from_node, timeframe, now
                )
                if measure is not None:
                    self.stats.hit("bandwidth")
                    return measure
            self.stats.miss("bandwidth")
        measure = self._compute_used_bandwidth(direction, timeframe, now)
        if self.enable_cache:
            self._bandwidth_cache[(direction.key, timeframe)] = _Entry(
                self.view.metrics.version(link_name, from_node), now, measure
            )
        return measure

    def _compute_used_bandwidth(
        self, direction: LinkDirection, timeframe: Timeframe, now: float | None
    ) -> StatMeasure:
        """Delegate to the shared evaluator (see :mod:`repro.core.evaluator`)."""
        metrics = self.view.metrics
        link_name, from_node = direction.link.name, direction.src
        series = (
            metrics.series(link_name, from_node)
            if metrics.has_series(link_name, from_node)
            else None
        )
        if now is None:
            now = self.now
        return self.evaluator.evaluate((link_name, from_node), series, timeframe, now)

    def available_bandwidth(
        self, direction: LinkDirection, timeframe: Timeframe
    ) -> StatMeasure:
        """Capacity minus external use, as a quartile measure."""
        return self._available_bandwidth(direction, timeframe, None)

    def _available_bandwidth(
        self, direction: LinkDirection, timeframe: Timeframe, now: float | None
    ) -> StatMeasure:
        used = self._used_bandwidth(direction, timeframe, now)
        return used.complement_of(direction.capacity)

    def cpu_load(self, host: str, timeframe: Timeframe) -> StatMeasure:
        """CPU utilization (0..1) of a host for a timeframe.

        The paper's "simple interface to computation resources" (§2):
        managed hosts report busy-time counters; unmonitored hosts are
        assumed idle with low accuracy, like unmeasured links.
        """
        node = self.view.topology.node(host)
        if not node.is_compute:
            raise QueryError(f"cpu_load is only defined for compute nodes, not {host!r}")
        if timeframe.kind is TimeframeKind.STATIC:
            return StatMeasure.constant(0.0)
        if self.enable_cache:
            self._refresh_caches()
            now = self.now
            key = (host, timeframe)
            entry = self._cpu_cache.get(key)
            if entry is not None:
                measure = self._validate_entry(
                    entry, CPU_PSEUDO_LINK, host, timeframe, now
                )
                if measure is not None:
                    self.stats.hit("cpu")
                    return measure
            self.stats.miss("cpu")
        measure = self._compute_cpu_load(host, timeframe)
        if self.enable_cache:
            self._cpu_cache[(host, timeframe)] = _Entry(
                self.view.metrics.version(CPU_PSEUDO_LINK, host), self.now, measure
            )
        return measure

    def _compute_cpu_load(self, host: str, timeframe: Timeframe) -> StatMeasure:
        """Delegate to the shared evaluator: CPU series ride the same
        ladder as bandwidth (including the unified CURRENT accuracy rule
        and the forecast plane) under the CPU pseudo-link key."""
        metrics = self.view.metrics
        series = metrics.cpu_series(host) if metrics.has_cpu_series(host) else None
        return self.evaluator.evaluate(
            (CPU_PSEUDO_LINK, host), series, timeframe, self.now
        )

    def available_capacities(
        self, timeframe: Timeframe, quantile: str = "median"
    ) -> dict[Hashable, float]:
        """Scalar resource capacities for one allocation run.

        Directed links contribute their available bandwidth at *quantile*
        (``"minimum"``/``"q1"``/``"median"``/``"q3"``/``"maximum"``/
        ``"mean"``); finite node crossbars contribute their static internal
        bandwidth (SNMP exposes no crossbar utilization).

        Memoised per ``(timeframe, quantile)``; the six-quantile sweep
        ``flow_info`` runs shares one set of per-direction measures through
        the bandwidth cache, and the dicts survive metrics-only sweeps —
        ``_patch_capacities`` repairs just the stale slots.  Callers get
        their own dict copy.
        """
        if self.enable_cache:
            self._refresh_caches()
            key = (timeframe, quantile)
            cached = self._capacities_cache.get(key)
            if cached is not None:
                self.stats.hit("capacities")
                return dict(cached)
            self.stats.miss("capacities")
        # Hoist "now" out of the per-direction loop: one sweep = one query
        # evaluation time, regardless of caching.
        now = self.now
        capacities: dict[Hashable, float] = {}
        for direction in self.view.topology.iter_directions():
            available = self._available_bandwidth(direction, timeframe, now)
            capacities[direction.key] = getattr(available, quantile)
        for node in self.view.topology.nodes:
            if node.internal_bandwidth != float("inf"):
                capacities[("xbar", node.name)] = node.internal_bandwidth
        if self.enable_cache:
            self._capacities_cache[(timeframe, quantile)] = dict(capacities)
        return capacities

    def capacity_view(self, timeframe: Timeframe, quantile: str = "median") -> "CapacityView":
        """A lazy view of :meth:`available_capacities` for one quantile.

        Flow and admission queries only ever read the resources their
        flows cross; the view computes exactly those on demand — values
        bit-identical to the eager whole-network dict — so per-query cost
        scales with the flows, not with the network (see
        ``docs/TOPOLOGIES.md``).  When the eager dict happens to be warm
        in the capacities cache it is served directly.
        """
        return CapacityView(self, timeframe, quantile)

    def snapshot_arrays(self):
        """The per-epoch :class:`~repro.core.snaparrays.SnapshotArrays`.

        Lazily built (numpy paths only) and revalidated against in-place
        structural change; a published snapshot's modeler keeps one for
        its lifetime, shared by all reader threads.
        """
        from repro.core.snaparrays import SnapshotArrays

        arrays = self._snaparrays
        if arrays is None:
            arrays = self._snaparrays = SnapshotArrays(self)
        arrays.sync()
        return arrays

    def resources_for_route(self, src: str, dst: str) -> tuple[Hashable, ...]:
        """Resource keys a flow from *src* to *dst* consumes (memoised)."""
        self.sync_structure()
        key = (src, dst)
        cached = self._route_resources.get(key)
        if cached is not None:
            return cached
        route = self.routing.route(src, dst)
        resources: list[Hashable] = [hop.key for hop in route.hops]
        for name in route.node_sequence:
            if self.view.topology.node(name).internal_bandwidth != float("inf"):
                resources.append(("xbar", name))
        result = tuple(resources)
        self._route_resources[key] = result
        return result

    def resources_for_tree(self, src: str, dsts: list[str]) -> tuple[Hashable, ...]:
        """Resource keys a multicast flow consumes: each tree link once."""
        self.sync_structure()
        tree = self.routing.multicast_tree(src, list(dsts))
        resources: list[Hashable] = [hop.key for hop in tree.hops]
        for name in tree.nodes:
            if self.view.topology.node(name).internal_bandwidth != float("inf"):
                resources.append(("xbar", name))
        return tuple(resources)

    # -- logical topology ----------------------------------------------------------

    def collapse_tree(self) -> CollapseTree:
        """The hierarchical collapse tree for the current structure.

        Built lazily from the topology's attached hierarchy (or one
        inferred from its shape), kept across metrics-only sweeps and
        shared across snapshot epochs like the routing table.  Raises
        :class:`TopologyError` when the topology is not hierarchical; the
        failure is memoised per structure level so repeated auto-mode
        queries pay the inference attempt once.
        """
        self.sync_structure()
        if self._collapse is not None:
            return self._collapse
        structure = self.view.structure_generation
        if self._no_hierarchy is not None and self._no_hierarchy[0] == structure:
            _, reason, message = self._no_hierarchy
            raise HierarchyRefusal(message, reason)
        topology = self.view.topology
        try:
            hierarchy = topology.hierarchy or Hierarchy.infer(topology)
            tree = CollapseTree(topology, hierarchy)
        except TopologyError as exc:
            # Memoise the *reason* alongside the message: plain
            # TopologyErrors (e.g. CollapseTree validation) degrade to the
            # catch-all code so the re-raise is always a HierarchyRefusal.
            reason = getattr(exc, "reason", "not-hierarchical")
            self._no_hierarchy = (structure, reason, str(exc))
            raise
        self._collapse = tree
        return tree

    def _note_slow_path(self, node_count: int, exc: TopologyError) -> None:
        """Record an auto-mode graph query falling back to the flat path.

        Counts every fallback query (``remos_graph_slow_path_total``,
        labelled by refusal reason) and emits one structured warning per
        topology structure — the "whole-network get_graph went flat"
        regression used to be silent (ROADMAP "Known soft spot").
        """
        reason = getattr(exc, "reason", "not-hierarchical")
        obs.inc(
            "remos_graph_slow_path_total",
            help="Whole-network graph queries answered on the flat (non-hierarchical) slow path",
            reason=reason,
        )
        structure = self.view.structure_generation
        if self._slow_path_warned == structure:
            return
        self._slow_path_warned = structure
        if _log.enabled_for("warning"):
            _log.warning(
                "graph_slow_path",
                nodes=node_count,
                reason=reason,
                detail=str(exc),
                structure_generation=structure,
            )

    def logical_graph(
        self,
        nodes: list[str],
        timeframe: Timeframe,
        collapse: str = "auto",
        include: tuple[str, ...] = (),
    ) -> RemosGraph:
        """Build the pruned + collapsed logical topology for *nodes*.

        The flat path (the original algorithm):

        1. keep only nodes/links on routes among the queried nodes;
        2. collapse chains through degree-2 network nodes into single
           logical links (capacity = min, latency = sum, availability =
           element-wise min along the chain);
        3. annotate everything for *timeframe*.

        The hierarchical path rolls whole switch groups up into aggregate
        nodes via the collapse tree instead (see
        :meth:`_compute_hier_graph`).  *collapse* selects between them:
        ``"flat"`` / ``"hier"`` force a path (``"hier"`` raises
        :class:`QueryError` on non-hierarchical topologies); ``"auto"``
        (default) uses the hierarchy only above
        ``AUTO_COLLAPSE_THRESHOLD`` queried nodes, so small queries keep
        their byte-identical flat answers.

        *include* lists extra nodes (any kind — the federation layer
        passes border gateways) routed into the flat graph as anchors
        without appearing in ``query_nodes``.  Only the flat path
        composes this way, so ``include`` requires ``collapse="flat"``.
        """
        if collapse not in ("auto", "flat", "hier"):
            raise QueryError(f"unknown collapse mode {collapse!r}")
        include = tuple(include)
        if include and collapse != "flat":
            raise QueryError("include nodes require collapse='flat'")
        self.sync_structure()
        topology = self.view.topology
        for name in nodes:
            if not topology.has_node(name):
                raise QueryError(f"unknown node {name!r} in get_graph query")
            if not topology.node(name).is_compute:
                raise QueryError(f"get_graph nodes must be compute nodes; {name!r} is not")
        for name in include:
            if not topology.has_node(name):
                raise QueryError(f"unknown include node {name!r} in get_graph query")
        if not nodes:
            raise QueryError("get_graph requires at least one node")
        mode = "flat"
        if collapse == "hier":
            try:
                self.collapse_tree()
            except TopologyError as exc:
                raise QueryError(f"hierarchical collapse unavailable: {exc}") from None
            mode = "hier"
        elif collapse == "auto" and len(nodes) > AUTO_COLLAPSE_THRESHOLD:
            try:
                self.collapse_tree()
                mode = "hier"
            except TopologyError as exc:
                mode = "flat"
                self._note_slow_path(len(nodes), exc)

        # Memoised per (generation, sorted nodes, timeframe, mode).  The
        # query order is part of the answer (RemosGraph.query_nodes), so a
        # hit is only served when the order matches too; callers must treat
        # the returned graph as read-only.  Partial invalidation already
        # evicted graphs over touched links; a hit whose evaluation time
        # moved (other resources swept) must still prove each annotated
        # direction's window did not shift.
        if self.enable_cache:
            self._refresh_caches()
            now = self.now
            key = (tuple(sorted(nodes)), timeframe, mode, include)
            entry = self._graph_cache.get(key)
            if entry is not None and entry.graph.query_nodes == list(nodes):
                if self._validate_graph(entry, timeframe, now):
                    self.stats.hit("graph")
                    return entry.graph
            self.stats.miss("graph")
        if mode == "hier":
            graph = self._compute_hier_graph(nodes, timeframe)
        else:
            graph = self._compute_logical_graph(nodes, timeframe, include)
        if self.enable_cache:
            link_names = frozenset(
                name for edge in graph.edges for name in edge.physical_links
            )
            self._graph_cache[
                (tuple(sorted(nodes)), timeframe, mode, include)
            ] = _GraphEntry(graph, link_names, self.now)
        return graph

    def _validate_graph(
        self, entry: _GraphEntry, timeframe: Timeframe, now: float
    ) -> bool:
        """True while the cached graph's annotations are exact at *now*."""
        if now == entry.now_used:
            return True
        topology = self.view.topology
        for name in entry.link_names:
            link = topology.link(name)
            for src in (link.a, link.b):
                if not self._window_unmoved(
                    name, src, timeframe, entry.now_used, now
                ):
                    return False
        entry.now_used = now
        return True

    def _compute_logical_graph(
        self, nodes: list[str], timeframe: Timeframe, include: tuple[str, ...] = ()
    ) -> RemosGraph:
        topology = self.view.topology
        now = self.now  # one evaluation time for the whole graph

        # Step 1: union of routing paths.  ``include`` nodes participate in
        # the route union and stay visible as anchors, but are not query
        # nodes of the result.
        route_nodes = list(nodes) + [n for n in include if n not in nodes]
        anchor_names = set(route_nodes)
        keep_nodes: set[str] = set(route_nodes)
        keep_links: set[str] = set()
        for i, src in enumerate(route_nodes):
            for dst in route_nodes[i + 1:]:
                route = self.routing.route(src, dst)
                keep_nodes.update(route.node_sequence)
                keep_links.update(link.name for link in route.links)

        # Chains as link-name paths between "anchor" nodes.  Anchors are the
        # queried nodes, compute nodes, and network nodes with degree != 2
        # within the pruned subgraph.
        adjacency: dict[str, list[str]] = {name: [] for name in keep_nodes}
        for link_name in keep_links:
            link = topology.link(link_name)
            adjacency[link.a].append(link_name)
            adjacency[link.b].append(link_name)

        def is_anchor(name: str) -> bool:
            node = topology.node(name)
            if name in anchor_names or node.is_compute:
                return True
            if node.internal_bandwidth != float("inf"):
                return True  # finite crossbars must stay visible
            # First-hop routers (serving a kept host directly) stay: the
            # host's access link is behaviour the application observes.
            for link_name in adjacency[name]:
                if topology.node(topology.link(link_name).other(name)).is_compute:
                    return True
            return len(adjacency[name]) != 2

        graph = RemosGraph(list(nodes))
        for name in sorted(keep_nodes):
            if is_anchor(name):
                node = topology.node(name)
                graph.add_node(
                    RemosNode(
                        name=name,
                        kind=node.kind,
                        internal_bandwidth=node.internal_bandwidth,
                        compute_speed=node.compute_speed,
                        memory_bytes=node.memory_bytes,
                    )
                )

        # Step 2: walk chains anchor -> anchor, collapsing pass-through
        # network nodes.
        visited_links: set[str] = set()
        for start in sorted(keep_nodes):
            if not is_anchor(start):
                continue
            for first_link_name in adjacency[start]:
                if first_link_name in visited_links:
                    continue
                chain_links: list[str] = []
                chain_nodes: list[str] = [start]
                current = start
                link_name = first_link_name
                while True:
                    chain_links.append(link_name)
                    link = topology.link(link_name)
                    current = link.other(current)
                    chain_nodes.append(current)
                    if is_anchor(current):
                        break
                    next_links = [l for l in adjacency[current] if l != link_name]
                    assert len(next_links) == 1  # degree-2 non-anchor
                    link_name = next_links[0]
                visited_links.update(chain_links)
                self._add_logical_edge(graph, chain_nodes, chain_links, timeframe, now)
        return graph

    def _add_logical_edge(
        self,
        graph: RemosGraph,
        chain_nodes: list[str],
        chain_links: list[str],
        timeframe: Timeframe,
        now: float | None = None,
    ) -> None:
        topology = self.view.topology
        start, end = chain_nodes[0], chain_nodes[-1]
        links = [topology.link(name) for name in chain_links]
        capacity = min(link.capacity for link in links)
        latency = sum(link.latency for link in links)
        # Availability per direction: element-wise min along the chain.
        available: dict[str, StatMeasure] = {}
        for chain in (chain_nodes, list(reversed(chain_nodes))):
            measure: StatMeasure | None = None
            for a, b in zip(chain, chain[1:]):
                link = next(
                    l for l in links if {l.a, l.b} == {a, b}
                )
                direction = link.direction(a, b)
                step = self._available_bandwidth(direction, timeframe, now)
                measure = step if measure is None else StatMeasure.min_of(measure, step)
            assert measure is not None
            available[chain[0]] = measure
        name = chain_links[0] if len(chain_links) == 1 else f"{start}~{end}"
        if len(chain_links) > 1 and any(e.name == name for e in graph.edges):
            name = f"{name}~{len(graph.edges)}"  # parallel collapsed chains
        graph.add_edge(
            RemosEdge(
                name=name,
                a=start,
                b=end,
                capacity=capacity,
                latency=latency,
                available=available,
                physical_links=tuple(chain_links),
            )
        )

    def _compute_hier_graph(
        self, nodes: list[str], timeframe: Timeframe
    ) -> RemosGraph:
        """The multi-resolution logical graph driven by the collapse tree.

        Queried hosts and their ToR groups appear exactly; above them only
        the groups up to the queried set's lowest common ancestor appear,
        each as one node (the member switch itself for singleton groups,
        an ``agg:<group>`` aggregate otherwise) joined by bundle edges
        (capacity = sum of member links, latency = min, availability =
        element-wise min over member directions — the conservative
        single-flow roll-up).  Cost is O(queried hosts + bundle members on
        their ancestor paths), independent of total host count.
        """
        tree = self.collapse_tree()
        hierarchy = tree.hierarchy
        topology = self.view.topology
        now = self.now
        by_tor: dict[str, list[str]] = {}
        for name in nodes:
            gid = hierarchy.host_group.get(name)
            if gid is None:  # pragma: no cover - collapse_tree places all hosts
                raise QueryError(f"host {name!r} is not placed in the hierarchy")
            by_tor.setdefault(gid, []).append(name)
        # Groups to expand: each queried ToR's ancestor chain, truncated at
        # the first level every chain shares (the LCA).  A single-ToR query
        # therefore shows just that ToR; a cross-pod query shows the pods
        # and the core.
        paths = [hierarchy.path_from(gid) for gid in sorted(by_tor)]
        if len(paths) == 1:
            cut = 0
        else:
            cut = next(
                i for i in range(len(paths[0])) if len({p[i] for p in paths}) == 1
            )
        included: list[str] = []
        seen: set[str] = set()
        for path in paths:
            for gid in path[: cut + 1]:
                if gid not in seen:
                    seen.add(gid)
                    included.append(gid)
        graph = RemosGraph(list(nodes))
        graph.collapse = "hier"
        for name in sorted(set(nodes)):
            node = topology.node(name)
            graph.add_node(
                RemosNode(
                    name=name,
                    kind=node.kind,
                    internal_bandwidth=node.internal_bandwidth,
                    compute_speed=node.compute_speed,
                    memory_bytes=node.memory_bytes,
                )
            )
        node_names: dict[str, str] = {}
        for gid in included:
            group = hierarchy.groups[gid]
            label = tree.node_name(gid)
            node_names[gid] = label
            if len(group.members) == 1:
                member = topology.node(group.members[0])
                graph.add_node(
                    RemosNode(
                        name=label,
                        kind=member.kind,
                        internal_bandwidth=member.internal_bandwidth,
                        compute_speed=member.compute_speed,
                        memory_bytes=member.memory_bytes,
                    )
                )
            else:
                # Parallel crossbars sum (any infinite member keeps it inf).
                internal = sum(
                    topology.node(m).internal_bandwidth for m in group.members
                )
                graph.add_node(
                    RemosNode(
                        name=label,
                        kind=NodeKind.NETWORK,
                        internal_bandwidth=internal,
                        aggregate=True,
                        member_count=len(group.members),
                    )
                )
        # Access links stay physical: exact names, capacities, availability.
        for gid in sorted(by_tor):
            tor_label = node_names[gid]
            for host in sorted(set(by_tor[gid])):
                access = tree.access[host]
                for link_name in access.links:
                    link = topology.link(link_name)
                    outbound = link.direction(host, access.switch)
                    inbound = link.direction(access.switch, host)
                    graph.add_edge(
                        RemosEdge(
                            name=link_name,
                            a=host,
                            b=tor_label,
                            capacity=link.capacity,
                            latency=link.latency,
                            available={
                                host: self._available_bandwidth(
                                    outbound, timeframe, now
                                ),
                                tor_label: self._available_bandwidth(
                                    inbound, timeframe, now
                                ),
                            },
                            physical_links=(link_name,),
                        )
                    )
        for gid in included:
            parent = hierarchy.groups[gid].parent
            if parent is None or parent not in node_names:
                continue
            self._add_bundle_edge(graph, tree, gid, parent, node_names, timeframe, now)
        return graph

    def _add_bundle_edge(
        self,
        graph: RemosGraph,
        tree: CollapseTree,
        child: str,
        parent: str,
        node_names: dict[str, str],
        timeframe: Timeframe,
        now: float,
    ) -> None:
        """One logical edge rolling up every physical link child -> parent."""
        topology = self.view.topology
        members = tree.bundles[(child, parent)]
        child_label, parent_label = node_names[child], node_names[parent]
        up: StatMeasure | None = None
        down: StatMeasure | None = None
        for link_name, child_end, parent_end in members:
            link = topology.link(link_name)
            u = self._available_bandwidth(
                link.direction(child_end, parent_end), timeframe, now
            )
            d = self._available_bandwidth(
                link.direction(parent_end, child_end), timeframe, now
            )
            up = u if up is None else StatMeasure.min_of(up, u)
            down = d if down is None else StatMeasure.min_of(down, d)
        assert up is not None and down is not None
        name = members[0][0] if len(members) == 1 else f"{child_label}~{parent_label}"
        graph.add_edge(
            RemosEdge(
                name=name,
                a=child_label,
                b=parent_label,
                capacity=tree.bundle_capacity[(child, parent)],
                latency=tree.bundle_latency[(child, parent)],
                available={child_label: up, parent_label: down},
                physical_links=tuple(member[0] for member in members),
            )
        )


class CapacityView:
    """Lazy stand-in for one ``available_capacities(timeframe, quantile)`` dict.

    Supports exactly the read protocol the allocation paths use (``in``,
    ``[]``, ``.get``); each value is computed on first access from the same
    memoised per-direction estimates the eager dict would read, so every
    value served is bit-identical to the eager dict's entry for that key.
    Absent keys stay absent: infinite crossbars are not materialised, and
    unknown resources miss exactly like a dict.  When the eager dict is
    already warm in the capacities cache it is served directly.

    A view is a per-query object: it pins the evaluation time at
    construction (one query, one "now") and must not be kept across sweeps.
    """

    __slots__ = ("_modeler", "_timeframe", "_quantile", "_now", "_memo", "_full")

    def __init__(self, modeler: Modeler, timeframe: Timeframe, quantile: str):
        self._modeler = modeler
        self._timeframe = timeframe
        self._quantile = quantile
        self._full: dict[Hashable, float] | None = None
        if modeler.enable_cache:
            modeler._refresh_caches()
            self._full = modeler._capacities_cache.get((timeframe, quantile))
        self._now = modeler.now
        self._memo: dict[Hashable, float] = {}

    def __getitem__(self, key: Hashable) -> float:
        if self._full is not None:
            return self._full[key]
        memo = self._memo
        if key in memo:
            return memo[key]
        value = self._compute(key)  # raises KeyError when absent
        memo[key] = value
        return value

    def _compute(self, key: Hashable) -> float:
        topology = self._modeler.view.topology
        try:
            if isinstance(key, tuple) and len(key) == 2 and key[0] == "xbar":
                bandwidth = topology.node(key[1]).internal_bandwidth
                if bandwidth == float("inf"):
                    raise KeyError(key)  # the eager dict omits infinite crossbars
                return bandwidth
            link_name, src, dst = key  # type: ignore[misc]
            direction = topology.link(link_name).direction(src, dst)
        except (TopologyError, TypeError, ValueError):
            raise KeyError(key) from None
        measure = self._modeler._available_bandwidth(
            direction, self._timeframe, self._now
        )
        return getattr(measure, self._quantile)

    def get(self, key: Hashable, default=None):
        """Dict-style lookup with a default, as ``admission_report`` uses."""
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: Hashable) -> bool:
        if self._full is not None:
            return key in self._full
        try:
            self[key]
            return True
        except KeyError:
            return False
