"""Query timeframes.

"Queries may be made in the context of invariant physical capacities,
measurements of dynamic properties averaged over a specified time window,
or expectations of future availability of resources" (§4).  Four kinds:

* ``STATIC``  — physical capacities only, ignore traffic entirely;
* ``CURRENT`` — the most recent measurement of each quantity;
* ``HISTORY`` — quartiles over a trailing window of measurements;
* ``FUTURE``  — a predictor's expectation over a forward horizon.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.stats.predictors import known_predictors
from repro.util.errors import QueryError


class TimeframeKind(enum.Enum):
    """Which temporal view of the network a query wants."""

    STATIC = "static"
    CURRENT = "current"
    HISTORY = "history"
    FUTURE = "future"


@dataclass(frozen=True)
class Timeframe:
    """A validated (kind, window, horizon, predictor) bundle.

    Use the class methods; the constructor checks cross-field rules.
    """

    kind: TimeframeKind
    window: float = 0.0
    horizon: float = 0.0
    predictor: str = "ewma"

    def __post_init__(self) -> None:
        if self.window < 0 or self.horizon < 0:
            raise QueryError("timeframe window/horizon must be non-negative")
        if self.kind is TimeframeKind.HISTORY and self.window <= 0:
            raise QueryError("HISTORY timeframe requires a positive window")
        if self.kind is TimeframeKind.FUTURE and self.horizon <= 0:
            raise QueryError("FUTURE timeframe requires a positive horizon")
        if self.kind is TimeframeKind.FUTURE and self.predictor not in known_predictors():
            # Parse-time validation: an unknown predictor is the *query's*
            # mistake and must surface as a QueryError (HTTP 400) here,
            # not as a ConfigurationError (500) mid-allocation.
            raise QueryError(
                f"unknown predictor {self.predictor!r}; "
                f"expected one of {sorted(known_predictors())}"
            )

    @classmethod
    def static(cls) -> "Timeframe":
        """Invariant physical capacities (ignores all traffic)."""
        return cls(TimeframeKind.STATIC)

    @classmethod
    def current(cls) -> "Timeframe":
        """Most recent measurements (the paper's ``timeframe = current``)."""
        return cls(TimeframeKind.CURRENT)

    @classmethod
    def history(cls, window: float) -> "Timeframe":
        """Quartiles over the trailing *window* seconds of measurements."""
        return cls(TimeframeKind.HISTORY, window=window)

    @classmethod
    def future(
        cls, horizon: float, predictor: str = "ewma", window: float = 60.0
    ) -> "Timeframe":
        """Prediction over the next *horizon* seconds.

        *window* bounds the history the predictor may consult.
        """
        return cls(
            TimeframeKind.FUTURE, window=window, horizon=horizon, predictor=predictor
        )

    def __str__(self) -> str:
        if self.kind is TimeframeKind.HISTORY:
            return f"history({self.window}s)"
        if self.kind is TimeframeKind.FUTURE:
            return f"future({self.horizon}s, {self.predictor})"
        return self.kind.value
