"""Flow query data types.

A :class:`Flow` is an *application-level connection between a pair of
computation nodes* (§4.2) — the query names endpoints, never links.  The
meaning of ``requested`` depends on which argument of
:meth:`~repro.core.api.Remos.flow_info` the flow is passed in:

* fixed flows — exact bits/second wanted;
* variable flows — the *relative* requirement (weights 3 / 4.5 / 9 in the
  paper's example);
* independent flows — ignored (they absorb leftovers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.core.timeframe import Timeframe
from repro.stats import StatMeasure
from repro.util.errors import QueryError


@dataclass(frozen=True)
class Flow:
    """One application-level flow in a query."""

    src: str
    dst: str
    requested: float = 1.0
    cap: float = float("inf")
    name: str | None = None

    def __post_init__(self) -> None:
        if self.requested < 0:
            raise QueryError(f"flow {self.src}->{self.dst}: negative request")
        if self.cap <= 0:
            raise QueryError(f"flow {self.src}->{self.dst}: cap must be positive")

    def label(self, index: int, klass: str) -> str:
        """Stable identifier used in answers (explicit name wins)."""
        return self.name or f"{klass}[{index}]:{self.src}->{self.dst}"


@dataclass(frozen=True)
class MulticastFlow:
    """A one-to-many flow in a query (the §4.5 multicast extension).

    ``requested`` follows the same per-class conventions as :class:`Flow`.
    The answer's latency is the deepest receiver's path latency.
    """

    src: str
    dsts: tuple[str, ...]
    requested: float = 1.0
    cap: float = float("inf")
    name: str | None = None

    def __init__(self, src, dsts, requested=1.0, cap=float("inf"), name=None):
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dsts", tuple(dsts))
        object.__setattr__(self, "requested", requested)
        object.__setattr__(self, "cap", cap)
        object.__setattr__(self, "name", name)
        if not self.dsts:
            raise QueryError(f"multicast flow from {src!r} needs at least one receiver")
        if self.requested < 0:
            raise QueryError(f"multicast flow from {src!r}: negative request")
        if self.cap <= 0:
            raise QueryError(f"multicast flow from {src!r}: cap must be positive")

    @property
    def dst(self) -> str:
        """Display form of the receiver set."""
        return "{" + ",".join(self.dsts) + "}"

    def label(self, index: int, klass: str) -> str:
        """Stable identifier used in answers (explicit name wins)."""
        return self.name or f"{klass}[{index}]:{self.src}->{self.dst}"


@dataclass(frozen=True)
class FlowQuery:
    """One flow-set scenario inside a :meth:`Remos.flow_info_batch` call.

    A scenario carries the same three flow classes as a single
    :meth:`Remos.flow_info` query.  Batching scenarios lets the engine
    share route resolution and the per-quantile availability snapshots
    across all of them — the answer for each scenario is identical to
    issuing it through ``flow_info`` alone.
    """

    fixed: tuple[Flow, ...] = ()
    variable: tuple[Flow, ...] = ()
    independent: tuple[Flow, ...] = ()
    name: str | None = None

    def __init__(self, fixed=(), variable=(), independent=(), name=None):
        object.__setattr__(self, "fixed", tuple(fixed))
        object.__setattr__(self, "variable", tuple(variable))
        object.__setattr__(self, "independent", tuple(independent))
        object.__setattr__(self, "name", name)
        if not self.fixed and not self.variable and not self.independent:
            raise QueryError("a FlowQuery scenario requires at least one flow")

    @property
    def flows(self) -> tuple[Flow, ...]:
        """All flows in fixed, variable, independent order."""
        return (*self.fixed, *self.variable, *self.independent)


@dataclass
class FlowAnswer:
    """Remos's answer for one queried flow.

    ``bandwidth`` is a quartile measure: the rate the flow would obtain
    under the pessimistic .. optimistic availability estimates for the
    chosen timeframe.  ``satisfied`` is meaningful for fixed flows only
    (did the median-availability allocation deliver the full request?).
    ``bottleneck`` names the limiting resource at median availability, or
    None when the flow was limited by its own request/cap.
    """

    flow: Flow
    label: str
    bandwidth: StatMeasure
    latency: StatMeasure
    hop_count: int
    satisfied: bool | None = None
    bottleneck: Hashable | None = None

    def to_dict(self) -> dict:
        """Plain-data form for JSON export."""
        return {
            "label": self.label,
            "src": self.flow.src,
            "dst": self.flow.dst,
            "bandwidth": self.bandwidth.to_dict(),
            "latency_s": self.latency.median,
            "hop_count": self.hop_count,
            "satisfied": self.satisfied,
            "bottleneck": None if self.bottleneck is None else str(self.bottleneck),
        }

    def __str__(self) -> str:
        return f"{self.label}: bw={self.bandwidth} lat={self.latency.median:.3g}s"


@dataclass
class FlowInfoResult:
    """Answer to a full flow_info query."""

    timeframe: Timeframe
    fixed: list[FlowAnswer] = field(default_factory=list)
    variable: list[FlowAnswer] = field(default_factory=list)
    independent: list[FlowAnswer] = field(default_factory=list)

    @property
    def all_fixed_satisfied(self) -> bool:
        """True when every fixed flow got its full request (vacuously true
        with no fixed flows)."""
        return all(answer.satisfied for answer in self.fixed)

    @property
    def answers(self) -> list[FlowAnswer]:
        """All answers in fixed, variable, independent order."""
        return [*self.fixed, *self.variable, *self.independent]

    def answer(self, label: str) -> FlowAnswer:
        """Look an answer up by its label."""
        for candidate in self.answers:
            if candidate.label == label:
                return candidate
        raise QueryError(f"no flow labelled {label!r} in this result")

    def to_dict(self) -> dict:
        """Plain-data form for JSON export."""
        return {
            "timeframe": str(self.timeframe),
            "all_fixed_satisfied": self.all_fixed_satisfied,
            "fixed": [a.to_dict() for a in self.fixed],
            "variable": [a.to_dict() for a in self.variable],
            "independent": [a.to_dict() for a in self.independent],
        }
