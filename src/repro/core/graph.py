"""The logical topology graph returned by ``remos_get_graph``.

"The graph presented to the user is intended only to represent how the
network behaves as seen by the user" (§4.3): nodes are compute or network
nodes, edges carry static capacity/latency plus per-direction *available
bandwidth* quartile measures for the query's timeframe.

The graph also offers the derived views applications actually consume —
path availability between two hosts and the all-pairs distance matrix the
clustering heuristic feeds on (§7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

try:  # numpy is the optional ``repro[fast]`` accelerator
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy smoke test
    np = None

from repro.net import NodeKind
from repro.stats import StatMeasure
from repro.util.errors import QueryError


@dataclass(frozen=True)
class RemosNode:
    """A node of the logical topology.

    Under hierarchical collapse a node may be an *aggregate*: one logical
    node standing in for ``member_count`` physical switches (a pod's
    aggregation tier, the core).  Aggregates are named ``agg:<group>``;
    their ``internal_bandwidth`` is the sum over members.  Physical nodes
    (including singleton groups, which keep their physical name) have
    ``aggregate=False`` and ``member_count=1``.
    """

    name: str
    kind: NodeKind
    internal_bandwidth: float = float("inf")
    compute_speed: float = 0.0
    memory_bytes: float = 0.0
    aggregate: bool = False
    member_count: int = 1

    @property
    def is_compute(self) -> bool:
        """True for application-capable hosts."""
        return self.kind is NodeKind.COMPUTE


@dataclass
class RemosEdge:
    """A logical link: possibly several physical links collapsed into one.

    ``available`` maps each endpoint name to the StatMeasure of bandwidth
    available in the direction *leaving* that endpoint.
    """

    name: str
    a: str
    b: str
    capacity: float
    latency: float
    available: dict[str, StatMeasure] = field(default_factory=dict)
    physical_links: tuple[str, ...] = ()

    def other(self, node: str) -> str:
        """The endpoint opposite *node*."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise QueryError(f"{node!r} is not an endpoint of logical link {self.name!r}")

    def available_from(self, node: str) -> StatMeasure:
        """Available bandwidth leaving *node* over this edge."""
        self.other(node)  # endpoint check
        try:
            return self.available[node]
        except KeyError:
            raise QueryError(
                f"logical link {self.name!r} has no availability data from {node!r}"
            ) from None


class RemosGraph:
    """Logical topology with annotations and derived metrics."""

    def __init__(self, query_nodes: list[str]):
        self.query_nodes = list(query_nodes)
        #: Which collapse produced this graph: ``"flat"`` (chain collapse
        #: only, every node physical) or ``"hier"`` (aggregate nodes).
        self.collapse = "flat"
        self._nodes: dict[str, RemosNode] = {}
        self._edges: dict[str, RemosEdge] = {}
        self._adjacency: dict[str, list[str]] = {}

    # -- construction (used by the Modeler) ------------------------------------

    def add_node(self, node: RemosNode) -> None:
        """Insert a node (names unique)."""
        if node.name in self._nodes:
            raise QueryError(f"duplicate logical node {node.name!r}")
        self._nodes[node.name] = node
        self._adjacency[node.name] = []

    def add_edge(self, edge: RemosEdge) -> None:
        """Insert an edge between existing nodes."""
        for endpoint in (edge.a, edge.b):
            if endpoint not in self._nodes:
                raise QueryError(f"edge endpoint {endpoint!r} not in logical graph")
        if edge.name in self._edges:
            raise QueryError(f"duplicate logical edge {edge.name!r}")
        self._edges[edge.name] = edge
        self._adjacency[edge.a].append(edge.name)
        self._adjacency[edge.b].append(edge.name)

    # -- inspection ---------------------------------------------------------------

    @property
    def nodes(self) -> list[RemosNode]:
        """All logical nodes."""
        return list(self._nodes.values())

    @property
    def edges(self) -> list[RemosEdge]:
        """All logical edges."""
        return list(self._edges.values())

    @property
    def compute_nodes(self) -> list[RemosNode]:
        """Hosts only."""
        return [n for n in self._nodes.values() if n.is_compute]

    def node(self, name: str) -> RemosNode:
        """Logical node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise QueryError(f"no node {name!r} in logical graph") from None

    def edge(self, name: str) -> RemosEdge:
        """Logical edge by name."""
        try:
            return self._edges[name]
        except KeyError:
            raise QueryError(f"no edge {name!r} in logical graph") from None

    def edges_at(self, node: str) -> list[RemosEdge]:
        """Edges attached to *node*."""
        self.node(node)
        return [self._edges[name] for name in self._adjacency[node]]

    def has_node(self, name: str) -> bool:
        """True if the logical graph contains *name*."""
        return name in self._nodes

    def to_networkx(self) -> nx.Graph:
        """Export for algorithms/visualisation."""
        graph = nx.Graph()
        for node in self._nodes.values():
            graph.add_node(node.name, node=node)
        for edge in self._edges.values():
            graph.add_edge(
                edge.a, edge.b, capacity=edge.capacity, latency=edge.latency, edge=edge
            )
        return graph

    # -- derived application views ----------------------------------------------------

    def _shortest_path(self, src: str, dst: str) -> list[str]:
        self.node(src)
        self.node(dst)
        graph = self.to_networkx()
        try:
            return nx.shortest_path(graph, src, dst, weight="latency")
        except nx.NetworkXNoPath:
            raise QueryError(f"no logical path from {src!r} to {dst!r}") from None

    def path_latency(self, src: str, dst: str) -> float:
        """Total latency along the logical route."""
        path = self._shortest_path(src, dst)
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self._edge_between(a, b).latency
        return total

    def path_available(self, src: str, dst: str) -> StatMeasure:
        """Bottleneck available bandwidth from *src* to *dst*.

        Element-wise minimum over the directions traversed — the
        conservative combination recommended when distributions are
        unknown.
        """
        path = self._shortest_path(src, dst)
        if len(path) == 1:
            return StatMeasure.constant(float("inf"))
        result: StatMeasure | None = None
        for a, b in zip(path, path[1:]):
            measure = self._edge_between(a, b).available_from(a)
            result = measure if result is None else StatMeasure.min_of(result, measure)
        assert result is not None
        return result

    def path_edges(self, src: str, dst: str) -> list[tuple[RemosEdge, str]]:
        """The logical route as (edge, from-node) steps, in order.

        Adaptation layers use this to attribute per-direction loads (e.g.
        an application's own traffic) to the logical links it crosses.
        """
        path = self._shortest_path(src, dst)
        return [(self._edge_between(a, b), a) for a, b in zip(path, path[1:])]

    def _edge_between(self, a: str, b: str) -> RemosEdge:
        for edge in self.edges_at(a):
            if edge.other(a) == b:
                return edge
        raise QueryError(f"no logical edge between {a!r} and {b!r}")

    def distance_matrix(
        self, hosts: list[str] | None = None, quantile: str = "median"
    ) -> "tuple[list[str], np.ndarray]":
        """All-pairs communication distance for clustering (§7.3).

        Distance is the reciprocal of the bottleneck available bandwidth at
        the chosen quantile ("for our testbed, the distance is based only
        on bandwidth since latency ... is virtually the same").  Returns
        (host order, symmetric matrix); the diagonal is zero.
        """
        names = hosts if hosts is not None else [n.name for n in self.compute_nodes]
        size = len(names)
        rows = [[0.0] * size for _ in range(size)]
        for i, src in enumerate(names):
            for j, dst in enumerate(names):
                if i == j:
                    continue
                available = self.path_available(src, dst)
                value = getattr(available, quantile)
                rows[i][j] = 1.0 / max(value, 1.0)
        # Nested lists without numpy; the same values either way, so the
        # clustering caller (which does require numpy) sees no difference.
        matrix = np.asarray(rows) if np is not None else rows
        return names, matrix

    def to_dict(self) -> dict:
        """Plain-data form for JSON export."""
        return {
            "query_nodes": list(self.query_nodes),
            "collapse": self.collapse,
            "nodes": [
                {
                    "name": n.name,
                    "kind": n.kind.value,
                    "internal_bandwidth": (
                        None
                        if n.internal_bandwidth == float("inf")
                        else n.internal_bandwidth
                    ),
                    "compute_speed": n.compute_speed,
                    "memory_bytes": n.memory_bytes,
                    "aggregate": n.aggregate,
                    "member_count": n.member_count,
                }
                for n in self.nodes
            ],
            "edges": [
                {
                    "name": e.name,
                    "a": e.a,
                    "b": e.b,
                    "capacity": e.capacity,
                    "latency_s": e.latency,
                    "physical_links": list(e.physical_links),
                    "available": {
                        endpoint: measure.to_dict()
                        for endpoint, measure in e.available.items()
                    },
                }
                for e in self.edges
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RemosGraph nodes={len(self._nodes)} edges={len(self._edges)} "
            f"for {self.query_nodes}>"
        )
