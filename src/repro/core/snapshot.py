"""Immutable published snapshots: RCU-style epoch publication.

The paper's Collector is a *shared service* answering queries from many
network-aware applications at once.  This module is what makes that safe in
the reproduction: collection mutates freely on the writer side, while every
query runs against an immutable :class:`Snapshot` — a frozen
:class:`~repro.collector.base.NetworkView` plus the per-epoch
:class:`~repro.core.modeler.Modeler` that memoises capacities and routing
for it — published by a single atomic reference swap.

The protocol (documented in full in ``docs/CONCURRENCY.md``):

* **Writer side** — the sweeper (or, outside the service, the querying
  thread itself) calls :meth:`SnapshotPublisher.refresh`.  If the live
  view's ``(generation, structure_generation, latest timestamp)`` stamp
  moved, the publisher assembles the successor privately: it clones the
  metric series copy-on-write (only series whose version advanced since
  the last publication are re-cloned), shares the topology by reference
  (collectors replace topology objects, never mutate them structurally in
  place), copies the delta journal, freezes the view, and forks the
  previous epoch's Modeler so delta-driven cache eviction happens *before*
  publication.  Purely structural state — the routing table and the
  hierarchical :class:`~repro.core.collapse.CollapseTree` — is immutable
  per epoch and therefore *shared by reference* across forks while the
  topology is structurally unchanged (sharing is its copy-on-write: a
  structural change builds a fresh tree for the new epoch while the old
  epoch keeps traversing its own).  The finished snapshot is installed
  with one attribute store — atomic under the GIL — so readers switch
  epochs all-or-nothing.

* **Reader side** — :meth:`SnapshotPublisher.current` is lock-free: grab
  the snapshot once per query and use it for everything (topology, routes,
  capacities).  A reader can never observe a partial sweep because nothing
  reachable from a snapshot is ever written again; within one epoch the
  Modeler's caches only *fill*, and concurrent fills insert bit-identical
  values (the frozen view's stamp never moves).

Answer preservation: a query against snapshot N is bit-identical to the
single-threaded answer at generation N, because the frozen clone preserves
every sample, version counter, generation stamp and journal entry the live
view had at publication.
"""

from __future__ import annotations

import threading
import time

from repro import obs
from repro.collector.base import Collector, NetworkView
from repro.core.cachestats import CacheStats
from repro.core.modeler import Modeler
from repro.net import RoutingTable

_log = obs.get_logger("repro.core.snapshot")


class Snapshot:
    """One published epoch: a frozen view and its memoising Modeler.

    Immutable: every attribute assignment after construction raises, and
    the CI threading-hygiene gate additionally greps for snapshot-field
    mutation.  ``epoch`` is the publisher's monotone publication counter
    (1-based); ``published_at`` is the wall-clock publication time.
    """

    __slots__ = (
        "view",
        "modeler",
        "epoch",
        "generation",
        "structure_generation",
        "published_at",
        "_stamp",
        "_init_done",
    )

    def __init__(
        self,
        view: NetworkView,
        modeler: Modeler,
        epoch: int,
        stamp: tuple,
        published_at: float,
    ):
        object.__setattr__(self, "view", view)
        object.__setattr__(self, "modeler", modeler)
        object.__setattr__(self, "epoch", epoch)
        object.__setattr__(self, "generation", view.generation)
        object.__setattr__(self, "structure_generation", view.structure_generation)
        object.__setattr__(self, "published_at", published_at)
        object.__setattr__(self, "_stamp", stamp)
        object.__setattr__(self, "_init_done", True)

    def __setattr__(self, name, value):
        raise AttributeError(
            f"Snapshot is immutable; cannot set {name!r} on a published epoch"
        )

    def __delattr__(self, name):
        raise AttributeError(
            f"Snapshot is immutable; cannot delete {name!r} from a published epoch"
        )

    def age_seconds(self, now: float | None = None) -> float:
        """Wall-clock seconds since publication."""
        reference = time.time() if now is None else now
        return max(0.0, reference - self.published_at)

    def to_dict(self) -> dict:
        """Plain-data form for telemetry export."""
        return {
            "epoch": self.epoch,
            "generation": self.generation,
            "structure_generation": self.structure_generation,
            "published_at": self.published_at,
            "age_seconds": self.age_seconds(),
            "nodes": len(self.view.topology.nodes),
            "links": len(self.view.topology.links),
            "latest_timestamp": self.view.metrics.latest_timestamp(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Snapshot epoch={self.epoch} generation={self.generation} "
            f"structure={self.structure_generation}>"
        )


class SnapshotPublisher:
    """Assembles and atomically publishes snapshots of one view source.

    One publisher per :class:`~repro.core.api.Remos` facade.  The source is
    either a live :class:`~repro.collector.base.Collector` (its ``view()``
    is re-read on every refresh) or a static ``NetworkView``.

    Thread contract: :meth:`current` is safe from any thread, lock-free.
    :meth:`refresh` serialises publication internally, but the intended
    discipline is a **single writer** (the service's sweeper thread, or the
    sole thread of a classic single-threaded run) — concurrent refreshes
    are safe, just pointless contention.
    """

    def __init__(
        self,
        source: Collector | NetworkView,
        enable_cache: bool = True,
        stats: CacheStats | None = None,
    ):
        self._source = source
        self._enable_cache = enable_cache
        self._stats = stats if stats is not None else CacheStats()
        self._lock = threading.Lock()
        self._current: Snapshot | None = None
        # Copy-on-write memo for frozen series clones; see
        # MetricsStore.frozen_clone.
        self._series_cache: dict = {}
        self.publishes = 0

    @property
    def epoch(self) -> int:
        """Publication count (0 before the first snapshot)."""
        snapshot = self._current
        return 0 if snapshot is None else snapshot.epoch

    def current(self) -> Snapshot | None:
        """The latest published snapshot (lock-free; None before first)."""
        return self._current

    def _live_view(self) -> NetworkView:
        if isinstance(self._source, Collector):
            return self._source.view()
        return self._source

    def _live_stamp(self, view: NetworkView) -> tuple:
        return (
            view.generation,
            view.structure_generation,
            view.metrics.latest_timestamp(),
        )

    def refresh(self) -> Snapshot:
        """Publish a successor if the live view moved; return the current.

        O(1) when nothing changed: one stamp comparison, no lock.  Raises
        :class:`~repro.util.errors.CollectorError` while a collector source
        has no view yet.
        """
        snapshot = self._current
        view = self._live_view()
        if snapshot is not None and snapshot._stamp == self._live_stamp(view):
            return snapshot
        with self._lock:
            # Re-read under the lock: another publisher call may have won.
            view = self._live_view()
            stamp = self._live_stamp(view)
            snapshot = self._current
            if snapshot is not None and snapshot._stamp == stamp:
                return snapshot
            return self._publish(view, stamp)

    def _publish(self, view: NetworkView, stamp: tuple) -> Snapshot:
        """Assemble the successor privately; install it atomically."""
        with obs.span("snapshot.publish") as sp:
            frozen_metrics = view.metrics.frozen_clone(self._series_cache)
            frozen_view = NetworkView(
                topology=view.topology,
                metrics=frozen_metrics,
                generation=view.generation,
                structure_generation=view.structure_generation,
            )
            frozen_view._journal.extend(view._journal)
            frozen_view.freeze()
            previous = self._current
            if previous is None:
                modeler = Modeler(
                    frozen_view,
                    RoutingTable(frozen_view.topology),
                    stats=self._stats,
                    enable_cache=self._enable_cache,
                )
            else:
                modeler = previous.modeler.fork(frozen_view)
            epoch = self.publishes + 1
            snapshot = Snapshot(
                view=frozen_view,
                modeler=modeler,
                epoch=epoch,
                stamp=stamp,
                published_at=time.time(),
            )
            if sp:
                sp.set(epoch=epoch, generation=view.generation)
        # The one store every reader synchronises on: atomic under the GIL.
        self._current = snapshot
        self.publishes = epoch
        obs.inc(
            "remos_snapshots_published_total",
            help="Immutable snapshots published to readers",
        )
        if _log.enabled_for("debug"):
            _log.debug(
                "snapshot_published",
                epoch=epoch,
                generation=view.generation,
                structure_generation=view.structure_generation,
            )
        return snapshot
