"""The public Remos facade.

Construct a :class:`Remos` over either a live collector (the view refreshes
as the collector keeps polling) or a static
:class:`~repro.collector.base.NetworkView`, then issue queries::

    remos = Remos(collector)
    result = remos.flow_info(variable_flows=[Flow("m-1", "m-4", 1.0)])
    graph = remos.get_graph(["m-1", "m-2", "m-4"], Timeframe.history(30.0))

Flow-query semantics (§4.2): fixed flows are satisfied first, then variable
flows proportionally to their relative requirements, then independent flows
absorb leftovers — all under weighted max-min fairness against the
capacities left over by measured external traffic.  Because network state
is uncertain, the allocation is evaluated at the five availability
quartiles (plus the mean), and each flow's answer is the quartile measure
of its allocated rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable

from repro.collector.base import Collector, NetworkView
from repro.core.cachestats import CacheStats
from repro.core.flows import Flow, FlowAnswer, FlowInfoResult, MulticastFlow
from repro.core.graph import RemosGraph
from repro.core.modeler import Modeler
from repro.core.timeframe import Timeframe
from repro.fairshare import FlowRequest, admission_report, allocate_three_stage
from repro.net import RoutingTable
from repro.stats import StatMeasure
from repro.util.errors import QueryError

# Quantiles at which flow allocations are evaluated, pessimistic first.
_LEVELS = ("minimum", "q1", "median", "q3", "maximum")


@dataclass
class NodeAnswer:
    """Answer to a node_info query: computation and memory resources."""

    name: str
    compute_speed: float
    memory_bytes: float
    cpu_load: StatMeasure
    cpu_available: StatMeasure

    @property
    def effective_speed(self) -> float:
        """Flop/s left for a new job at the median measured load."""
        return self.compute_speed * self.cpu_available.median

    def to_dict(self) -> dict:
        """Plain-data form for JSON export."""
        return {
            "name": self.name,
            "compute_speed": self.compute_speed,
            "memory_bytes": self.memory_bytes,
            "cpu_load": self.cpu_load.to_dict(),
            "cpu_available": self.cpu_available.to_dict(),
            "effective_speed": self.effective_speed,
        }


class Remos:
    """The query interface applications link against.

    The facade keeps one :class:`Modeler` (and its routing table) alive
    across collector view refreshes: topology is stable between discovery
    sweeps, so refreshes only invalidate the generation-stamped dynamic
    caches.  ``cache_stats`` exposes hit/miss/invalidation counters and
    per-query wall time; ``enable_cache=False`` forces the cold
    recompute-everything path (for benchmarks and differential tests).
    See ``docs/PERFORMANCE.md`` for the performance model.
    """

    def __init__(self, source: Collector | NetworkView, enable_cache: bool = True):
        self._source = source
        self._enable_cache = enable_cache
        self._live_modeler: Modeler | None = None
        self.cache_stats = CacheStats()
        self.queries_answered = 0

    def _current_view(self) -> NetworkView:
        if isinstance(self._source, Collector):
            return self._source.view()
        return self._source

    def _modeler(self) -> Modeler:
        view = self._current_view()
        modeler = self._live_modeler
        if modeler is None:
            modeler = Modeler(
                view,
                RoutingTable(view.topology),
                stats=self.cache_stats,
                enable_cache=self._enable_cache,
            )
            self._live_modeler = modeler
        elif modeler.view is not view:
            modeler.rebind(view)
        return modeler

    def _begin_query(self) -> float:
        self.queries_answered += 1
        return time.perf_counter()

    def _end_query(self, started: float) -> None:
        self.cache_stats.record_query(time.perf_counter() - started)

    # -- topology queries -----------------------------------------------------

    def get_graph(
        self, nodes: list[str], timeframe: Timeframe | None = None
    ) -> RemosGraph:
        """The logical topology relevant to connecting *nodes* (§4.3).

        Matches the paper's ``remos_get_graph(nodes, graph, timeframe)``;
        the graph is returned rather than filled in.
        """
        timeframe = timeframe or Timeframe.current()
        started = self._begin_query()
        try:
            return self._modeler().logical_graph(list(nodes), timeframe)
        finally:
            self._end_query(started)

    # -- flow queries ------------------------------------------------------------

    def flow_info(
        self,
        fixed_flows: list[Flow] | None = None,
        variable_flows: list[Flow] | None = None,
        independent_flows: list[Flow] | None = None,
        timeframe: Timeframe | None = None,
    ) -> FlowInfoResult:
        """Answer a simultaneous multi-class flow query (§4.2).

        Matches the paper's ``remos_flow_info(fixed_flows, variable_flows,
        independent_flow, timeframe)``; any number of independent flows is
        accepted (the paper's signature has one).
        """
        timeframe = timeframe or Timeframe.current()
        fixed = list(fixed_flows or [])
        variable = list(variable_flows or [])
        independent = list(independent_flows or [])
        if not fixed and not variable and not independent:
            raise QueryError("flow_info requires at least one flow")
        started = self._begin_query()
        try:
            return self._flow_info(fixed, variable, independent, timeframe)
        finally:
            self._end_query(started)

    def _flow_info(
        self,
        fixed: list[Flow],
        variable: list[Flow],
        independent: list[Flow],
        timeframe: Timeframe,
    ) -> FlowInfoResult:
        modeler = self._modeler()
        topology = modeler.view.topology
        for flow in (*fixed, *variable, *independent):
            endpoints = (flow.src, *flow.dsts) if isinstance(flow, MulticastFlow) else (
                flow.src,
                flow.dst,
            )
            for endpoint in endpoints:
                if not topology.has_node(endpoint):
                    raise QueryError(f"unknown flow endpoint {endpoint!r}")
                if not topology.node(endpoint).is_compute:
                    raise QueryError(
                        f"flow endpoints must be compute nodes; {endpoint!r} is not"
                    )

        def resources_of(flow) -> tuple:
            if isinstance(flow, MulticastFlow):
                return modeler.resources_for_tree(flow.src, list(flow.dsts))
            return modeler.resources_for_route(flow.src, flow.dst)

        def requests(flows: list[Flow], klass: str) -> list[FlowRequest]:
            return [
                FlowRequest(
                    flow_id=flow.label(index, klass),
                    resources=resources_of(flow),
                    requested=flow.requested,
                    cap=flow.cap,
                )
                for index, flow in enumerate(flows)
            ]

        fixed_requests = requests(fixed, "fixed")
        variable_requests = requests(variable, "variable")
        independent_requests = requests(independent, "independent")
        all_ids = [r.flow_id for r in (*fixed_requests, *variable_requests, *independent_requests)]
        if len(set(all_ids)) != len(all_ids):
            raise QueryError("flow labels must be unique within a query")

        # Evaluate the allocation at each availability quantile.
        rates_by_level: dict[str, dict[Hashable, float]] = {}
        median_allocation = None
        for level in (*_LEVELS, "mean"):
            capacities = modeler.available_capacities(timeframe, quantile=level)
            allocation = allocate_three_stage(
                capacities,
                fixed=fixed_requests,
                variable=variable_requests,
                independent=independent_requests,
            )
            rates_by_level[level] = allocation.rates
            if level == "median":
                median_allocation = allocation
        assert median_allocation is not None

        # Overall answer accuracy: the worst accuracy among the directions
        # any queried flow traverses.
        accuracy = self._query_accuracy(
            modeler, timeframe, fixed + variable + independent
        )

        def answers(flows: list[Flow], reqs: list[FlowRequest], klass: str) -> list[FlowAnswer]:
            result = []
            for flow, request in zip(flows, reqs):
                label = request.flow_id
                # Rates at rising availability quantiles are monotone in all
                # common cases; sorting guards the rare multi-bottleneck
                # exception so the StatMeasure invariant always holds.
                quartiles = sorted(rates_by_level[level][label] for level in _LEVELS)
                bandwidth = StatMeasure(
                    minimum=quartiles[0],
                    q1=quartiles[1],
                    median=quartiles[2],
                    q3=quartiles[3],
                    maximum=quartiles[4],
                    mean=rates_by_level["mean"][label],
                    n_samples=len(_LEVELS),
                    accuracy=accuracy,
                )
                if isinstance(flow, MulticastFlow):
                    tree = modeler.routing.multicast_tree(flow.src, list(flow.dsts))
                    latency, hop_count = tree.max_latency, len(tree.hops)
                else:
                    route = modeler.routing.route(flow.src, flow.dst)
                    latency, hop_count = route.latency, route.hop_count
                result.append(
                    FlowAnswer(
                        flow=flow,
                        label=label,
                        bandwidth=bandwidth,
                        latency=StatMeasure.constant(latency),
                        hop_count=hop_count,
                        satisfied=(
                            median_allocation.satisfied.get(label)
                            if klass == "fixed"
                            else None
                        ),
                        bottleneck=median_allocation.bottlenecks.get(label),
                    )
                )
            return result

        return FlowInfoResult(
            timeframe=timeframe,
            fixed=answers(fixed, fixed_requests, "fixed"),
            variable=answers(variable, variable_requests, "variable"),
            independent=answers(independent, independent_requests, "independent"),
        )

    @staticmethod
    def _query_accuracy(
        modeler: Modeler, timeframe: Timeframe, flows: list[Flow]
    ) -> float:
        accuracy = 1.0
        for flow in flows:
            if isinstance(flow, MulticastFlow):
                hops = modeler.routing.multicast_tree(flow.src, list(flow.dsts)).hops
            else:
                hops = modeler.routing.route(flow.src, flow.dst).hops
            for hop in hops:
                measure = modeler.available_bandwidth(hop, timeframe)
                accuracy = min(accuracy, measure.accuracy)
        return accuracy

    # -- node (computation/memory) queries --------------------------------------

    def node_info(self, host: str, timeframe: Timeframe | None = None) -> "NodeAnswer":
        """The paper's "simple interface to computation and memory
        resources" (§2): static speed/memory plus measured CPU load."""
        timeframe = timeframe or Timeframe.current()
        started = self._begin_query()
        try:
            modeler = self._modeler()
            node = modeler.view.topology.node(host)
            if not node.is_compute:
                raise QueryError(
                    f"node_info is only defined for compute nodes, not {host!r}"
                )
            load = modeler.cpu_load(host, timeframe)
            return NodeAnswer(
                name=host,
                compute_speed=node.compute_speed,
                memory_bytes=node.memory_bytes,
                cpu_load=load,
                cpu_available=load.complement_of(1.0),
            )
        finally:
            self._end_query(started)

    # -- admission / guaranteed-service queries --------------------------------

    def check_admission(
        self,
        fixed_flows: list[Flow],
        timeframe: Timeframe | None = None,
    ):
        """Would this set of fixed-bandwidth flows fit, simultaneously?

        The guaranteed-services question the paper defers (§4.5): for
        networks with reservations, an application "may be primarily
        interested in whether the network can support" its fixed flows.
        Returns an :class:`~repro.fairshare.admission.AdmissionReport`
        whose ``oversubscribed`` map names the offending resources.
        """
        timeframe = timeframe or Timeframe.current()
        if not fixed_flows:
            raise QueryError("check_admission requires at least one flow")
        started = self._begin_query()
        try:
            modeler = self._modeler()
            requests = []
            for index, flow in enumerate(fixed_flows):
                if isinstance(flow, MulticastFlow):
                    resources = modeler.resources_for_tree(flow.src, list(flow.dsts))
                else:
                    resources = modeler.resources_for_route(flow.src, flow.dst)
                requests.append(
                    FlowRequest(
                        flow_id=flow.label(index, "fixed"),
                        resources=resources,
                        requested=flow.requested,
                        cap=flow.requested,
                    )
                )
            capacities = modeler.available_capacities(timeframe, quantile="median")
            return admission_report(capacities, requests)
        finally:
            self._end_query(started)


# -- procedural wrappers mirroring the paper's C-style API ----------------------


def remos_get_graph(
    remos: Remos, nodes: list[str], timeframe: Timeframe | None = None
) -> RemosGraph:
    """``remos_get_graph(nodes, graph, timeframe)`` — returns the graph."""
    return remos.get_graph(nodes, timeframe)


def remos_flow_info(
    remos: Remos,
    fixed_flows: list[Flow] | None = None,
    variable_flows: list[Flow] | None = None,
    independent_flow: Flow | list[Flow] | None = None,
    timeframe: Timeframe | None = None,
) -> FlowInfoResult:
    """``remos_flow_info(fixed, variable, independent_flow, timeframe)``.

    Accepts the paper's single ``independent_flow`` or a list.
    """
    if independent_flow is None:
        independent: list[Flow] = []
    elif isinstance(independent_flow, Flow):
        independent = [independent_flow]
    else:
        independent = list(independent_flow)
    return remos.flow_info(
        fixed_flows=fixed_flows,
        variable_flows=variable_flows,
        independent_flows=independent,
        timeframe=timeframe,
    )
