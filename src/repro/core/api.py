"""The public Remos facade.

Construct a :class:`Remos` over either a live collector (the view refreshes
as the collector keeps polling) or a static
:class:`~repro.collector.base.NetworkView`, then issue queries::

    remos = Remos(collector)
    result = remos.flow_info(variable_flows=[Flow("m-1", "m-4", 1.0)])
    graph = remos.get_graph(["m-1", "m-2", "m-4"], Timeframe.history(30.0))

Flow-query semantics (§4.2): fixed flows are satisfied first, then variable
flows proportionally to their relative requirements, then independent flows
absorb leftovers — all under weighted max-min fairness against the
capacities left over by measured external traffic.  Because network state
is uncertain, the allocation is evaluated at the five availability
quartiles (plus the mean), and each flow's answer is the quartile measure
of its allocated rate.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass
from typing import Hashable

from repro import obs
from repro.collector.base import Collector, NetworkView
from repro.core.cachestats import CacheStats
from repro.core.flows import Flow, FlowAnswer, FlowInfoResult, FlowQuery, MulticastFlow
from repro.core.graph import RemosGraph
from repro.core.modeler import CapacityView, Modeler
from repro.core import snaparrays as _snaparrays
from repro.core.snapshot import Snapshot, SnapshotPublisher
from repro.core.timeframe import Timeframe
from repro.fairshare import FlowRequest, StagedProblem, admission_report
from repro.fairshare import vectorized as _vectorized
from repro.stats import StatMeasure
from repro.util.errors import CollectorError, QueryError

# Quantiles at which flow allocations are evaluated, pessimistic first.
_LEVELS = ("minimum", "q1", "median", "q3", "maximum")


@dataclass
class NodeAnswer:
    """Answer to a node_info query: computation and memory resources."""

    name: str
    compute_speed: float
    memory_bytes: float
    cpu_load: StatMeasure
    cpu_available: StatMeasure

    @property
    def effective_speed(self) -> float:
        """Flop/s left for a new job at the median measured load."""
        return self.compute_speed * self.cpu_available.median

    def to_dict(self) -> dict:
        """Plain-data form for JSON export."""
        return {
            "name": self.name,
            "compute_speed": self.compute_speed,
            "memory_bytes": self.memory_bytes,
            "cpu_load": self.cpu_load.to_dict(),
            "cpu_available": self.cpu_available.to_dict(),
            "effective_speed": self.effective_speed,
        }


class Remos:
    """The query interface applications link against.

    Every query runs against an immutable published
    :class:`~repro.core.snapshot.Snapshot` — a frozen view plus the
    per-epoch :class:`Modeler` memoising its capacities and routes.  With
    ``auto_publish=True`` (the default, matching classic single-threaded
    use) each query first asks the publisher to refresh, so answers track
    the live collector exactly as before; cached state carries across
    epochs through :meth:`Modeler.fork`, so topology-stable refreshes keep
    their routing table and journal-vouched refreshes keep their dynamic
    caches.  With ``auto_publish=False`` (service mode) queries *only*
    read the current snapshot — publication is the sweeper thread's job —
    which makes every query method safe to call from any number of reader
    threads concurrently (see ``docs/CONCURRENCY.md``).

    ``cache_stats`` exposes hit/miss/invalidation counters and per-query
    wall time; ``enable_cache=False`` forces the cold recompute-everything
    path (for benchmarks and differential tests).  See
    ``docs/PERFORMANCE.md`` for the performance model.
    """

    def __init__(
        self,
        source: Collector | NetworkView,
        enable_cache: bool = True,
        auto_publish: bool = True,
    ):
        self._source = source
        self._enable_cache = enable_cache
        self._auto_publish = auto_publish
        self.cache_stats = CacheStats()
        self._publisher = SnapshotPublisher(
            source, enable_cache=enable_cache, stats=self.cache_stats
        )
        self.queries_answered = 0
        self._query_count_lock = threading.Lock()
        if obs.metrics_enabled():
            self._publish_gauges()

    def _current_view(self) -> NetworkView:
        if isinstance(self._source, Collector):
            return self._source.view()
        return self._source

    @property
    def publisher(self) -> SnapshotPublisher:
        """The snapshot publisher backing this facade."""
        return self._publisher

    def publish(self) -> Snapshot:
        """Publish a snapshot of the live view if it moved (writer-side).

        The service's sweeper calls this after each simulation step; in
        ``auto_publish`` mode queries call it implicitly.
        """
        return self._publisher.refresh()

    def snapshot(self) -> Snapshot:
        """The snapshot the next query would run against.

        In ``auto_publish`` mode this refreshes first; in service mode it
        returns the current epoch (raising
        :class:`~repro.util.errors.CollectorError` before the first
        publication).
        """
        return self._snapshot()

    def _snapshot(self) -> Snapshot:
        if self._auto_publish:
            return self._publisher.refresh()
        snapshot = self._publisher.current()
        if snapshot is None:
            raise CollectorError(
                "no snapshot published yet; start the service (or call "
                "publish()) before querying"
            )
        return snapshot

    def _modeler(self) -> Modeler:
        """The current snapshot's modeler (one per published epoch)."""
        return self._snapshot().modeler

    def _begin_query(self) -> float:
        with self._query_count_lock:
            self.queries_answered += 1
        return time.perf_counter()

    def _end_query(self, started: float, kind: str) -> None:
        elapsed = time.perf_counter() - started
        self.cache_stats.record_query(elapsed)
        obs.observe(
            "remos_query_seconds",
            elapsed,
            help="Wall-clock seconds per answered Remos query",
            query=kind,
        )

    def _annotate_query_span(self, span, modeler: Modeler, hits: int, misses: int) -> None:
        """Stamp a query span with the attributes the trace taxonomy promises."""
        span.set(
            generation=modeler.view.generation,
            cache_hits=self.cache_stats.hits - hits,
            cache_misses=self.cache_stats.misses - misses,
        )

    # -- topology queries -----------------------------------------------------

    def get_graph(
        self,
        nodes: list[str],
        timeframe: Timeframe | None = None,
        collapse: str = "auto",
    ) -> RemosGraph:
        """The logical topology relevant to connecting *nodes* (§4.3).

        Matches the paper's ``remos_get_graph(nodes, graph, timeframe)``;
        the graph is returned rather than filled in.  *collapse* selects
        the collapse algorithm on hierarchical topologies — ``"auto"``
        (default: flat below the threshold, hierarchical above), ``"flat"``
        or ``"hier"``; see ``docs/TOPOLOGIES.md``.  The returned graph's
        ``collapse`` attribute names the path taken.
        """
        timeframe = timeframe or Timeframe.current()
        started = self._begin_query()
        with obs.span("query.get_graph") as sp:
            try:
                modeler = self._modeler()
                if sp:
                    hits, misses = self.cache_stats.hits, self.cache_stats.misses
                graph = modeler.logical_graph(list(nodes), timeframe, collapse)
                if sp:
                    self._annotate_query_span(sp, modeler, hits, misses)
                    sp.set(node_count=len(nodes), collapse=graph.collapse)
                return graph
            finally:
                self._end_query(started, "get_graph")

    # -- flow queries ------------------------------------------------------------

    def flow_info(
        self,
        fixed_flows: list[Flow] | None = None,
        variable_flows: list[Flow] | None = None,
        independent_flows: list[Flow] | None = None,
        timeframe: Timeframe | None = None,
    ) -> FlowInfoResult:
        """Answer a simultaneous multi-class flow query (§4.2).

        Matches the paper's ``remos_flow_info(fixed_flows, variable_flows,
        independent_flow, timeframe)``; any number of independent flows is
        accepted (the paper's signature has one).
        """
        timeframe = timeframe or Timeframe.current()
        fixed = list(fixed_flows or [])
        variable = list(variable_flows or [])
        independent = list(independent_flows or [])
        if not fixed and not variable and not independent:
            raise QueryError("flow_info requires at least one flow")
        started = self._begin_query()
        with obs.span("query.flow_info") as sp:
            try:
                # Grab the snapshot's modeler once and use it throughout:
                # a sweep publishing a new epoch mid-query must not split
                # the answer across generations.
                modeler = self._modeler()
                if sp:
                    hits, misses = self.cache_stats.hits, self.cache_stats.misses
                snapshots = self._capacity_snapshots(modeler, timeframe)
                caches = _snaparrays.BatchCaches(modeler, timeframe)
                result = self._evaluate_flow_query(
                    modeler, fixed, variable, independent, timeframe, snapshots,
                    caches,
                )
                if sp:
                    self._annotate_query_span(sp, modeler, hits, misses)
                    sp.set(
                        flow_count=len(fixed) + len(variable) + len(independent),
                        fixed=len(fixed),
                        variable=len(variable),
                        independent=len(independent),
                    )
                return result
            finally:
                self._end_query(started, "flow_info")

    def flow_info_batch(
        self,
        queries: list[FlowQuery],
        timeframe: Timeframe | None = None,
    ) -> list[FlowInfoResult]:
        """Answer many flow-set scenarios against one network snapshot.

        Each :class:`FlowQuery` scenario is evaluated exactly as a separate
        :meth:`flow_info` call would be — identical rates, bottlenecks and
        satisfaction — but the expensive per-query work is shared across
        the batch: the six per-quantile availability snapshots are computed
        once, route resolution (and the lazy routing tables beneath it) is
        reused, and each scenario's allocation runs against only the
        capacities its flows actually cross.  Scenario sweeps such as the
        greedy node-selection heuristic in :mod:`repro.adapt` are the
        intended callers.

        Results are returned in scenario order.  Any invalid scenario
        raises :class:`QueryError` and discards the whole batch.
        """
        timeframe = timeframe or Timeframe.current()
        scenarios = list(queries)
        if not scenarios:
            return []
        started = self._begin_query()
        with obs.span("query.flow_info_batch") as sp:
            try:
                modeler = self._modeler()
                if sp:
                    hits, misses = self.cache_stats.hits, self.cache_stats.misses
                snapshots = self._capacity_snapshots(modeler, timeframe)
                caches = _snaparrays.BatchCaches(modeler, timeframe)
                results = [
                    self._evaluate_flow_query(
                        modeler,
                        list(scenario.fixed),
                        list(scenario.variable),
                        list(scenario.independent),
                        timeframe,
                        snapshots,
                        caches,
                    )
                    for scenario in scenarios
                ]
                if sp:
                    self._annotate_query_span(sp, modeler, hits, misses)
                    sp.set(
                        scenario_count=len(scenarios),
                        flow_count=sum(len(s.flows) for s in scenarios),
                    )
                return results
            finally:
                self._end_query(started, "flow_info_batch")

    @staticmethod
    def _capacity_snapshots(
        modeler: Modeler, timeframe: Timeframe
    ) -> dict[str, CapacityView]:
        """One lazy availability view per evaluation quantile.

        The views compute only the resources the queried flows cross —
        values bit-identical to the eager whole-network dicts of
        :meth:`_capacity_snapshots_full` (the pruning argument: uncrossed
        resources never influence a max-min allocation), at a cost that
        scales with the flows instead of the network.
        """
        return {
            level: modeler.capacity_view(timeframe, quantile=level)
            for level in (*_LEVELS, "mean")
        }

    @staticmethod
    def _capacity_snapshots_full(
        modeler: Modeler, timeframe: Timeframe
    ) -> dict[str, dict[Hashable, float]]:
        """Eager whole-network snapshots: the flat baseline.

        The differential suite and the scale benchmark evaluate flow
        queries against these to prove the lazy views answer-preserving.
        """
        return {
            level: modeler.available_capacities(timeframe, quantile=level)
            for level in (*_LEVELS, "mean")
        }

    def _evaluate_flow_query(
        self,
        modeler: Modeler,
        fixed: list[Flow],
        variable: list[Flow],
        independent: list[Flow],
        timeframe: Timeframe,
        snapshots: "dict[str, CapacityView] | dict[str, dict[Hashable, float]]",
        caches: "_snaparrays.BatchCaches | None" = None,
    ) -> FlowInfoResult:
        # Large all-unicast scenarios run through the array evaluator —
        # same validation, same staged solve, bit-identical answers
        # (repro.core.snaparrays); everything else takes the scalar path
        # below, which doubles as the no-numpy fallback and the oracle.
        if caches is not None and caches.usable(fixed, variable, independent):
            return _snaparrays.evaluate_flow_query(
                modeler, fixed, variable, independent, timeframe, snapshots, caches
            )
        topology = modeler.view.topology
        for flow in (*fixed, *variable, *independent):
            endpoints = (flow.src, *flow.dsts) if isinstance(flow, MulticastFlow) else (
                flow.src,
                flow.dst,
            )
            for endpoint in endpoints:
                if not topology.has_node(endpoint):
                    raise QueryError(f"unknown flow endpoint {endpoint!r}")
                if not topology.node(endpoint).is_compute:
                    raise QueryError(
                        f"flow endpoints must be compute nodes; {endpoint!r} is not"
                    )

        def resources_of(flow) -> tuple:
            if isinstance(flow, MulticastFlow):
                return modeler.resources_for_tree(flow.src, list(flow.dsts))
            return modeler.resources_for_route(flow.src, flow.dst)

        def requests(flows: list[Flow], klass: str) -> list[FlowRequest]:
            return [
                FlowRequest(
                    flow_id=flow.label(index, klass),
                    resources=resources_of(flow),
                    requested=flow.requested,
                    cap=flow.cap,
                )
                for index, flow in enumerate(flows)
            ]

        fixed_requests = requests(fixed, "fixed")
        variable_requests = requests(variable, "variable")
        independent_requests = requests(independent, "independent")
        all_ids = [r.flow_id for r in (*fixed_requests, *variable_requests, *independent_requests)]
        if len(set(all_ids)) != len(all_ids):
            raise QueryError("flow labels must be unique within a query")

        # Evaluate the allocation at each availability quantile.  The
        # staged problem (demand validation + crossing indices) is prepared
        # once and solved per level, against only the capacities the
        # queried flows actually cross — pruning is result-preserving
        # because uncrossed resources never influence a max-min allocation.
        problem = StagedProblem(
            fixed=fixed_requests,
            variable=variable_requests,
            independent=independent_requests,
        )
        keys = problem.resource_keys()
        rates_by_level: dict[str, dict[Hashable, float]] = {}
        median_allocation = None
        for level in (*_LEVELS, "mean"):
            full = snapshots[level]
            capacities = {key: full[key] for key in keys if key in full}
            allocation = problem.solve(capacities)
            rates_by_level[level] = allocation.rates
            if level == "median":
                median_allocation = allocation
        assert median_allocation is not None

        # Overall answer accuracy: the worst accuracy among the directions
        # any queried flow traverses.
        accuracy = self._query_accuracy(
            modeler, timeframe, fixed + variable + independent
        )

        def answers(flows: list[Flow], reqs: list[FlowRequest], klass: str) -> list[FlowAnswer]:
            result = []
            for flow, request in zip(flows, reqs):
                label = request.flow_id
                # Rates at rising availability quantiles are monotone in all
                # common cases; sorting guards the rare multi-bottleneck
                # exception so the StatMeasure invariant always holds.
                quartiles = sorted(rates_by_level[level][label] for level in _LEVELS)
                bandwidth = StatMeasure(
                    minimum=quartiles[0],
                    q1=quartiles[1],
                    median=quartiles[2],
                    q3=quartiles[3],
                    maximum=quartiles[4],
                    mean=rates_by_level["mean"][label],
                    n_samples=len(_LEVELS),
                    accuracy=accuracy,
                )
                if isinstance(flow, MulticastFlow):
                    tree = modeler.routing.multicast_tree(flow.src, list(flow.dsts))
                    latency, hop_count = tree.max_latency, len(tree.hops)
                else:
                    route = modeler.routing.route(flow.src, flow.dst)
                    latency, hop_count = route.latency, route.hop_count
                result.append(
                    FlowAnswer(
                        flow=flow,
                        label=label,
                        bandwidth=bandwidth,
                        latency=StatMeasure.constant(latency),
                        hop_count=hop_count,
                        satisfied=(
                            median_allocation.satisfied.get(label)
                            if klass == "fixed"
                            else None
                        ),
                        bottleneck=median_allocation.bottlenecks.get(label),
                    )
                )
            return result

        return FlowInfoResult(
            timeframe=timeframe,
            fixed=answers(fixed, fixed_requests, "fixed"),
            variable=answers(variable, variable_requests, "variable"),
            independent=answers(independent, independent_requests, "independent"),
        )

    @staticmethod
    def _query_accuracy(
        modeler: Modeler, timeframe: Timeframe, flows: list[Flow]
    ) -> float:
        accuracy = 1.0
        for flow in flows:
            if isinstance(flow, MulticastFlow):
                hops = modeler.routing.multicast_tree(flow.src, list(flow.dsts)).hops
            else:
                hops = modeler.routing.route(flow.src, flow.dst).hops
            for hop in hops:
                measure = modeler.available_bandwidth(hop, timeframe)
                accuracy = min(accuracy, measure.accuracy)
        return accuracy

    # -- node (computation/memory) queries --------------------------------------

    def node_info(self, host: str, timeframe: Timeframe | None = None) -> "NodeAnswer":
        """The paper's "simple interface to computation and memory
        resources" (§2): static speed/memory plus measured CPU load."""
        timeframe = timeframe or Timeframe.current()
        started = self._begin_query()
        with obs.span("query.node_info") as sp:
            try:
                modeler = self._modeler()
                if sp:
                    hits, misses = self.cache_stats.hits, self.cache_stats.misses
                node = modeler.view.topology.node(host)
                if not node.is_compute:
                    raise QueryError(
                        f"node_info is only defined for compute nodes, not {host!r}"
                    )
                load = modeler.cpu_load(host, timeframe)
                if sp:
                    self._annotate_query_span(sp, modeler, hits, misses)
                    sp.set(host=host)
                return NodeAnswer(
                    name=host,
                    compute_speed=node.compute_speed,
                    memory_bytes=node.memory_bytes,
                    cpu_load=load,
                    cpu_available=load.complement_of(1.0),
                )
            finally:
                self._end_query(started, "node_info")

    # -- admission / guaranteed-service queries --------------------------------

    def check_admission(
        self,
        fixed_flows: list[Flow],
        timeframe: Timeframe | None = None,
    ):
        """Would this set of fixed-bandwidth flows fit, simultaneously?

        The guaranteed-services question the paper defers (§4.5): for
        networks with reservations, an application "may be primarily
        interested in whether the network can support" its fixed flows.
        Returns an :class:`~repro.fairshare.admission.AdmissionReport`
        whose ``oversubscribed`` map names the offending resources.
        """
        timeframe = timeframe or Timeframe.current()
        if not fixed_flows:
            raise QueryError("check_admission requires at least one flow")
        started = self._begin_query()
        with obs.span("query.check_admission") as sp:
            try:
                modeler = self._modeler()
                if sp:
                    hits, misses = self.cache_stats.hits, self.cache_stats.misses
                requests = []
                for index, flow in enumerate(fixed_flows):
                    if isinstance(flow, MulticastFlow):
                        resources = modeler.resources_for_tree(flow.src, list(flow.dsts))
                    else:
                        resources = modeler.resources_for_route(flow.src, flow.dst)
                    requests.append(
                        FlowRequest(
                            flow_id=flow.label(index, "fixed"),
                            resources=resources,
                            requested=flow.requested,
                            cap=flow.requested,
                        )
                    )
                # Lazy view: admission only reads the resources the
                # requests cross, so the check stays flow-sized on
                # arbitrarily large networks.
                capacities = modeler.capacity_view(timeframe, quantile="median")
                report = admission_report(capacities, requests)
                if sp:
                    self._annotate_query_span(sp, modeler, hits, misses)
                    sp.set(flow_count=len(fixed_flows))
                return report
            finally:
                self._end_query(started, "check_admission")

    # -- telemetry --------------------------------------------------------------

    @staticmethod
    def _sweeps_of(collector) -> int | None:
        for attribute in ("polls_completed", "sweeps_completed"):
            value = getattr(collector, attribute, None)
            if value is not None:
                return int(value)
        return None

    def _sweep_count(self) -> int | None:
        """Completed measurement sweeps of the backing collector(s)."""
        children = getattr(self._source, "collectors", None)
        if children is not None:  # CollectorMaster: sum over its children
            return sum(self._sweeps_of(child) or 0 for child in children)
        return self._sweeps_of(self._source)

    def _ready(self) -> bool:
        """True once the source can hand out a view (always, for static)."""
        if isinstance(self._source, Collector):
            return self._source.ready
        return True

    def staleness_seconds(self) -> float | None:
        """Simulated seconds since the newest measurement, or None.

        None — never an exception — when the source is a static view (no
        clock to age against), the collector has not completed its first
        sweep, or nothing has been measured yet.  A freshly constructed
        facade therefore reports None cleanly instead of tripping over the
        collector's not-ready error.
        """
        env = getattr(self._source, "env", None)
        if env is None or not self._ready():
            return None
        latest = self._current_view().metrics.latest_timestamp()
        if latest <= 0.0:
            return None
        return max(0.0, env.now - latest)

    def _publish_gauges(self) -> None:
        """Fold this facade's counters into the global metrics registry.

        Registered as callback gauges read at export time, so the query hot
        path never pays for them.  The callbacks hold only a weak reference
        to this facade: constructing Remos repeatedly (tests, benchmarks)
        re-registers the same gauge names without chaining dead instances
        alive, and a collected facade's gauges read 0 until the next
        construction takes the names over (most recent publisher wins; see
        docs/OBSERVABILITY.md).
        """
        registry = obs.get_registry()
        ref = weakref.ref(self)

        def reader(fn):
            def read() -> float:
                remos = ref()
                if remos is None:
                    return 0.0
                return fn(remos)

            return read

        for name, help_text, fn in (
            ("remos_cache_hits_total", "Memoised lookups served from cache", lambda r: float(r.cache_stats.hits)),
            ("remos_cache_misses_total", "Memoised lookups that had to compute", lambda r: float(r.cache_stats.misses)),
            ("remos_cache_hit_rate", "Fraction of memoised lookups served from cache", lambda r: r.cache_stats.hit_rate),
            ("remos_cache_invalidations_total", "Generation changes that dropped cached entries", lambda r: float(r.cache_stats.invalidations)),
            ("remos_routing_rebuilds_total", "View refreshes that forced a new routing table", lambda r: float(r.cache_stats.routing_rebuilds)),
            ("remos_queries_total", "Public Remos queries answered", lambda r: float(r.cache_stats.queries)),
            ("remos_query_mean_seconds", "Mean wall-clock seconds per answered query", lambda r: r.cache_stats.mean_query_time),
            ("remos_collector_sweeps", "Completed measurement sweeps of the backing collector", lambda r: float(r._sweep_count() or 0)),
            ("remos_view_staleness_seconds", "Simulated seconds since the newest measurement", lambda r: r.staleness_seconds() or 0.0),
            ("remos_snapshot_epoch", "Epoch counter of the current published snapshot", lambda r: float(r._publisher.epoch)),
        ):
            registry.gauge(name, help=help_text).set_function(reader(fn))

        # Allocation-path gauges: module-global, not per-facade (solve
        # counters accumulate across every Remos instance in the process).
        for name, help_text, fn in (
            ("remos_vectorized", "1 when the numpy allocation kernels are live", lambda: float(_vectorized.vectorization_enabled())),
            ("remos_vectorized_solves_total", "Max-min solves answered by the array kernel", lambda: float(_vectorized.counters["vectorized_solves"])),
            ("remos_scalar_solves_total", "Max-min solves answered by the scalar loop", lambda: float(_vectorized.counters["scalar_solves"])),
        ):
            registry.gauge(name, help=help_text).set_function(fn)

    def telemetry(self) -> dict:
        """One combined, JSON-able observability snapshot for this facade.

        Folds the query cache (`CacheStats`), view freshness/staleness,
        snapshot epoch info, collector sweep counts, and — when
        observability is enabled — the global metrics registry (per-stage
        latency quartiles included) into a single report.  Reports cleanly
        on a freshly constructed facade: ``status`` is ``"no sweep yet"``
        and the view/snapshot sections are None until the collector's
        first sweep completes.  ``repro stats`` is a thin shell around
        this.
        """
        if obs.metrics_enabled():
            self._publish_gauges()
        view = self._current_view() if self._ready() else None
        env = getattr(self._source, "env", None)
        view_info = None
        if view is not None:
            view_info = {
                "generation": view.generation,
                "structure_generation": view.structure_generation,
                "nodes": len(view.topology.nodes),
                "links": len(view.topology.links),
                "latest_timestamp": view.metrics.latest_timestamp(),
                "staleness_seconds": self.staleness_seconds(),
            }
        collector_info = None
        if isinstance(self._source, Collector):
            collector_info = {
                "type": type(self._source).__name__,
                "sweeps": self._sweep_count(),
                "sim_now": env.now if env is not None else None,
                "sim_events": getattr(env, "events_processed", None),
            }
        current = self._publisher.current()
        forecast = None
        if current is not None:
            forecast = current.modeler.evaluator.backtester.to_dict()
        return {
            "status": "ok" if view is not None else "no sweep yet",
            "queries_answered": self.queries_answered,
            "cache": self.cache_stats.to_dict(),
            "forecast": forecast,
            "view": view_info,
            "snapshot": None if current is None else current.to_dict(),
            "collector": collector_info,
            "observability_enabled": obs.observability_enabled(),
            "vectorized": _vectorized.vectorization_enabled(),
            "solves": dict(_vectorized.counters),
            "metrics": obs.get_registry().to_dict(),
        }


# -- procedural wrappers mirroring the paper's C-style API ----------------------


def remos_get_graph(
    remos: Remos,
    nodes: list[str],
    timeframe: Timeframe | None = None,
    collapse: str = "auto",
) -> RemosGraph:
    """``remos_get_graph(nodes, graph, timeframe)`` — returns the graph."""
    return remos.get_graph(nodes, timeframe, collapse)


def remos_flow_info(
    remos: Remos,
    fixed_flows: list[Flow] | None = None,
    variable_flows: list[Flow] | None = None,
    independent_flow: Flow | list[Flow] | None = None,
    timeframe: Timeframe | None = None,
) -> FlowInfoResult:
    """``remos_flow_info(fixed, variable, independent_flow, timeframe)``.

    Accepts the paper's single ``independent_flow`` or a list.
    """
    if independent_flow is None:
        independent: list[Flow] = []
    elif isinstance(independent_flow, Flow):
        independent = [independent_flow]
    else:
        independent = list(independent_flow)
    return remos.flow_info(
        fixed_flows=fixed_flows,
        variable_flows=variable_flows,
        independent_flows=independent,
        timeframe=timeframe,
    )
