"""Per-epoch array materialisation for the vectorized query path.

The scalar ``flow_info_batch`` pipeline expands every scenario through
per-flow Python objects: ``FlowRequest`` → ``Demand`` dataclasses, dict
prunes of the capacity snapshots, per-hop ``StatMeasure`` churn for the
answer accuracy, and dict-shaped allocation results.  At 256 hosts the
allocation *solve* is a minority of the query cost — the expansion around
it dominates.  This module materialises everything that is constant for
one published snapshot (or one batch evaluation time) as contiguous
arrays, and re-expresses the whole scenario evaluation as array kernels:

:class:`SnapshotArrays` (one per :class:`~repro.core.modeler.Modeler`,
i.e. one per published epoch — snapshots are immutable, so this is
coherence-free):

* a :class:`~repro.fairshare.vectorized.KeySpace` interning resource keys
  to dense integer ids, and per-route **incidence rows** (CSR-style id
  arrays mirroring ``Modeler.resources_for_route`` tuples, built once per
  route);
* per-route latency measures and hop counts (structural, shared across
  every answer that names the route).

:class:`BatchCaches` (one per ``flow_info``/``flow_info_batch`` call —
one query, one evaluation time, mirroring ``CapacityView``'s pinned
"now"):

* per-level **capacity vectors** indexed by resource id, gathered lazily
  from the same ``CapacityView``/dict snapshots the scalar path reads
  (values bit-identical by construction);
* a per-direction / per-route **accuracy memo** so the batch pays the
  ``available_bandwidth`` StatMeasure arithmetic once per direction
  instead of once per hop × flow × scenario.

:func:`evaluate_flow_query` then mirrors ``Remos._evaluate_flow_query``
step for step — same validation order, same staged fixed → variable →
independent chaining, same per-level ``fairshare.allocate`` spans — with
the filling loop delegated to :func:`repro.fairshare.vectorized.fill`.
Answers are **bit-identical** to the scalar path (differentially fuzzed
in ``tests/fairshare/test_vectorized_maxmin.py`` and gated in
``benchmarks/bench_ablation_scale.py``); the scalar path remains the
oracle and the no-numpy fallback.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Hashable

from repro import obs
from repro.core.flows import Flow, FlowAnswer, FlowInfoResult, MulticastFlow
from repro.core.timeframe import Timeframe
from repro.fairshare import vectorized as _vectorized
from repro.fairshare.maxmin import _EPS
from repro.fairshare.vectorized import HAVE_NUMPY, KeySpace
from repro.stats import StatMeasure
from repro.util.errors import QueryError

if HAVE_NUMPY:
    import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.modeler import Modeler

_LEVELS = ("minimum", "q1", "median", "q3", "maximum")


class SnapshotArrays:
    """Structural array state shared by every query against one epoch.

    Built lazily by :meth:`Modeler.snapshot_arrays`.  Against a published
    (frozen) snapshot nothing here can go stale; against a live view,
    :meth:`sync` drops the route-derived state when the topology's
    structure generation advances — the same contract as the modeler's
    own ``_route_resources`` memo.

    Thread-safe for concurrent readers: misses take ``_lock`` and insert
    fully-built values, so lock-free hits only ever observe complete
    entries (the dict-of-immutables pattern ``docs/CONCURRENCY.md``
    documents for the route memo).
    """

    __slots__ = ("_modeler", "_structure", "_lock", "keyspace", "_rows", "_route_static")

    def __init__(self, modeler: "Modeler"):
        self._modeler = modeler
        self._structure = modeler.view.structure_generation
        self._lock = threading.Lock()
        self.keyspace = KeySpace()
        #: (src, dst) -> int64 id row mirroring ``resources_for_route``.
        self._rows: dict[tuple[str, str], "np.ndarray"] = {}
        #: (src, dst) -> (latency StatMeasure, hop_count); structural.
        self._route_static: dict[tuple[str, str], tuple[StatMeasure, int]] = {}

    def sync(self) -> None:
        """Drop route-derived state if the topology changed in place."""
        structure = self._modeler.view.structure_generation
        if structure != self._structure:
            with self._lock:
                if structure != self._structure:
                    self._rows = {}
                    self._route_static = {}
                    self._structure = structure

    def route_row(self, src: str, dst: str) -> "np.ndarray":
        """The interned id row for the (src, dst) route."""
        key = (src, dst)
        row = self._rows.get(key)
        if row is None:
            resources = self._modeler.resources_for_route(src, dst)
            with self._lock:
                row = self._rows.get(key)
                if row is None:
                    row = self.keyspace.intern_row(resources)
                    self._rows[key] = row
        return row

    def route_static(self, src: str, dst: str) -> tuple[StatMeasure, int]:
        """Shared latency measure + hop count for the (src, dst) route."""
        key = (src, dst)
        entry = self._route_static.get(key)
        if entry is None:
            route = self._modeler.routing.route(src, dst)
            with self._lock:
                entry = self._route_static.get(key)
                if entry is None:
                    entry = (StatMeasure.constant(route.latency), route.hop_count)
                    self._route_static[key] = entry
        return entry


class _LevelCache:
    """One availability level's capacities as id-indexed arrays.

    ``values[i]``/``present[i]`` mirror ``snapshot[keyspace.keys[i]]`` /
    ``keyspace.keys[i] in snapshot`` exactly; slots are filled on first
    gather (``known``) so a batch touches each resource once per level.
    """

    __slots__ = ("values", "present", "known")

    def __init__(self, capacity: int):
        self.values = np.zeros(capacity, dtype=np.float64)
        self.present = np.zeros(capacity, dtype=bool)
        self.known = np.zeros(capacity, dtype=bool)

    def _grow(self, need: int) -> None:
        size = max(need, 2 * len(self.values), 16)
        for name in self.__slots__:
            old = getattr(self, name)
            new = np.zeros(size, dtype=old.dtype)
            new[: len(old)] = old
            setattr(self, name, new)

    def gather(self, ids: "np.ndarray", keys: list, snapshot) -> tuple:
        """``(values[ids], present[ids])`` for sorted global *ids*."""
        if ids.size and int(ids[-1]) >= len(self.values):
            self._grow(int(ids[-1]) + 1)
        known = self.known
        for ident in ids[~known[ids]].tolist():
            try:
                self.values[ident] = snapshot[keys[ident]]
                self.present[ident] = True
            except KeyError:
                pass
            known[ident] = True
        return self.values[ids], self.present[ids]


class BatchCaches:
    """Dynamic per-call caches: one query (or batch), one evaluation time.

    Never kept across calls — the underlying ``CapacityView`` snapshots
    pin "now" at construction, and so do these.
    """

    __slots__ = (
        "arrays",
        "valid_endpoints",
        "_modeler",
        "_timeframe",
        "_levels",
        "_dir_acc",
        "_route_acc",
    )

    def __init__(self, modeler: "Modeler", timeframe: Timeframe):
        self.arrays = (
            modeler.snapshot_arrays()
            if HAVE_NUMPY and _vectorized.vectorization_enabled()
            else None
        )
        #: Endpoints already validated as known compute nodes this batch.
        self.valid_endpoints: set[str] = set()
        self._modeler = modeler
        self._timeframe = timeframe
        self._levels: dict[str, _LevelCache] = {}
        self._dir_acc: dict[Hashable, float] = {}
        self._route_acc: dict[tuple[str, str], float] = {}

    def usable(self, fixed: list, variable: list, independent: list) -> bool:
        """Should this query run through the array evaluator?"""
        if self.arrays is None:
            return False
        total = len(fixed) + len(variable) + len(independent)
        if not _vectorized._use_vectorized(total):
            return False
        return not any(
            isinstance(flow, MulticastFlow)
            for flow in (*fixed, *variable, *independent)
        )

    def level_values(self, level: str, snapshot, ids: "np.ndarray") -> tuple:
        """Capacity values + presence for *ids* at one availability level."""
        cache = self._levels.get(level)
        if cache is None:
            cache = self._levels[level] = _LevelCache(len(self.arrays.keyspace))
        return cache.gather(ids, self.arrays.keyspace.keys, snapshot)

    def route_accuracy(self, src: str, dst: str) -> float:
        """min over the route's directions of the availability accuracy.

        Reads the same ``available_bandwidth`` measures the scalar
        ``_query_accuracy`` loop reads — each direction once per batch
        instead of once per crossing flow.
        """
        key = (src, dst)
        accuracy = self._route_acc.get(key)
        if accuracy is None:
            accuracy = 1.0
            dirs = self._dir_acc
            for hop in self._modeler.routing.route(src, dst).hops:
                hop_acc = dirs.get(hop.key)
                if hop_acc is None:
                    measure = self._modeler.available_bandwidth(hop, self._timeframe)
                    hop_acc = dirs[hop.key] = measure.accuracy
                accuracy = min(accuracy, hop_acc)
            self._route_acc[key] = accuracy
        return accuracy


def evaluate_flow_query(
    modeler: "Modeler",
    fixed: list[Flow],
    variable: list[Flow],
    independent: list[Flow],
    timeframe: Timeframe,
    snapshots,
    caches: BatchCaches,
) -> FlowInfoResult:
    """Array-native mirror of ``Remos._evaluate_flow_query``.

    Same validation, same staged chaining, same spans, bit-identical
    answers; the caller dispatches here only when
    :meth:`BatchCaches.usable` said yes (numpy live, unicast flows,
    problem large enough to win).
    """
    topology = modeler.view.topology
    valid = caches.valid_endpoints
    for flow in (*fixed, *variable, *independent):
        for endpoint in (flow.src, flow.dst):
            if endpoint in valid:
                continue
            if not topology.has_node(endpoint):
                raise QueryError(f"unknown flow endpoint {endpoint!r}")
            if not topology.node(endpoint).is_compute:
                raise QueryError(
                    f"flow endpoints must be compute nodes; {endpoint!r} is not"
                )
            valid.add(endpoint)

    arrays = caches.arrays
    keyspace = arrays.keyspace

    classes = (
        ("fixed", fixed),
        ("variable", variable),
        ("independent", independent),
    )
    labels: dict[str, list[str]] = {}
    rows: dict[str, list] = {}
    for klass, flows in classes:
        labels[klass] = [flow.label(index, klass) for index, flow in enumerate(flows)]
        rows[klass] = [arrays.route_row(flow.src, flow.dst) for flow in flows]
    all_ids = [*labels["fixed"], *labels["variable"], *labels["independent"]]
    if len(set(all_ids)) != len(all_ids):
        raise QueryError("flow labels must be unique within a query")

    # Stage demand columns: the same weight/cap values the FlowRequest →
    # Demand chain carries (fixed: equal weight capped at the request;
    # variable: weight = relative requirement; independent: equal weight).
    stages: list[tuple[str, "_vectorized.DemandArrays"]] = []
    if fixed:
        stages.append(
            (
                "fixed",
                _vectorized.DemandArrays.from_columns(
                    np.ones(len(fixed), dtype=np.float64),
                    np.fromiter(
                        (flow.requested for flow in fixed),
                        dtype=np.float64,
                        count=len(fixed),
                    ),
                    rows["fixed"],
                    keyspace,
                ),
            )
        )
    if variable:
        stages.append(
            (
                "variable",
                _vectorized.DemandArrays.from_columns(
                    np.fromiter(
                        (
                            flow.requested if flow.requested > 0 else 1.0
                            for flow in variable
                        ),
                        dtype=np.float64,
                        count=len(variable),
                    ),
                    np.fromiter(
                        (flow.cap for flow in variable),
                        dtype=np.float64,
                        count=len(variable),
                    ),
                    rows["variable"],
                    keyspace,
                ),
            )
        )
    if independent:
        stages.append(
            (
                "independent",
                _vectorized.DemandArrays.from_columns(
                    np.ones(len(independent), dtype=np.float64),
                    np.fromiter(
                        (flow.cap for flow in independent),
                        dtype=np.float64,
                        count=len(independent),
                    ),
                    rows["independent"],
                    keyspace,
                ),
            )
        )

    stage_by_class = dict(stages)

    # The union of referenced resource ids (the scalar path's pruned key
    # set — membership only; allocation results don't depend on order).
    ref = [stage.res_ids for _, stage in stages]
    uniq = np.unique(np.concatenate(ref)) if ref else np.empty(0, dtype=np.int64)
    size = int(uniq[-1]) + 1 if uniq.size else 0

    # Solve every availability level through the staged pipeline.
    rates: dict[tuple[str, str], "np.ndarray"] = {}
    median_bottleneck: dict[str, "np.ndarray"] = {}
    median_satisfied = None
    for level in (*_LEVELS, "mean"):
        values, present = caches.level_values(level, snapshots[level], uniq)
        # Entry clamp, matching the scalar ``max(0.0, float(cap))``
        # including its NaN semantics (max returns 0.0 for NaN input).
        clamped = np.maximum(0.0, values)
        clamped[np.isnan(values)] = 0.0
        remaining = np.zeros(size, dtype=np.float64)
        present_g = np.zeros(size, dtype=bool)
        if uniq.size:
            remaining[uniq] = np.where(present, clamped, 0.0)
            present_g[uniq] = present
        with obs.span("fairshare.allocate") as sp:
            if sp:
                sp.set(
                    fixed=len(fixed),
                    variable=len(variable),
                    independent=len(independent),
                    resources=int(present.sum()),
                )
            for klass, stage in stages:
                local_ids = stage.res_ids
                local_remaining = remaining[local_ids]
                local_present = present_g[local_ids]
                # Saturation thresholds are relative to this stage's
                # entry-clamped limits — each stage sees capacities net
                # of the earlier stages' allocations, as in the scalar
                # fixed → variable → independent chain.
                thresholds = _EPS * np.maximum(local_remaining, 1.0)
                stage_rates, bottleneck, _ = _vectorized.fill(
                    stage, local_remaining, local_present, thresholds
                )
                remaining[local_ids] = local_remaining
                rates[(klass, level)] = stage_rates
                if level == "median":
                    median_bottleneck[klass] = bottleneck
                    if klass == "fixed":
                        requested = np.fromiter(
                            (flow.requested for flow in fixed),
                            dtype=np.float64,
                            count=len(fixed),
                        )
                        median_satisfied = stage_rates >= requested * (1.0 - 1e-9)

    # Overall answer accuracy: worst accuracy among the directions any
    # queried flow traverses (same running-min the scalar loop computes).
    accuracy = 1.0
    for _, flows in classes:
        for flow in flows:
            accuracy = min(accuracy, caches.route_accuracy(flow.src, flow.dst))

    def answers(klass: str, flows: list[Flow]) -> list[FlowAnswer]:
        if not flows:
            return []
        level_rates = [rates[(klass, level)] for level in _LEVELS]
        stack = np.stack(level_rates)
        if np.isnan(stack).any():  # pragma: no cover - NaN rates are exotic
            # Python sorted's NaN ordering differs from np.sort's; take
            # the scalar path's exact per-flow sort in that case.
            quartile_rows = [
                sorted(float(column[i]) for column in level_rates)
                for i in range(len(flows))
            ]
        else:
            # Columnwise ascending sort == per-flow sorted() for NaN-free
            # floats; .tolist() bulk-converts to Python floats, exactly
            # the values the scalar answer dicts carry.
            quartile_rows = np.sort(stack, axis=0).T.tolist()
        mean_rates = rates[(klass, "mean")].tolist()
        bottleneck = median_bottleneck[klass].tolist()
        res_keys = stage_by_class[klass].res_keys
        klass_labels = labels[klass]
        fixed_klass = klass == "fixed" and median_satisfied is not None
        n_levels = len(_LEVELS)
        measure = StatMeasure.presorted
        result = []
        for i, flow in enumerate(flows):
            bandwidth = measure(
                quartile_rows[i], mean_rates[i], n_levels, accuracy
            )
            latency, hop_count = arrays.route_static(flow.src, flow.dst)
            r = bottleneck[i]
            result.append(
                FlowAnswer(
                    flow=flow,
                    label=klass_labels[i],
                    bandwidth=bandwidth,
                    latency=latency,
                    hop_count=hop_count,
                    satisfied=bool(median_satisfied[i]) if fixed_klass else None,
                    bottleneck=None if r < 0 else res_keys[r],
                )
            )
        return result

    return FlowInfoResult(
        timeframe=timeframe,
        fixed=answers("fixed", fixed),
        variable=answers("variable", variable),
        independent=answers("independent", independent),
    )
