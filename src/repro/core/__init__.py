"""The Remos API: the paper's contribution.

Remos is "a query-based interface to the network state" (§4) with two query
families:

* :meth:`Remos.flow_info` — bandwidth/latency for sets of application-level
  flows, honouring the fixed / variable / independent flow classes and
  max-min fair sharing, *simultaneously* (shared bottlenecks among the
  queried flows are accounted for);
* :meth:`Remos.get_graph` — the *logical* topology connecting a set of
  nodes: irrelevant parts pruned, degree-2 router chains collapsed, every
  component annotated with static capacities and dynamic availability.

All dynamic quantities are :class:`~repro.stats.StatMeasure` quartile
summaries with estimation accuracy; every query takes a
:class:`Timeframe` (static / current / history window / future prediction).

Procedural wrappers :func:`remos_flow_info` and :func:`remos_get_graph`
mirror the C API's call shapes from the paper.
"""

from repro.core.cachestats import CacheStats
from repro.core.collapse import CollapseTree
from repro.core.timeframe import Timeframe, TimeframeKind
from repro.core.flows import Flow, FlowAnswer, FlowInfoResult, FlowQuery, MulticastFlow
from repro.core.graph import RemosGraph, RemosEdge, RemosNode
from repro.core.modeler import AUTO_COLLAPSE_THRESHOLD, CapacityView, Modeler
from repro.core.snapshot import Snapshot, SnapshotPublisher
from repro.core.api import NodeAnswer, Remos, remos_flow_info, remos_get_graph

__all__ = [
    "AUTO_COLLAPSE_THRESHOLD",
    "CapacityView",
    "CollapseTree",
    "Remos",
    "Snapshot",
    "SnapshotPublisher",
    "Flow",
    "MulticastFlow",
    "FlowAnswer",
    "FlowInfoResult",
    "FlowQuery",
    "Timeframe",
    "TimeframeKind",
    "RemosGraph",
    "RemosEdge",
    "RemosNode",
    "Modeler",
    "CacheStats",
    "NodeAnswer",
    "remos_flow_info",
    "remos_get_graph",
]
