"""Numpy water-filling kernels for :class:`~repro.fairshare.maxmin.MaxMinProblem`.

The scalar filling loop in :mod:`repro.fairshare.maxmin` is pure-Python
dict arithmetic: fine for a handful of flows, but the dominant cost of a
256-host ``flow_info_batch`` sweep (hundreds of demands × six load levels
× three stages).  This module re-expresses one filling step as a fixed
sequence of array operations —

* per-resource active weight sums via ``np.bincount`` over a CSR-style
  (demand, resource) incidence entry list,
* the uniform increment ``theta`` as a masked min over
  ``remaining / weight_sum`` and capped-flow headroom,
* rate/remaining updates and saturation detection as element-wise kernels
  over only the unfrozen demands and still-pressured resources —

while preserving the scalar path's answers **bit for bit**.  That holds
because every float operation is performed by the same IEEE-754 rule in
the same order the scalar loop uses:

* ``np.bincount`` accumulates ``out[id[i]] += w[i]`` sequentially in entry
  order, and the entry list is laid out in (demand order, position) order
  — exactly the order ``MaxMinProblem._weight_sum`` adds weights.  Masked
  (frozen) entries contribute ``+0.0``, which never changes the bits of a
  running sum of positive weights;
* rebuilding every weight sum per step is bitwise identical to the scalar
  loop's incremental maintenance (that is the scalar loop's own documented
  invariant vs the full rebuild);
* ``min`` reductions are order-insensitive for the NaN-free operands that
  can occur here, divisions/multiplications are element-wise IEEE doubles,
  and the eager per-step rate update performs the same multiply-add
  sequence the scalar loop's deferred ``materialise`` replay performs;
* multi-saturation bottleneck attribution orders resources by their first
  active incidence entry, which equals the scalar ``_pressure_rank``
  (entry order **is** (demand order, position) lexicographic order).

The differential fuzz suite (``tests/fairshare/test_vectorized_maxmin.py``)
asserts exact equality — rates, bottlenecks, residuals, iteration counts —
against the scalar oracle on adversarial demand sets.

Enabling and disabling
----------------------
numpy is detected at import; without it every solve silently uses the
scalar path.  The ``REPRO_VECTORIZE`` environment variable overrides the
default: ``0/off/false/no`` disables vectorization entirely, ``1/on/
true/yes/force`` vectorizes every solve regardless of size, and unset
means *auto* — vectorize when numpy is present and the problem has at
least :data:`MIN_DEMANDS` demands (tiny problems solve faster in pure
Python than the array setup costs).  :func:`set_vectorized` applies the
same tri-state programmatically (tests, CLI); the live decision is
exported as the ``remos_vectorized`` gauge via ``Remos.telemetry()``.
"""

from __future__ import annotations

import os
from typing import Hashable, Mapping

from repro.util.errors import ConfigurationError

try:  # pragma: no cover - exercised implicitly by every test run
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the container always has numpy
    np = None
    HAVE_NUMPY = False

#: Below this many demands the scalar loop wins: array allocation and
#: ``np.unique`` setup cost more than a few dict iterations.  Measured
#: crossover on the reference container is ~8-16 demands; see
#: docs/PERFORMANCE.md §8.
MIN_DEMANDS = 12

_FALSE_WORDS = {"0", "off", "false", "no"}
_TRUE_WORDS = {"1", "on", "true", "yes", "force"}

#: Solve counters by path, exported through ``Remos.telemetry()``.
counters = {"vectorized_solves": 0, "scalar_solves": 0}


def _env_mode() -> bool | None:
    raw = os.environ.get("REPRO_VECTORIZE")
    if raw is None:
        return None
    word = raw.strip().lower()
    if word in _FALSE_WORDS:
        return False
    if word in _TRUE_WORDS:
        return True
    return None


#: Tri-state switch: ``None`` = auto, ``True`` = always, ``False`` = never.
_mode: bool | None = _env_mode()


def set_vectorized(mode: bool | None) -> None:
    """Force vectorization on/off, or ``None`` to restore auto-detection.

    ``True`` bypasses the :data:`MIN_DEMANDS` threshold (every solve uses
    the array kernel); ``False`` forces the scalar path even with numpy
    installed; ``None`` re-reads ``REPRO_VECTORIZE``/auto.
    """
    global _mode
    _mode = _env_mode() if mode is None else mode


def vectorization_enabled() -> bool:
    """True when the array kernels are live for large problems."""
    if not HAVE_NUMPY:
        return False
    return _mode is not False


def _use_vectorized(n_demands: int) -> bool:
    """The per-solve dispatch decision."""
    if not HAVE_NUMPY or _mode is False:
        return False
    if _mode is True:
        return True
    return n_demands >= MIN_DEMANDS


class KeySpace:
    """A growable resource-key ↔ integer-id interning table.

    Shared across the problems of one epoch (see
    :class:`repro.core.snaparrays.SnapshotArrays`) so route→resource rows
    can be materialised once as id arrays and reused by every scenario's
    :class:`DemandArrays` without re-hashing the keys.
    """

    __slots__ = ("index", "keys")

    def __init__(self) -> None:
        self.index: dict[Hashable, int] = {}
        self.keys: list[Hashable] = []

    def intern(self, key: Hashable) -> int:
        """The stable id for *key*, allocating one on first sight."""
        ident = self.index.get(key)
        if ident is None:
            ident = len(self.keys)
            self.index[key] = ident
            self.keys.append(key)
        return ident

    def intern_row(self, resources: tuple) -> "np.ndarray":
        """An int64 id array for a resource tuple (one entry per occurrence)."""
        intern = self.intern
        return np.array([intern(key) for key in resources], dtype=np.int64)

    def __len__(self) -> int:
        return len(self.keys)


class DemandArrays:
    """The frozen array form of one :class:`MaxMinProblem`'s demand set.

    Built once per problem (lazily, on the first vectorized solve) and
    reused across every capacity snapshot the problem is solved against —
    the same amortisation contract as the scalar crossing index.

    The incidence entry list pairs ``ent_dem[i]`` (demand index) with
    ``ent_res[i]`` (interned resource id), laid out in (demand order,
    position-within-tuple) order — one entry per occurrence, exactly
    mirroring the scalar ``_crossing`` lists.
    """

    __slots__ = (
        "n",
        "weights",
        "caps",
        "init_active",
        "capped_mask",
        "ent_dem",
        "ent_res",
        "res_ids",
        "res_keys",
        "ent_local",
        "dem_indptr",
        "init_w_active",
        "init_ent_weights",
        "n_init_active",
    )

    def __init__(self, demands, keyspace: KeySpace | None = None, rows=None):
        n = len(demands)
        weights = np.empty(n, dtype=np.float64)
        caps = np.empty(n, dtype=np.float64)
        if rows is None:
            keyspace = KeySpace()
            rows = []
            for i, demand in enumerate(demands):
                weights[i] = demand.weight
                caps[i] = demand.cap
                rows.append(keyspace.intern_row(demand.resources))
        else:
            assert keyspace is not None
            for i, demand in enumerate(demands):
                weights[i] = demand.weight
                caps[i] = demand.cap
        self._build(weights, caps, rows, keyspace)

    @classmethod
    def from_columns(cls, weights, caps, rows, keyspace: KeySpace) -> "DemandArrays":
        """Build directly from float columns + interned rows (batch path).

        The batched ``flow_info`` evaluator derives weights/caps straight
        from :class:`~repro.core.flows.Flow` fields — same values the
        staged :class:`~repro.fairshare.allocator.FlowRequest` →
        :class:`~repro.fairshare.maxmin.Demand` chain would carry — so no
        per-scenario dataclass objects are materialised.
        """
        self = cls.__new__(cls)
        self._build(
            np.asarray(weights, dtype=np.float64),
            np.asarray(caps, dtype=np.float64),
            rows,
            keyspace,
        )
        return self

    def _build(self, weights, caps, rows, keyspace: KeySpace) -> None:
        from repro.fairshare.maxmin import _RATE_FLOOR

        n = len(weights)
        self.n = n
        self.weights = weights
        self.caps = caps
        self.init_active = caps > _RATE_FLOOR
        self.capped_mask = self.init_active & (caps != np.inf)

        counts = np.fromiter((len(row) for row in rows), dtype=np.int64, count=n)
        self.dem_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.dem_indptr[1:])
        self.ent_dem = np.repeat(np.arange(n, dtype=np.int64), counts)
        self.ent_res = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        # Compress the referenced ids to a local 0..R-1 space; ``res_ids``
        # ascends, so ``res_keys`` is deterministic given the keyspace.
        self.res_ids, self.ent_local = np.unique(self.ent_res, return_inverse=True)
        keys = keyspace.keys
        self.res_keys = [keys[int(ident)] for ident in self.res_ids]
        # Pre-masked initial state, copied (not rebuilt) by every fill.
        self.init_w_active = np.where(self.init_active, weights, 0.0)
        self.init_ent_weights = self.init_w_active[self.ent_dem]
        self.n_init_active = int(np.count_nonzero(self.init_active))


def fill(arrays: DemandArrays, remaining, present, thresholds):
    """One progressive-filling run over stage-local resource arrays.

    *remaining* (stage-local, drained **in place**), *present* (which
    local resources are capacity-constrained) and *thresholds* (the
    entry-clamped relative saturation cutoffs) index ``arrays.res_ids``
    positionally.  Returns ``(rates, bottleneck, iterations)`` where
    ``bottleneck[i]`` is the local resource index that froze demand *i*
    (−1 = demand-limited).  Bit-identical to the scalar loop — see the
    module docstring for the argument.
    """
    from repro.fairshare.maxmin import _EPS

    counters["vectorized_solves"] += 1
    n = arrays.n
    R = len(arrays.res_ids)

    rates = np.zeros(n, dtype=np.float64)
    bottleneck = np.full(n, -1, dtype=np.int64)
    active = arrays.init_active.copy()
    capped_mask = arrays.capped_mask
    ent_dem = arrays.ent_dem
    ent_local = arrays.ent_local
    weights = arrays.weights
    caps = arrays.caps
    dem_indptr = arrays.dem_indptr
    iterations = 0
    step_frozen = np.zeros(n, dtype=bool)

    # Masked views maintained incrementally: when a demand freezes, its
    # weight slot and incidence entries are zeroed once instead of
    # rebuilding the full ``np.where`` mask every step.  Frozen slots
    # contribute +0.0 either way, so the accumulation bits are identical.
    w_active = arrays.init_w_active.copy()
    ent_weights = arrays.init_ent_weights.copy()
    n_active = arrays.n_init_active

    while n_active:
        iterations += 1

        # Per-resource pressure: active crossers' weights summed in entry
        # order (bincount accumulates sequentially; frozen entries add
        # +0.0, which cannot perturb a running sum of positive weights).
        wsum = np.bincount(ent_local, weights=ent_weights, minlength=R)
        live = present & (wsum > 0.0)

        theta = float("inf")
        if live.any():
            theta = float((remaining[live] / wsum[live]).min())
        capped_active = capped_mask & active
        if capped_active.any():
            headroom = (
                (caps[capped_active] - rates[capped_active])
                / weights[capped_active]
            ).min()
            theta = min(theta, float(headroom))

        if theta == float("inf"):
            # Only uncapped flows over unconstrained resources remain.
            rates[active] = np.inf
            break

        theta = max(0.0, theta)

        # Eager rate update, full-vector: frozen demands add
        # ``theta * +0.0`` to a rate that is never -0.0 — a bit-preserving
        # no-op — while active demands see the same multiply-add sequence
        # as the scalar loop (eager for capped, deferred-replay for
        # uncapped — the replay performs these exact operations).
        rates += theta * w_active

        # Drain resources, full-vector: unpressured resources lose
        # ``x - theta*(+0.0) == x`` bitwise (subtracting +0.0 preserves
        # every float, including -0.0); resources outside ``present`` may
        # drift but are never read.  Saturation stays live-masked.
        remaining -= theta * wsum
        sat = np.flatnonzero(live & (remaining <= thresholds))
        if sat.size:
            remaining[sat] = np.maximum(0.0, remaining[sat])
            is_sat = np.zeros(R, dtype=bool)
            is_sat[sat] = True
            # Entries of still-active demands crossing a saturated
            # resource (``ent_weights > 0`` identifies active entries:
            # weights are strictly positive and frozen slots are zeroed).
            hit_ent = np.flatnonzero((ent_weights > 0.0) & is_sat[ent_local])
            sat_dem = ent_dem[hit_ent]
            if sat.size == 1:
                bottleneck[sat_dem] = sat[0]
            else:
                # Attribute each demand to the saturated resource whose
                # first active incidence entry comes earliest == the
                # scalar ``_pressure_rank`` order (entry order is
                # (demand, position) lexicographic order); the demand's
                # first-processed resource wins, exactly as the scalar
                # loop's in-order freeze does.
                sat_res = ent_local[hit_ent]
                uniq_res, first_pos = np.unique(sat_res, return_index=True)
                firsts = np.empty(R, dtype=np.int64)
                firsts[uniq_res] = hit_ent[first_pos]
                ranks = firsts[sat_res]
                best = np.full(n, ent_dem.shape[0], dtype=np.int64)
                np.minimum.at(best, sat_dem, ranks)
                win = ranks == best[sat_dem]
                bottleneck[sat_dem[win]] = sat_res[win]
            step_frozen[sat_dem] = True

        # Freeze flows that reached their cap (bottleneck stays None).
        cap_ready = capped_active & ~step_frozen
        if cap_ready.any():
            hit = cap_ready & (rates >= caps * (1.0 - _EPS))
            if hit.any():
                rates[hit] = caps[hit]
                step_frozen[hit] = True

        frozen_ids = np.flatnonzero(step_frozen)
        if not frozen_ids.size:  # pragma: no cover - FP stagnation guard
            raise ConfigurationError(
                "max-min allocation failed to make progress; "
                "check for zero-capacity resources with active flows"
            )

        n_active -= int(frozen_ids.size)
        if not n_active:
            break
        active &= ~step_frozen
        step_frozen[:] = False
        w_active[frozen_ids] = 0.0
        if frozen_ids.size > 8:
            # Mass freeze: one gather beats per-demand slice zeroing
            # (both produce exact copies of the same w_active values).
            ent_weights = w_active[ent_dem]
        else:
            for d in frozen_ids:
                ent_weights[dem_indptr[d] : dem_indptr[d + 1]] = 0.0

    return rates, bottleneck, iterations


def solve_arrays(arrays: DemandArrays, demands, capacities: Mapping):
    """Vectorized progressive filling; bit-identical to the scalar solve.

    *demands* is the problem's demand list (for flow ids in original
    order); *capacities* is the same mapping the scalar solve takes.
    Returns a :class:`~repro.fairshare.maxmin.MaxMinResult`.
    """
    from repro.fairshare.maxmin import _EPS, MaxMinResult

    R = len(arrays.res_ids)

    # Residual bookkeeping matches the scalar entry clamp exactly,
    # including its Python ``max(0.0, float(cap))`` NaN semantics.
    residual = {key: max(0.0, float(cap)) for key, cap in capacities.items()}

    # Gather the constrained subset of this problem's resources.
    remaining = np.zeros(R, dtype=np.float64)
    present = np.zeros(R, dtype=bool)
    for j, key in enumerate(arrays.res_keys):
        if key in residual:
            present[j] = True
            remaining[j] = residual[key]
    # Saturation thresholds are relative to the entry-clamped limits.
    thresholds = _EPS * np.maximum(remaining, 1.0)

    rates, bottleneck, iterations = fill(arrays, remaining, present, thresholds)

    result = MaxMinResult(iterations=iterations)
    res_keys = arrays.res_keys
    for i, demand in enumerate(demands):
        result.rates[demand.flow_id] = float(rates[i])
        r = bottleneck[i]
        result.bottlenecks[demand.flow_id] = None if r < 0 else res_keys[r]
    for j in np.flatnonzero(present):
        residual[res_keys[j]] = float(remaining[j])
    result.residual_capacity = residual
    return result
