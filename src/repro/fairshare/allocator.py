"""Three-stage allocation for Remos flow queries.

The paper's ``remos_flow_info(fixed_flows, variable_flows, independent_flow,
timeframe)`` satisfies the flow classes in strict priority order (§4.2):

1. **fixed** flows — each wants exactly its requested bandwidth; equal-weight
   max-min among them, capped at the request, decides what is achievable;
2. **variable** flows — share what is left *proportionally to their relative
   requirements* (weighted max-min, uncapped unless the caller caps them);
3. **independent** flows — absorb whatever remains (equal-weight max-min).

Each later stage sees capacities reduced by the earlier stages' allocations.
This module is topology-agnostic: callers supply each flow's resource keys
(directed links + finite node crossbars); :mod:`repro.core` derives those
from routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro import obs
from repro.fairshare.maxmin import Demand, MaxMinResult, weighted_max_min
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class FlowRequest:
    """A single flow presented for staged allocation.

    For *fixed* flows, ``requested`` is the exact bandwidth wanted.
    For *variable* flows, ``requested`` is the **relative** requirement (the
    paper's "3, 4.5 and 9 Mbps relative to each other") used as the max-min
    weight; ``cap`` optionally bounds the absolute rate.
    For *independent* flows, ``requested`` is ignored.
    """

    flow_id: Hashable
    resources: tuple[Hashable, ...]
    requested: float = 1.0
    cap: float = float("inf")

    def __post_init__(self) -> None:
        if self.requested < 0:
            raise ConfigurationError(
                f"flow {self.flow_id!r}: requested bandwidth must be non-negative"
            )


@dataclass
class StagedAllocation:
    """Combined result of the three allocation stages.

    ``rates`` covers every flow from all stages.  ``satisfied`` marks fixed
    flows that received their full request.  ``bottlenecks`` names the
    limiting resource per flow (None = demand-limited).
    """

    rates: dict[Hashable, float] = field(default_factory=dict)
    satisfied: dict[Hashable, bool] = field(default_factory=dict)
    bottlenecks: dict[Hashable, Hashable | None] = field(default_factory=dict)
    residual_capacity: dict[Hashable, float] = field(default_factory=dict)

    def rate(self, flow_id: Hashable) -> float:
        """Allocated bits/second for *flow_id*."""
        return self.rates[flow_id]

    @property
    def all_fixed_satisfied(self) -> bool:
        """True when every fixed flow received its full request."""
        return all(self.satisfied.values())


def _merge(result: MaxMinResult, into: StagedAllocation) -> dict[Hashable, float]:
    """Fold a stage's result into the combined allocation; return new capacities."""
    into.rates.update(result.rates)
    into.bottlenecks.update(result.bottlenecks)
    return result.residual_capacity


def allocate_three_stage(
    capacities: dict[Hashable, float],
    fixed: list[FlowRequest] | None = None,
    variable: list[FlowRequest] | None = None,
    independent: list[FlowRequest] | None = None,
) -> StagedAllocation:
    """Run the fixed → variable → independent allocation pipeline.

    *capacities* should already exclude background (external) traffic; the
    Modeler subtracts measured utilization before calling this.
    """
    fixed = fixed or []
    variable = variable or []
    independent = independent or []
    with obs.span("fairshare.allocate") as sp:
        if sp:
            sp.set(
                fixed=len(fixed),
                variable=len(variable),
                independent=len(independent),
                resources=len(capacities),
            )
        return _allocate_three_stage(capacities, fixed, variable, independent)


def _allocate_three_stage(
    capacities: dict[Hashable, float],
    fixed: list[FlowRequest],
    variable: list[FlowRequest],
    independent: list[FlowRequest],
) -> StagedAllocation:
    all_ids = [f.flow_id for f in fixed + variable + independent]
    if len(set(all_ids)) != len(all_ids):
        raise ConfigurationError("flow_ids must be unique across all flow classes")

    allocation = StagedAllocation()
    current = {key: max(0.0, float(cap)) for key, cap in capacities.items()}

    # Stage 1: fixed flows.  Equal weights, capped at the request — max-min
    # among them decides who loses when they cannot all be satisfied.
    if fixed:
        demands = [
            Demand(f.flow_id, f.resources, weight=1.0, cap=f.requested) for f in fixed
        ]
        result = weighted_max_min(demands, current)
        current = _merge(result, allocation)
        for request in fixed:
            granted = result.rates[request.flow_id]
            allocation.satisfied[request.flow_id] = (
                granted >= request.requested * (1.0 - 1e-9)
            )

    # Stage 2: variable flows share the remainder proportionally to their
    # relative requirements.
    if variable:
        demands = [
            Demand(
                f.flow_id,
                f.resources,
                weight=f.requested if f.requested > 0 else 1.0,
                cap=f.cap,
            )
            for f in variable
        ]
        result = weighted_max_min(demands, current)
        current = _merge(result, allocation)

    # Stage 3: independent flows absorb the leftovers.
    if independent:
        demands = [
            Demand(f.flow_id, f.resources, weight=1.0, cap=f.cap) for f in independent
        ]
        result = weighted_max_min(demands, current)
        current = _merge(result, allocation)

    allocation.residual_capacity = current
    return allocation
