"""Three-stage allocation for Remos flow queries.

The paper's ``remos_flow_info(fixed_flows, variable_flows, independent_flow,
timeframe)`` satisfies the flow classes in strict priority order (§4.2):

1. **fixed** flows — each wants exactly its requested bandwidth; equal-weight
   max-min among them, capped at the request, decides what is achievable;
2. **variable** flows — share what is left *proportionally to their relative
   requirements* (weighted max-min, uncapped unless the caller caps them);
3. **independent** flows — absorb whatever remains (equal-weight max-min).

Each later stage sees capacities reduced by the earlier stages' allocations.
This module is topology-agnostic: callers supply each flow's resource keys
(directed links + finite node crossbars); :mod:`repro.core` derives those
from routes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro import obs
from repro.fairshare.maxmin import Demand, MaxMinProblem, MaxMinResult
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class FlowRequest:
    """A single flow presented for staged allocation.

    For *fixed* flows, ``requested`` is the exact bandwidth wanted.
    For *variable* flows, ``requested`` is the **relative** requirement (the
    paper's "3, 4.5 and 9 Mbps relative to each other") used as the max-min
    weight; ``cap`` optionally bounds the absolute rate.
    For *independent* flows, ``requested`` is ignored.
    """

    flow_id: Hashable
    resources: tuple[Hashable, ...]
    requested: float = 1.0
    cap: float = float("inf")

    def __post_init__(self) -> None:
        if self.requested < 0:
            raise ConfigurationError(
                f"flow {self.flow_id!r}: requested bandwidth must be non-negative"
            )


@dataclass
class StagedAllocation:
    """Combined result of the three allocation stages.

    ``rates`` covers every flow from all stages.  ``satisfied`` marks fixed
    flows that received their full request.  ``bottlenecks`` names the
    limiting resource per flow (None = demand-limited).
    """

    rates: dict[Hashable, float] = field(default_factory=dict)
    satisfied: dict[Hashable, bool] = field(default_factory=dict)
    bottlenecks: dict[Hashable, Hashable | None] = field(default_factory=dict)
    residual_capacity: dict[Hashable, float] = field(default_factory=dict)
    iterations: int = 0

    def rate(self, flow_id: Hashable) -> float:
        """Allocated bits/second for *flow_id*."""
        return self.rates[flow_id]

    @property
    def all_fixed_satisfied(self) -> bool:
        """True when every fixed flow received its full request."""
        return all(self.satisfied.values())


def _merge(result: MaxMinResult, into: StagedAllocation) -> dict[Hashable, float]:
    """Fold a stage's result into the combined allocation; return new capacities."""
    into.rates.update(result.rates)
    into.bottlenecks.update(result.bottlenecks)
    return result.residual_capacity


class StagedProblem:
    """A prepared three-stage pipeline, solvable at many load levels.

    One Remos ``flow_info`` query evaluates the identical flow set at six
    capacity snapshots (five quartile levels plus the mean), and a batched
    scenario sweep evaluates many flow sets at each.  Preparing the stage
    :class:`MaxMinProblem` instances once amortises demand validation and
    the crossing-index build across all those solves; each :meth:`solve`
    still records its own ``fairshare.allocate`` span.
    """

    __slots__ = ("fixed", "variable", "independent", "_problems")

    def __init__(
        self,
        fixed: list[FlowRequest] | None = None,
        variable: list[FlowRequest] | None = None,
        independent: list[FlowRequest] | None = None,
    ):
        self.fixed = list(fixed or [])
        self.variable = list(variable or [])
        self.independent = list(independent or [])

        all_ids = [f.flow_id for f in self.fixed + self.variable + self.independent]
        if len(set(all_ids)) != len(all_ids):
            raise ConfigurationError("flow_ids must be unique across all flow classes")

        # Stage 1: fixed flows.  Equal weights, capped at the request —
        # max-min among them decides who loses when they cannot all be
        # satisfied.  Stage 2: variable flows share the remainder
        # proportionally to their relative requirements.  Stage 3:
        # independent flows absorb the leftovers.
        self._problems: list[MaxMinProblem | None] = [
            MaxMinProblem(
                Demand(f.flow_id, f.resources, weight=1.0, cap=f.requested)
                for f in self.fixed
            )
            if self.fixed
            else None,
            MaxMinProblem(
                Demand(
                    f.flow_id,
                    f.resources,
                    weight=f.requested if f.requested > 0 else 1.0,
                    cap=f.cap,
                )
                for f in self.variable
            )
            if self.variable
            else None,
            MaxMinProblem(
                Demand(f.flow_id, f.resources, weight=1.0, cap=f.cap)
                for f in self.independent
            )
            if self.independent
            else None,
        ]

    def resource_keys(self) -> tuple[Hashable, ...]:
        """Every resource key referenced by any flow in any stage.

        Allocation results depend only on the capacities of crossed
        resources, so callers may prune capacity snapshots to this set
        before :meth:`solve` without changing any rate or bottleneck.
        Returned in deterministic first-reference order.
        """
        keys: dict[Hashable, None] = {}
        for request in self.fixed + self.variable + self.independent:
            for resource in request.resources:
                keys.setdefault(resource, None)
        return tuple(keys)

    def solve(self, capacities: dict[Hashable, float]) -> StagedAllocation:
        """Run the fixed → variable → independent pipeline on *capacities*."""
        with obs.span("fairshare.allocate") as sp:
            if sp:
                sp.set(
                    fixed=len(self.fixed),
                    variable=len(self.variable),
                    independent=len(self.independent),
                    resources=len(capacities),
                )
            return self._solve(capacities)

    def _solve(self, capacities: dict[Hashable, float]) -> StagedAllocation:
        allocation = StagedAllocation()
        current = {key: max(0.0, float(cap)) for key, cap in capacities.items()}

        fixed_problem, variable_problem, independent_problem = self._problems

        if fixed_problem is not None:
            result = fixed_problem.solve(current)
            allocation.iterations += result.iterations
            current = _merge(result, allocation)
            for request in self.fixed:
                granted = result.rates[request.flow_id]
                allocation.satisfied[request.flow_id] = (
                    granted >= request.requested * (1.0 - 1e-9)
                )

        if variable_problem is not None:
            result = variable_problem.solve(current)
            allocation.iterations += result.iterations
            current = _merge(result, allocation)

        if independent_problem is not None:
            result = independent_problem.solve(current)
            allocation.iterations += result.iterations
            current = _merge(result, allocation)

        allocation.residual_capacity = current
        return allocation


def allocate_three_stage(
    capacities: dict[Hashable, float],
    fixed: list[FlowRequest] | None = None,
    variable: list[FlowRequest] | None = None,
    independent: list[FlowRequest] | None = None,
) -> StagedAllocation:
    """Run the fixed → variable → independent allocation pipeline.

    *capacities* should already exclude background (external) traffic; the
    Modeler subtracts measured utilization before calling this.  One-shot
    wrapper around :class:`StagedProblem`; callers solving the same flow
    set at several load levels should prepare the problem once.
    """
    return StagedProblem(fixed, variable, independent).solve(capacities)
