"""Weighted, demand-capped max-min fair allocation by progressive filling.

The classic water-filling algorithm: raise every unfrozen flow's rate at a
speed proportional to its weight until either (a) some resource saturates —
all flows crossing it freeze at their current rate — or (b) a flow reaches
its demand cap and freezes there.  Repeat until every flow is frozen.

The result is the unique allocation in which no flow's rate can be raised
without lowering the rate of another flow with an equal-or-smaller
weighted rate (max-min fairness, Jaffe 1981; see also Hahne 1991 for the
round-robin realisation the paper cites).

Implementation notes (scalable filling loop)
--------------------------------------------
The naive loop rebuilds the resource→weight-sum "pressure" index from every
active flow on every iteration, costing O(active flows × resources) per
filling step.  This module instead keeps the weight sums incrementally:

* per-resource weight sums are built once from the initial active set and,
  when flows freeze, recomputed only for the resources those flows cross
  (``crossing[r]`` is iterated in original demand order, so the float
  addition sequence — and therefore the bits of every sum — is identical
  to a full rebuild);
* rate increments are applied eagerly only to demand-capped flows (whose
  rates feed the per-iteration headroom test); uncapped flows record
  nothing per step and materialise their rate at freeze time by replaying
  the increment history, which performs the same float operations in the
  same order as the eager loop would have;
* saturation is detected while decrementing ``remaining``, and when more
  than one resource saturates in a step they are processed in the order
  the rebuilt pressure index would have enumerated them, keeping
  bottleneck attribution stable.

The result is bit-for-bit identical to the reference implementation (see
``benchmarks/_reference.py`` and the differential tests) while each
filling step costs O(capped-active + constrained resources + affected).

For repeated solves over the same flow set (e.g. the five quartile levels
plus the mean inside one ``flow_info`` query), build a
:class:`MaxMinProblem` once and call :meth:`MaxMinProblem.solve` per
capacity snapshot — the crossing index and validation are shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

from repro.util.errors import ConfigurationError

# Relative slack below which a resource counts as saturated / a flow as
# having met its cap.  Rates are bits/second, so absolute epsilons would be
# scale-sensitive; everything here is relative to the quantity compared.
_EPS = 1e-9

# Caps below this are physically meaningless (less than one bit per 30
# years) and can underflow the progressive-filling arithmetic; such flows
# are frozen at zero immediately.
_RATE_FLOOR = 1e-9


@dataclass(frozen=True)
class Demand:
    """One flow's participation in an allocation.

    Attributes
    ----------
    flow_id:
        Caller's identifier for the flow; unique within one allocation call.
    resources:
        Hashable keys of every resource the flow consumes (directed links
        and finite-bandwidth node crossbars along its route).  A flow with
        no resources (e.g. a loopback flow) is only limited by its cap.
    weight:
        Relative share weight; variable Remos flows with bandwidth
        requirements "3, 4.5 and 9 Mbps relative to each other" become
        weights 3, 4.5 and 9.
    cap:
        Demand ceiling in bits/second; ``inf`` for greedy flows.
    """

    flow_id: Hashable
    resources: tuple[Hashable, ...]
    weight: float = 1.0
    cap: float = float("inf")

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(
                f"flow {self.flow_id!r}: weight must be positive, got {self.weight}"
            )
        if self.cap < 0:
            raise ConfigurationError(
                f"flow {self.flow_id!r}: cap must be non-negative, got {self.cap}"
            )


@dataclass
class MaxMinResult:
    """Outcome of one max-min allocation.

    ``rates`` maps flow_id to bits/second.  ``bottlenecks`` maps flow_id to
    the resource that froze the flow, or ``None`` when the flow was frozen
    by its own demand cap (it got everything it asked for).
    ``residual_capacity`` maps each resource key to the capacity left over.
    ``iterations`` counts progressive-filling steps (for observability and
    the scale benchmark's perf trajectory).
    """

    rates: dict[Hashable, float] = field(default_factory=dict)
    bottlenecks: dict[Hashable, Hashable | None] = field(default_factory=dict)
    residual_capacity: dict[Hashable, float] = field(default_factory=dict)
    iterations: int = 0

    def rate(self, flow_id: Hashable) -> float:
        """Allocated rate for *flow_id* in bits/second."""
        return self.rates[flow_id]

    def demand_limited(self, flow_id: Hashable) -> bool:
        """True if the flow got its full cap (network did not limit it)."""
        return self.bottlenecks[flow_id] is None


class MaxMinProblem:
    """A fixed flow set, solvable against many capacity snapshots.

    Validates the demand list and builds the resource→crossing-demands
    index once; :meth:`solve` then runs the incremental filling loop per
    capacity dict.  ``Remos._flow_info`` evaluates the same flow set at
    six load levels — sharing the problem across those solves avoids
    rebuilding the crossing index per level.
    """

    __slots__ = (
        "demands",
        "_crossing",
        "_order",
        "_positions",
        "_arrays",
        "_keyspace",
        "_rows",
    )

    def __init__(self, demands: Iterable[Demand], keyspace=None, rows=None):
        """*keyspace*/*rows* optionally carry a precomputed route→resource
        incidence (``repro.core.snaparrays.SnapshotArrays``): *rows* is a
        list of interned-id arrays aligned with *demands*, ids interned in
        *keyspace*.  They only feed the vectorized path; the scalar path
        ignores them."""
        self.demands: list[Demand] = list(demands)
        seen: set[Hashable] = set()
        for demand in self.demands:
            if demand.flow_id in seen:
                raise ConfigurationError(f"duplicate flow_id {demand.flow_id!r}")
            seen.add(demand.flow_id)
        if rows is not None and (keyspace is None or len(rows) != len(self.demands)):
            raise ConfigurationError("resource rows need a keyspace and one row per demand")
        # Both index forms are built lazily on first use: the crossing
        # dicts by the scalar path, the incidence arrays by the vectorized
        # path — a problem solved only one way never builds the other.
        self._crossing: dict[Hashable, list[Demand]] | None = None
        self._order: dict[Hashable, int] | None = None
        self._positions: dict[Hashable, dict[Hashable, int]] | None = None
        self._arrays = None
        self._keyspace = keyspace
        self._rows = rows

    def _ensure_index(self) -> None:
        """Build the scalar path's crossing index (idempotent).

        resource -> demands crossing it, in original demand order, one
        entry per occurrence in the demand's resource tuple (so filtered
        iteration reproduces the pressure rebuild's float-add sequence);
        flow_id -> original position; flow_id -> {resource: first index}.
        """
        if self._crossing is not None:
            return
        crossing: dict[Hashable, list[Demand]] = {}
        order: dict[Hashable, int] = {}
        all_positions: dict[Hashable, dict[Hashable, int]] = {}
        for index, demand in enumerate(self.demands):
            order[demand.flow_id] = index
            positions: dict[Hashable, int] = {}
            all_positions[demand.flow_id] = positions
            for pos, resource in enumerate(demand.resources):
                crossing.setdefault(resource, []).append(demand)
                positions.setdefault(resource, pos)
        self._order = order
        self._positions = all_positions
        self._crossing = crossing

    def _weight_sum(self, resource: Hashable, active: dict[Hashable, Demand]) -> float:
        """Sum active crossers' weights in original demand order."""
        total = 0.0
        for demand in self._crossing[resource]:
            if demand.flow_id in active:
                total += demand.weight
        return total

    def _pressure_rank(
        self, resource: Hashable, active: dict[Hashable, Demand]
    ) -> tuple[int, int]:
        """Position *resource* would take in a freshly rebuilt pressure index.

        The rebuilt index enumerates resources in first-encounter order over
        active demands, i.e. ordered by (first active crossing demand,
        position of the resource within that demand's tuple).
        """
        for demand in self._crossing[resource]:
            if demand.flow_id in active:
                return (
                    self._order[demand.flow_id],
                    self._positions[demand.flow_id][resource],
                )
        raise AssertionError(  # pragma: no cover - saturated => has crossers
            f"resource {resource!r} saturated with no active crossers"
        )

    def solve(self, capacities: Mapping[Hashable, float]) -> MaxMinResult:
        """Allocate *capacities* among this problem's demands.

        Resources referenced by a demand but absent from *capacities* are
        treated as unconstrained (infinite).  Capacities may already have
        background load subtracted by the caller; negative capacities are
        clamped to zero once at entry, and the clamped value is reused by
        the relative-epsilon saturation test.

        Dispatches to the numpy kernel (:mod:`repro.fairshare.vectorized`)
        when it is enabled and the problem is large enough to benefit; the
        two paths are bit-identical (differentially fuzzed), so callers
        never observe which one answered.
        """
        if _vectorized._use_vectorized(len(self.demands)):
            return self.solve_vectorized(capacities)
        return self.solve_scalar(capacities)

    def solve_vectorized(self, capacities: Mapping[Hashable, float]) -> MaxMinResult:
        """The numpy filling loop (requires numpy; same answers, bit for bit)."""
        if self._arrays is None:
            self._arrays = _vectorized.DemandArrays(
                self.demands, keyspace=self._keyspace, rows=self._rows
            )
        return _vectorized.solve_arrays(self._arrays, self.demands, capacities)

    def solve_scalar(self, capacities: Mapping[Hashable, float]) -> MaxMinResult:
        """The pure-Python filling loop — the differential oracle and the
        no-numpy fallback."""
        self._ensure_index()
        _vectorized.counters["scalar_solves"] += 1
        result = MaxMinResult()
        remaining = {key: max(0.0, float(cap)) for key, cap in capacities.items()}
        # Clamped capacities, frozen at entry: the saturation threshold is
        # relative to these, not to the raw (possibly negative) inputs.
        limits = dict(remaining)

        for demand in self.demands:
            result.rates[demand.flow_id] = 0.0
            result.bottlenecks[demand.flow_id] = None

        # Flows with (near-)zero cap are frozen at 0 immediately,
        # demand-limited.  ``active`` keeps original demand order under
        # deletions; ``capped`` is the subset whose rates must be tracked
        # eagerly (they feed the headroom test each iteration).
        active: dict[Hashable, Demand] = {
            d.flow_id: d for d in self.demands if d.cap > _RATE_FLOOR
        }
        capped: dict[Hashable, Demand] = {
            fid: d for fid, d in active.items() if d.cap != float("inf")
        }

        # Per-resource active weight sums, inserted in first-encounter
        # order over the initial active set (the rebuilt pressure index's
        # order for iteration one).
        weight_sum: dict[Hashable, float] = {}
        for demand in active.values():
            for resource in demand.resources:
                if resource in remaining:
                    weight_sum[resource] = weight_sum.get(resource, 0.0) + demand.weight

        # Increment history for deferred (uncapped) rate materialisation.
        thetas: list[float] = []

        def materialise(demand: Demand) -> None:
            # Replays the eager loop's float ops in order: bitwise equal.
            rate = 0.0
            for theta in thetas:
                rate += theta * demand.weight
            result.rates[demand.flow_id] = rate

        while active:
            result.iterations += 1

            # Largest uniform per-weight increment every resource allows...
            theta = float("inf")
            for resource, total in weight_sum.items():
                theta = min(theta, remaining[resource] / total)
            # ... and each demand cap allows (uncapped flows have infinite
            # headroom and cannot lower the minimum).
            for flow_id, demand in capped.items():
                headroom = (demand.cap - result.rates[flow_id]) / demand.weight
                theta = min(theta, headroom)

            if theta == float("inf"):
                # Only uncapped flows over unconstrained resources remain;
                # they can grow without bound.  Report infinite rates.
                for flow_id in active:
                    result.rates[flow_id] = float("inf")
                break

            theta = max(0.0, theta)
            thetas.append(theta)

            # Apply the increment eagerly to capped flows only; uncapped
            # flows replay ``thetas`` when they freeze.
            for flow_id, demand in capped.items():
                result.rates[flow_id] += theta * demand.weight

            # Drain resources and detect saturation in one pass.
            saturated: list[Hashable] = []
            for resource, total in weight_sum.items():
                remaining[resource] -= theta * total
                if remaining[resource] <= _EPS * max(limits[resource], 1.0):
                    remaining[resource] = max(0.0, remaining[resource])
                    saturated.append(resource)

            # Freeze flows crossing saturated resources.  With several
            # saturations in one step, attribute bottlenecks in rebuilt-
            # pressure-index order, exactly as a full rebuild would.
            if len(saturated) > 1:
                saturated.sort(key=lambda r: self._pressure_rank(r, active))
            frozen: set[Hashable] = set()
            for resource in saturated:
                for demand in self._crossing[resource]:
                    if demand.flow_id in active and demand.flow_id not in frozen:
                        frozen.add(demand.flow_id)
                        result.bottlenecks[demand.flow_id] = resource

            # Freeze flows that reached their cap.
            for flow_id, demand in list(capped.items()):
                if flow_id in frozen:
                    continue
                if result.rates[flow_id] >= demand.cap * (1.0 - _EPS):
                    result.rates[flow_id] = demand.cap
                    frozen.add(flow_id)
                    # bottleneck stays None: demand-limited.

            if not frozen:  # pragma: no cover - defensive against FP stagnation
                raise ConfigurationError(
                    "max-min allocation failed to make progress; "
                    "check for zero-capacity resources with active flows"
                )

            # Retire frozen flows and refresh only the affected resources'
            # weight sums (recomputed in original demand order, so the sums
            # stay bitwise identical to a full rebuild).
            affected: set[Hashable] = set()
            for flow_id in frozen:
                demand = active.pop(flow_id)
                capped.pop(flow_id, None)
                if demand.cap == float("inf"):
                    materialise(demand)
                for resource in demand.resources:
                    if resource in weight_sum:
                        affected.add(resource)
            for resource in affected:
                total = self._weight_sum(resource, active)
                if total > 0.0:
                    weight_sum[resource] = total
                else:
                    # No active crossers left: the rebuilt index would
                    # simply omit this resource.
                    del weight_sum[resource]

        result.residual_capacity = remaining
        return result


def weighted_max_min(
    demands: list[Demand],
    capacities: dict[Hashable, float],
) -> MaxMinResult:
    """Allocate *capacities* among *demands* with weighted max-min fairness.

    One-shot convenience wrapper around :class:`MaxMinProblem`; callers
    evaluating the same flow set against several capacity snapshots should
    build the problem once and call :meth:`MaxMinProblem.solve` per
    snapshot.
    """
    return MaxMinProblem(demands).solve(capacities)


# Imported last: vectorized.py type-references MaxMinResult from this
# module, so the import must run after the definitions above.
from repro.fairshare import vectorized as _vectorized  # noqa: E402
