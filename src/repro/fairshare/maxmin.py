"""Weighted, demand-capped max-min fair allocation by progressive filling.

The classic water-filling algorithm: raise every unfrozen flow's rate at a
speed proportional to its weight until either (a) some resource saturates —
all flows crossing it freeze at their current rate — or (b) a flow reaches
its demand cap and freezes there.  Repeat until every flow is frozen.

The result is the unique allocation in which no flow's rate can be raised
without lowering the rate of another flow with an equal-or-smaller
weighted rate (max-min fairness, Jaffe 1981; see also Hahne 1991 for the
round-robin realisation the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.util.errors import ConfigurationError

# Relative slack below which a resource counts as saturated / a flow as
# having met its cap.  Rates are bits/second, so absolute epsilons would be
# scale-sensitive; everything here is relative to the quantity compared.
_EPS = 1e-9

# Caps below this are physically meaningless (less than one bit per 30
# years) and can underflow the progressive-filling arithmetic; such flows
# are frozen at zero immediately.
_RATE_FLOOR = 1e-9


@dataclass(frozen=True)
class Demand:
    """One flow's participation in an allocation.

    Attributes
    ----------
    flow_id:
        Caller's identifier for the flow; unique within one allocation call.
    resources:
        Hashable keys of every resource the flow consumes (directed links
        and finite-bandwidth node crossbars along its route).  A flow with
        no resources (e.g. a loopback flow) is only limited by its cap.
    weight:
        Relative share weight; variable Remos flows with bandwidth
        requirements "3, 4.5 and 9 Mbps relative to each other" become
        weights 3, 4.5 and 9.
    cap:
        Demand ceiling in bits/second; ``inf`` for greedy flows.
    """

    flow_id: Hashable
    resources: tuple[Hashable, ...]
    weight: float = 1.0
    cap: float = float("inf")

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(
                f"flow {self.flow_id!r}: weight must be positive, got {self.weight}"
            )
        if self.cap < 0:
            raise ConfigurationError(
                f"flow {self.flow_id!r}: cap must be non-negative, got {self.cap}"
            )


@dataclass
class MaxMinResult:
    """Outcome of one max-min allocation.

    ``rates`` maps flow_id to bits/second.  ``bottlenecks`` maps flow_id to
    the resource that froze the flow, or ``None`` when the flow was frozen
    by its own demand cap (it got everything it asked for).
    ``residual_capacity`` maps each resource key to the capacity left over.
    """

    rates: dict[Hashable, float] = field(default_factory=dict)
    bottlenecks: dict[Hashable, Hashable | None] = field(default_factory=dict)
    residual_capacity: dict[Hashable, float] = field(default_factory=dict)

    def rate(self, flow_id: Hashable) -> float:
        """Allocated rate for *flow_id* in bits/second."""
        return self.rates[flow_id]

    def demand_limited(self, flow_id: Hashable) -> bool:
        """True if the flow got its full cap (network did not limit it)."""
        return self.bottlenecks[flow_id] is None


def weighted_max_min(
    demands: list[Demand],
    capacities: dict[Hashable, float],
) -> MaxMinResult:
    """Allocate *capacities* among *demands* with weighted max-min fairness.

    Resources referenced by a demand but absent from *capacities* are
    treated as unconstrained (infinite).  Capacities may already have
    background load subtracted by the caller; negative capacities are
    clamped to zero.
    """
    seen: set[Hashable] = set()
    for demand in demands:
        if demand.flow_id in seen:
            raise ConfigurationError(f"duplicate flow_id {demand.flow_id!r}")
        seen.add(demand.flow_id)

    result = MaxMinResult()
    remaining = {key: max(0.0, float(cap)) for key, cap in capacities.items()}

    # Index: resource -> demands crossing it (only finite resources matter).
    crossing: dict[Hashable, list[Demand]] = {}
    for demand in demands:
        result.rates[demand.flow_id] = 0.0
        result.bottlenecks[demand.flow_id] = None
        for resource in demand.resources:
            if resource in remaining:
                crossing.setdefault(resource, []).append(demand)

    active: dict[Hashable, Demand] = {
        d.flow_id: d for d in demands if d.cap > _RATE_FLOOR
    }
    # Flows with (near-)zero cap are frozen at 0 immediately, demand-limited.

    # Progressive filling.  Each iteration freezes at least one flow, so the
    # loop runs at most len(demands) times.
    while active:
        # Weight pressure on each still-constrained resource.
        pressure: dict[Hashable, float] = {}
        for flow_id, demand in active.items():
            for resource in demand.resources:
                if resource in remaining:
                    pressure[resource] = pressure.get(resource, 0.0) + demand.weight

        # Largest uniform per-weight increment each resource allows.
        theta = float("inf")
        for resource, weight_sum in pressure.items():
            theta = min(theta, remaining[resource] / weight_sum)
        # ... and each demand cap allows.
        for demand in active.values():
            headroom = (demand.cap - result.rates[demand.flow_id]) / demand.weight
            theta = min(theta, headroom)

        if theta == float("inf"):
            # Only uncapped flows over unconstrained resources remain; they
            # can grow without bound.  Report infinite rates.
            for flow_id in active:
                result.rates[flow_id] = float("inf")
            break

        theta = max(0.0, theta)

        # Apply the increment.
        for flow_id, demand in active.items():
            result.rates[flow_id] += theta * demand.weight
        for resource, weight_sum in pressure.items():
            remaining[resource] -= theta * weight_sum

        # Freeze flows crossing saturated resources.
        frozen: set[Hashable] = set()
        for resource, weight_sum in pressure.items():
            capacity = capacities.get(resource, 0.0)
            if remaining[resource] <= _EPS * max(capacity, 1.0):
                remaining[resource] = max(0.0, remaining[resource])
                for demand in crossing.get(resource, ()):
                    if demand.flow_id in active and demand.flow_id not in frozen:
                        frozen.add(demand.flow_id)
                        result.bottlenecks[demand.flow_id] = resource

        # Freeze flows that reached their cap.
        for flow_id, demand in list(active.items()):
            if flow_id in frozen:
                continue
            if result.rates[flow_id] >= demand.cap * (1.0 - _EPS):
                result.rates[flow_id] = demand.cap
                frozen.add(flow_id)
                # bottleneck stays None: demand-limited.

        if not frozen:  # pragma: no cover - defensive against FP stagnation
            raise ConfigurationError(
                "max-min allocation failed to make progress; "
                "check for zero-capacity resources with active flows"
            )
        for flow_id in frozen:
            active.pop(flow_id, None)

    result.residual_capacity = remaining
    return result
