"""Max-min fair bandwidth allocation.

This package implements the sharing model the paper adopts (§4.2): "all else
being equal, the bottleneck link bandwidth will be shared equally by all
flows (not being bottlenecked elsewhere)" — i.e. **max-min fair share**
(Jaffe 1981), generalised with per-flow weights (for Remos *variable* flows,
which share "proportionally") and per-flow demand caps (for Remos *fixed*
flows, which never take more than they asked for).

The same engine is used twice, deliberately:

* :mod:`repro.netsim` calls it to decide the rates the simulated network
  actually gives concurrent flows, and
* :mod:`repro.core` calls it to *answer* Remos flow queries,

mirroring the paper's position that max-min fairness is simultaneously the
network's behaviour and the interface's model of it.

Resources are identified by arbitrary hashable keys — directed links, node
crossbars, anything with a capacity.
"""

from repro.fairshare.maxmin import Demand, MaxMinProblem, MaxMinResult, weighted_max_min
from repro.fairshare.allocator import (
    FlowRequest,
    StagedAllocation,
    StagedProblem,
    allocate_three_stage,
)
from repro.fairshare.admission import admissible, admission_report

__all__ = [
    "Demand",
    "MaxMinProblem",
    "MaxMinResult",
    "weighted_max_min",
    "FlowRequest",
    "StagedAllocation",
    "StagedProblem",
    "allocate_three_stage",
    "admissible",
    "admission_report",
]
