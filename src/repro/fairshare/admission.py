"""Admission checks for fixed flows.

For a fixed flow the application "may be primarily interested in whether the
network can support it" (§4.2).  These helpers answer exactly that yes/no
question and, on refusal, say which resources are oversubscribed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.fairshare.allocator import FlowRequest


@dataclass(frozen=True)
class AdmissionReport:
    """Outcome of an admission check for a set of fixed flows."""

    admitted: bool
    oversubscribed: dict[Hashable, float]
    """Resource key -> excess demand in bits/second (empty when admitted)."""


def admission_report(
    capacities: dict[Hashable, float],
    fixed: list[FlowRequest],
) -> AdmissionReport:
    """Check whether all *fixed* requests fit within *capacities* at once.

    A set of fixed flows is admissible iff on every resource the sum of
    requests does not exceed the capacity — no fairness computation needed,
    since fixed flows never exceed their request.
    """
    load: dict[Hashable, float] = {}
    for request in fixed:
        for resource in request.resources:
            load[resource] = load.get(resource, 0.0) + request.requested

    oversubscribed = {}
    for resource, demand in load.items():
        capacity = capacities.get(resource, float("inf"))
        if demand > capacity * (1.0 + 1e-9):
            oversubscribed[resource] = demand - capacity
    return AdmissionReport(admitted=not oversubscribed, oversubscribed=oversubscribed)


def admissible(capacities: dict[Hashable, float], fixed: list[FlowRequest]) -> bool:
    """Shorthand for ``admission_report(...).admitted``."""
    return admission_report(capacities, fixed).admitted
