"""The fluid network: flows, transfers, rate allocation and byte accounting.

Model
-----
* A **flow** is a (src, dst) stream with a demand (bits/s, possibly
  infinite) and a weight.  Open flows persist until closed; their rate at
  any instant comes from a global weighted max-min allocation over directed
  link capacities and finite node crossbars.
* A **transfer** is a flow with a byte size: it closes itself when the
  integrated rate has delivered all bytes, then fires its completion event
  after one path latency (pipeline drain).
* Rates only change when the flow set or a demand changes.  At each change
  the simulator integrates the previous constant rates into per-flow and
  per-interface byte counters, recomputes the allocation, and reschedules
  the earliest transfer completions.

Resource keys
-------------
Directed links use :attr:`LinkDirection.key`; nodes with finite internal
bandwidth contribute ``("xbar", name)``.  A flow consumes capacity on every
hop of its route and on every finite crossbar it traverses (endpoints
included — Fig. 1's aggregate-bandwidth scenario depends on this).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.fairshare import Demand, weighted_max_min
from repro.net import Route, RoutingTable, Topology
from repro.netsim.hostload import HostActivity
from repro.sim import Engine, Event
from repro.util.errors import SimulationError, TopologyError

# Rate for src == dst "transfers" (a local memory copy, effectively): high
# enough never to matter, finite so completion times stay well-defined.
LOOPBACK_RATE = 1e12


@dataclass
class FluidFlow:
    """A live flow inside the fluid network.  Create via FluidNetwork.

    ``hops`` are the directed links the flow's bytes cross (each charged
    once — for a multicast flow this is the distribution tree, which is
    the whole point of multicast); ``drain_latency`` is the propagation
    time the last byte needs after the source stops sending.
    """

    flow_id: int
    src: str
    dst: str
    demand: float
    weight: float
    label: str | None
    opened_at: float
    resources: tuple[Hashable, ...]
    hops: tuple = ()
    drain_latency: float = 0.0
    receivers: tuple[str, ...] = ()
    rate: float = 0.0
    bytes_sent: float = 0.0
    closed: bool = False
    reserved: bool = False

    @property
    def is_multicast(self) -> bool:
        """True when the flow fans out to more than one receiver."""
        return len(self.receivers) > 1

    def __str__(self) -> str:
        tag = self.label or f"flow{self.flow_id}"
        return f"{tag}:{self.src}->{self.dst}"


@dataclass
class TransferHandle:
    """A bulk transfer in progress; ``done`` fires on delivery.

    The event's value is the handle itself, so waiters can read
    ``handle.completed_at`` and compute achieved throughput.
    """

    flow: FluidFlow
    size_bytes: float
    done: Event
    started_at: float
    completed_at: float | None = None
    _generation: int = 0

    @property
    def elapsed(self) -> float:
        """Delivery time in seconds (only after completion)."""
        if self.completed_at is None:
            raise SimulationError("transfer has not completed yet")
        return self.completed_at - self.started_at

    @property
    def throughput(self) -> float:
        """Achieved end-to-end throughput in bits/second."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return float("inf")
        return self.size_bytes * 8.0 / elapsed


@dataclass
class Reservation:
    """A guaranteed-bandwidth carve-out along a route (§4.5 extension).

    Admitted reservations remove their rate from the capacity every
    best-effort flow competes for; a flow opened with ``use_reservation``
    then receives exactly the reserved rate, regardless of congestion.
    """

    reservation_id: int
    src: str
    dst: str
    rate: float
    resources: tuple[Hashable, ...]
    hops: tuple
    drain_latency: float
    active: bool = True


class FluidNetwork:
    """Binds a topology to an engine and allocates rates to live flows."""

    def __init__(
        self,
        env: Engine,
        topology: Topology,
        routing: RoutingTable | None = None,
    ):
        self.env = env
        self.topology = topology
        self.routing = routing or RoutingTable(topology)
        self._flows: dict[int, FluidFlow] = {}
        self._transfers: dict[int, TransferHandle] = {}
        self._ids = itertools.count(1)
        self._last_sync = env.now
        # Static capacity map: every link direction, plus finite crossbars.
        self._capacities: dict[Hashable, float] = {}
        for direction in topology.iter_directions():
            self._capacities[direction.key] = direction.capacity
        for node in topology.nodes:
            if node.internal_bandwidth != float("inf"):
                self._capacities[("xbar", node.name)] = node.internal_bandwidth
        # Cumulative octets carried per directed link (the SNMP counters).
        self._octets: dict[Hashable, float] = {
            d.key: 0.0 for d in topology.iter_directions()
        }
        self._reservations: dict[int, Reservation] = {}
        self._reserved_load: dict[Hashable, float] = {}
        #: CPU busy-time accounting for every compute node (the "simple
        #: interface to computation resources" substrate).
        self.host_activity = HostActivity(
            env, [n.name for n in topology.compute_nodes]
        )

    # -- flow management -----------------------------------------------------

    def _resources_for(self, route: Route) -> tuple[Hashable, ...]:
        resources: list[Hashable] = [hop.key for hop in route.hops]
        for name in route.node_sequence:
            if ("xbar", name) in self._capacities:
                resources.append(("xbar", name))
        return tuple(resources)

    def _check_endpoints(self, src: str, dst: str) -> None:
        for name in (src, dst):
            if not self.topology.node(name).is_compute:
                raise TopologyError(
                    f"flows terminate only at compute nodes; {name!r} is a network node"
                )

    def open_flow(
        self,
        src: str,
        dst: str,
        demand: float = float("inf"),
        weight: float = 1.0,
        label: str | None = None,
    ) -> FluidFlow:
        """Start a persistent flow; returns a handle for set_demand/close."""
        self._check_endpoints(src, dst)
        if demand < 0:
            raise SimulationError(f"flow demand must be non-negative, got {demand}")
        route = self.routing.route(src, dst)
        flow = FluidFlow(
            flow_id=next(self._ids),
            src=src,
            dst=dst,
            demand=demand,
            weight=weight,
            label=label,
            opened_at=self.env.now,
            resources=self._resources_for(route),
            hops=route.hops,
            drain_latency=route.latency,
            receivers=(dst,),
        )
        self._sync()
        self._flows[flow.flow_id] = flow
        self._reallocate()
        return flow

    def open_multicast_flow(
        self,
        src: str,
        dsts: list[str],
        demand: float = float("inf"),
        weight: float = 1.0,
        label: str | None = None,
    ) -> FluidFlow:
        """Start a persistent one-to-many flow over the distribution tree.

        Each tree link carries the stream once, however many receivers sit
        behind it -- the capacity saving that distinguishes multicast from
        repeated unicast.
        """
        self._check_endpoints(src, src)
        for dst in dsts:
            self._check_endpoints(dst, dst)
        if demand < 0:
            raise SimulationError(f"flow demand must be non-negative, got {demand}")
        tree = self.routing.multicast_tree(src, list(dsts))
        resources: list[Hashable] = [hop.key for hop in tree.hops]
        for name in tree.nodes:
            if ("xbar", name) in self._capacities:
                resources.append(("xbar", name))
        flow = FluidFlow(
            flow_id=next(self._ids),
            src=src,
            dst="{" + ",".join(tree.dsts) + "}",
            demand=demand,
            weight=weight,
            label=label,
            opened_at=self.env.now,
            resources=tuple(resources),
            hops=tree.hops,
            drain_latency=tree.max_latency,
            receivers=tree.dsts,
        )
        self._sync()
        self._flows[flow.flow_id] = flow
        self._reallocate()
        return flow

    def multicast_transfer(
        self,
        src: str,
        dsts: list[str],
        size_bytes: float,
        weight: float = 1.0,
        label: str | None = None,
    ) -> TransferHandle:
        """Bulk one-to-many transfer; ``done`` fires when the LAST receiver
        has everything (source rate integrated + deepest path latency)."""
        if size_bytes < 0:
            raise SimulationError(f"transfer size must be non-negative, got {size_bytes}")
        flow = self.open_multicast_flow(
            src, dsts, demand=float("inf"), weight=weight, label=label
        )
        handle = TransferHandle(
            flow=flow,
            size_bytes=float(size_bytes),
            done=self.env.event(),
            started_at=self.env.now,
        )
        self._transfers[flow.flow_id] = handle
        self._schedule_completion(handle)
        return handle

    def set_demand(self, flow: FluidFlow, demand: float) -> None:
        """Change a live flow's demand (0 mutes it without closing)."""
        if flow.closed:
            raise SimulationError(f"flow {flow} is closed")
        if demand < 0:
            raise SimulationError(f"flow demand must be non-negative, got {demand}")
        self._sync()
        flow.demand = demand
        self._reallocate()

    def close_flow(self, flow: FluidFlow) -> None:
        """Terminate a persistent flow (idempotent)."""
        if flow.closed:
            return
        self._sync()
        flow.closed = True
        flow.rate = 0.0
        self._flows.pop(flow.flow_id, None)
        self._transfers.pop(flow.flow_id, None)
        self._reallocate()

    def transfer(
        self,
        src: str,
        dst: str,
        size_bytes: float,
        weight: float = 1.0,
        label: str | None = None,
    ) -> TransferHandle:
        """Start a bulk transfer; ``handle.done`` fires on delivery.

        Delivery = all bytes pushed at the allocated (time-varying) rate,
        plus one path propagation latency.  Zero-byte transfers complete
        after the latency alone.
        """
        self._check_endpoints(src, dst)
        if size_bytes < 0:
            raise SimulationError(f"transfer size must be non-negative, got {size_bytes}")
        if src == dst:
            # Local copy: no network resources consumed.
            handle = self._make_loopback_transfer(src, dst, size_bytes, label)
            return handle
        flow = self.open_flow(src, dst, demand=float("inf"), weight=weight, label=label)
        handle = TransferHandle(
            flow=flow,
            size_bytes=float(size_bytes),
            done=self.env.event(),
            started_at=self.env.now,
        )
        self._transfers[flow.flow_id] = handle
        self._schedule_completion(handle)
        return handle

    def _make_loopback_transfer(
        self, src: str, dst: str, size_bytes: float, label: str | None
    ) -> TransferHandle:
        flow = FluidFlow(
            flow_id=next(self._ids),
            src=src,
            dst=dst,
            demand=LOOPBACK_RATE,
            weight=1.0,
            label=label,
            opened_at=self.env.now,
            resources=(),
            receivers=(dst,),
            rate=LOOPBACK_RATE,
        )
        handle = TransferHandle(
            flow=flow,
            size_bytes=float(size_bytes),
            done=self.env.event(),
            started_at=self.env.now,
        )
        delay = size_bytes * 8.0 / LOOPBACK_RATE

        def _complete(event: Event, handle=handle) -> None:
            handle.completed_at = self.env.now
            handle.flow.bytes_sent = handle.size_bytes
            handle.flow.closed = True
            handle.done.succeed(handle)

        timer = self.env.event()
        timer.callbacks.append(_complete)
        timer.succeed(delay=delay)
        return handle

    # -- guaranteed services (reservations) ------------------------------------

    def reserve(self, src: str, dst: str, rate: float) -> Reservation:
        """Admit a guaranteed-bandwidth reservation or raise SimulationError.

        Admission: on every resource along the route, the sum of admitted
        reservations plus *rate* must fit within the physical capacity.
        """
        self._check_endpoints(src, dst)
        if rate <= 0:
            raise SimulationError(f"reservation rate must be positive, got {rate}")
        route = self.routing.route(src, dst)
        resources = self._resources_for(route)
        for resource in resources:
            capacity = self._capacities.get(resource, float("inf"))
            if self._reserved_load.get(resource, 0.0) + rate > capacity * (1 + 1e-9):
                raise SimulationError(
                    f"reservation {src}->{dst} at {rate:.3g}b/s rejected: "
                    f"resource {resource!r} has insufficient unreserved capacity"
                )
        reservation = Reservation(
            reservation_id=next(self._ids),
            src=src,
            dst=dst,
            rate=float(rate),
            resources=resources,
            hops=route.hops,
            drain_latency=route.latency,
        )
        self._reservations[reservation.reservation_id] = reservation
        for resource in resources:
            self._reserved_load[resource] = (
                self._reserved_load.get(resource, 0.0) + reservation.rate
            )
        self._sync()
        self._reallocate()
        return reservation

    def release(self, reservation: Reservation) -> None:
        """Return a reservation's capacity to the best-effort pool."""
        if not reservation.active:
            return
        reservation.active = False
        self._reservations.pop(reservation.reservation_id, None)
        for resource in reservation.resources:
            self._reserved_load[resource] -= reservation.rate
        self._sync()
        self._reallocate()

    def open_reserved_flow(
        self, reservation: Reservation, label: str | None = None
    ) -> FluidFlow:
        """A flow carried inside a reservation: rate pinned, never shared."""
        if not reservation.active:
            raise SimulationError("reservation has been released")
        flow = FluidFlow(
            flow_id=next(self._ids),
            src=reservation.src,
            dst=reservation.dst,
            demand=reservation.rate,
            weight=1.0,
            label=label or f"reserved:{reservation.src}->{reservation.dst}",
            opened_at=self.env.now,
            resources=(),  # excluded from best-effort max-min
            hops=reservation.hops,
            drain_latency=reservation.drain_latency,
            receivers=(reservation.dst,),
            rate=reservation.rate,
            reserved=True,
        )
        self._sync()
        self._flows[flow.flow_id] = flow
        self._reallocate()
        return flow

    @property
    def reservations(self) -> list[Reservation]:
        """Currently admitted reservations."""
        return list(self._reservations.values())

    # -- accounting ----------------------------------------------------------

    def _sync(self) -> None:
        """Integrate current constant rates up to now."""
        now = self.env.now
        dt = now - self._last_sync
        if dt <= 0:
            self._last_sync = now
            return
        for flow in self._flows.values():
            if flow.rate > 0:
                nbytes = flow.rate * dt / 8.0
                flow.bytes_sent += nbytes
                for hop in flow.hops:
                    self._octets[hop.key] += nbytes
        self._last_sync = now

    def _reallocate(self) -> None:
        """Recompute the global max-min allocation and retime completions."""
        demands = [
            Demand(
                flow.flow_id,
                flow.resources,
                weight=flow.weight,
                cap=flow.demand,
            )
            for flow in self._flows.values()
            if flow.demand > 0 and not flow.reserved
        ]
        if self._reserved_load and any(self._reserved_load.values()):
            capacities = {
                key: max(0.0, cap - self._reserved_load.get(key, 0.0))
                for key, cap in self._capacities.items()
            }
        else:
            capacities = self._capacities
        result = weighted_max_min(demands, capacities) if demands else None
        for flow in self._flows.values():
            if flow.reserved:
                continue  # rate pinned at the reserved value
            flow.rate = result.rates.get(flow.flow_id, 0.0) if result else 0.0
        # Copy: completing a transfer inside _schedule_completion closes its
        # flow, which mutates self._transfers.
        for handle in list(self._transfers.values()):
            if not handle.flow.closed:
                self._schedule_completion(handle)

    def _schedule_completion(self, handle: TransferHandle) -> None:
        handle._generation += 1
        generation = handle._generation
        flow = handle.flow
        # Completion tolerance must scale with the transfer: integrating a
        # large transfer accumulates relative FP error, and near the end the
        # residual eta can underflow below the clock's resolution — an
        # absolute epsilon would then livelock rescheduling zero-length
        # timers forever.
        tolerance = max(1e-6, handle.size_bytes * 1e-9)
        remaining = handle.size_bytes - flow.bytes_sent
        if remaining <= tolerance:
            self._finish_transfer(handle)
            return
        if flow.rate <= 0:
            return  # starved; a later reallocation will reschedule
        eta = remaining * 8.0 / flow.rate

        def _maybe_complete(event: Event) -> None:
            if generation != handle._generation or flow.closed:
                return  # stale timer: rates changed since it was armed
            self._sync()
            if handle.size_bytes - flow.bytes_sent <= tolerance:
                self._finish_transfer(handle)
            else:  # pragma: no cover - defensive against FP drift
                self._schedule_completion(handle)

        timer = self.env.event()
        timer.callbacks.append(_maybe_complete)
        timer.succeed(delay=eta)

    def _finish_transfer(self, handle: TransferHandle) -> None:
        flow = handle.flow
        self._sync()
        flow.bytes_sent = handle.size_bytes
        self.close_flow(flow)

        def _deliver(event: Event) -> None:
            handle.completed_at = self.env.now
            handle.done.succeed(handle)

        # Pipeline drain: the last byte still has to cross the path
        # (deepest receiver for multicast).
        drain = self.env.event()
        drain.callbacks.append(_deliver)
        drain.succeed(delay=flow.drain_latency)

    # -- introspection --------------------------------------------------------

    @property
    def active_flows(self) -> list[FluidFlow]:
        """Currently open flows (transfers included)."""
        return list(self._flows.values())

    def flow_rate(self, flow: FluidFlow) -> float:
        """Instantaneous allocated rate of *flow* in bits/second."""
        return 0.0 if flow.closed else flow.rate

    def link_load(self, link_name: str, src: str) -> float:
        """Instantaneous bits/second on the given link direction."""
        link = self.topology.link(link_name)
        direction = link.direction(src, link.other(src))
        return sum(
            flow.rate
            for flow in self._flows.values()
            if direction.key in flow.resources
        )

    def link_octets(self, link_name: str, src: str) -> float:
        """Cumulative octets carried on the link direction leaving *src*.

        This is the quantity a router's SNMP ``ifOutOctets`` counter reports
        for the interface attached to the link.
        """
        self._sync()
        link = self.topology.link(link_name)
        direction = link.direction(src, link.other(src))
        return self._octets[direction.key]

    def capacities(self) -> dict[Hashable, float]:
        """Copy of the static resource capacity map."""
        return dict(self._capacities)

    def utilization(self, link_name: str, src: str) -> float:
        """Instantaneous utilization (0..1) of the link direction from *src*."""
        link = self.topology.link(link_name)
        return self.link_load(link_name, src) / link.capacity
