"""Event-driven fluid-flow network simulation.

This package animates a static :class:`~repro.net.Topology` over a
:class:`~repro.sim.Engine`: concurrent flows receive instantaneous rates
from the weighted max-min engine (:mod:`repro.fairshare`), and every change
to the flow set triggers a global re-allocation.  Between changes rates are
constant, so byte counts are exact integrals — which makes the simulated
SNMP octet counters (:mod:`repro.snmp`) faithful.

Packet-level detail is deliberately absent: every phenomenon the paper
measures (bottleneck sharing, competing traffic, hop latency) is a
rate-allocation phenomenon, and max-min is exactly the sharing model Remos
itself assumes (§4.2).
"""

from repro.netsim.fluid import FluidFlow, FluidNetwork, Reservation, TransferHandle

__all__ = ["FluidNetwork", "FluidFlow", "TransferHandle", "Reservation"]
