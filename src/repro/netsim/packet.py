"""A packet-level reference simulator for validating the fluid model.

DESIGN.md argues the fluid max-min model is a faithful substitute for the
testbed.  This module makes that argument *empirical*: a small
store-and-forward packet simulator with per-flow round-robin (fair
queueing) service on every directed link.  Fair queueing over equal-size
packets is the classic realisation of max-min fairness (Hahne 1991 — the
paper's own citation [12]), so saturating flows here should converge to
the fluid allocation; ``tests/netsim/test_packet_validation.py`` checks
that they do, within a few percent, on assorted topologies.

The packet simulator is deliberately small and slow — it exists for
validation, not for running experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.net import RoutingTable, Topology
from repro.sim import Engine, Event
from repro.util.errors import SimulationError

#: Ethernet-ish MTU; all packets are full-size.
PACKET_BYTES = 1500.0
#: Source window: packets allowed in flight into the first hop before the
#: source blocks (models transport backpressure, keeps queues bounded).
SOURCE_WINDOW = 8


@dataclass
class PacketFlow:
    """One flow in the packet simulator."""

    flow_id: int
    src: str
    dst: str
    hops: tuple
    rate: float | None  # None = saturating (always backlogged)
    delivered_bytes: float = 0.0
    injected_packets: int = 0
    in_flight: int = 0

    def throughput(self, duration: float) -> float:
        """Achieved delivery rate in bits/second over *duration*."""
        if duration <= 0:
            raise SimulationError("duration must be positive")
        return self.delivered_bytes * 8.0 / duration


@dataclass
class _LinkServer:
    """Round-robin packet service for one directed link."""

    capacity: float
    latency: float
    queues: dict[int, deque] = field(default_factory=dict)
    order: deque = field(default_factory=deque)
    busy: bool = False
    wakeup: Event | None = None

    def backlog(self) -> int:
        return sum(len(q) for q in self.queues.values())


class PacketLevelSimulator:
    """Store-and-forward simulation with per-flow fair queueing."""

    def __init__(self, topology: Topology, routing: RoutingTable | None = None):
        self.topology = topology
        self.routing = routing or RoutingTable(topology)
        self.env = Engine()
        self._flows: list[PacketFlow] = []
        self._servers: dict = {}
        for direction in topology.iter_directions():
            self._servers[direction.key] = _LinkServer(
                capacity=direction.capacity, latency=direction.latency
            )

    # -- setup ----------------------------------------------------------------

    def add_flow(self, src: str, dst: str, rate: float | None = None) -> PacketFlow:
        """Add a flow; ``rate=None`` makes it saturating (greedy)."""
        for name in (src, dst):
            if not self.topology.node(name).is_compute:
                raise SimulationError(f"{name!r} is not a compute node")
        route = self.routing.route(src, dst)
        if not route.hops:
            raise SimulationError("loopback flows are not supported here")
        flow = PacketFlow(
            flow_id=len(self._flows), src=src, dst=dst, hops=route.hops, rate=rate
        )
        self._flows.append(flow)
        return flow

    # -- mechanics ---------------------------------------------------------------

    def _enqueue(self, flow: PacketFlow, hop_index: int) -> None:
        server = self._servers[flow.hops[hop_index].key]
        queue = server.queues.setdefault(flow.flow_id, deque())
        if not queue and flow.flow_id not in server.order:
            server.order.append(flow.flow_id)
        queue.append(hop_index)
        if server.wakeup is not None and not server.wakeup.triggered:
            server.wakeup.succeed()
            server.wakeup = None

    def _deliver(self, flow: PacketFlow, hop_index: int) -> None:
        if hop_index + 1 < len(flow.hops):
            self._enqueue(flow, hop_index + 1)
        else:
            flow.delivered_bytes += PACKET_BYTES
            flow.in_flight -= 1
            self._refill(flow)

    def _refill(self, flow: PacketFlow) -> None:
        """Saturating sources keep the window full."""
        if flow.rate is not None:
            return
        while flow.in_flight < SOURCE_WINDOW:
            flow.in_flight += 1
            flow.injected_packets += 1
            self._enqueue(flow, 0)

    def _link_process(self, key):
        server = self._servers[key]
        env = self.env
        transmit_time = PACKET_BYTES * 8.0 / server.capacity
        while True:
            if not server.order:
                server.wakeup = env.event()
                yield server.wakeup
                continue
            flow_id = server.order.popleft()
            queue = server.queues[flow_id]
            hop_index = queue.popleft()
            if queue:
                server.order.append(flow_id)  # round-robin re-queue
            yield env.timeout(transmit_time)
            # Propagation: schedule arrival at the next hop after latency
            # without blocking this link's service loop.
            flow = self._flows[flow_id]

            def arrive(event, flow=flow, hop_index=hop_index):
                self._deliver(flow, hop_index)

            arrival = env.event()
            arrival.callbacks.append(arrive)
            arrival.succeed(delay=server.latency)

    def _rate_source(self, flow: PacketFlow):
        env = self.env
        interval = PACKET_BYTES * 8.0 / flow.rate
        while True:
            yield env.timeout(interval)
            flow.injected_packets += 1
            flow.in_flight += 1
            self._enqueue(flow, 0)

    # -- running ----------------------------------------------------------------

    def run(self, duration: float) -> None:
        """Simulate *duration* seconds of packet forwarding."""
        if duration <= 0:
            raise SimulationError("duration must be positive")
        for key in self._servers:
            self.env.process(self._link_process(key), name=f"link:{key}")
        for flow in self._flows:
            if flow.rate is None:
                self._refill(flow)
            else:
                self.env.process(self._rate_source(flow), name=f"src:{flow.flow_id}")
        self.env.run(until=duration)

    def throughputs(self, duration: float) -> dict[int, float]:
        """Per-flow delivered bits/second over *duration*."""
        return {f.flow_id: f.throughput(duration) for f in self._flows}
