"""Host CPU activity accounting.

The paper: "Remos does include a simple interface to computation and
memory resources" (§2), and §7.2 flags "tradeoffs between computation and
communication resources" as future clustering work.  This module supplies
the substrate: per-host busy-time integrals the SNMP agents expose (like a
Unix load/uptime counter pair) and the collectors turn into CPU
utilization series.

Busy time accumulates from two sources:

* the Fx runtime's compute phases (`mark_busy` on every mapped host);
* synthetic :class:`ComputeLoad` processes standing in for other users'
  jobs on shared workstations.
"""

from __future__ import annotations

from repro.sim import Engine, Interrupt, Process
from repro.util.errors import ConfigurationError, SimulationError


class HostActivity:
    """Per-host cumulative busy seconds, integrable at any instant."""

    def __init__(self, env: Engine, host_names: list[str]):
        self.env = env
        self._accumulated: dict[str, float] = {name: 0.0 for name in host_names}
        # Fraction of the CPU currently in use, per host (may exceed 1 when
        # jobs overlap; time-shared CPUs cap the *rate* of busy accrual at 1).
        self._active_share: dict[str, float] = {name: 0.0 for name in host_names}
        self._last_sync: dict[str, float] = {name: env.now for name in host_names}

    def _check(self, host: str) -> None:
        if host not in self._accumulated:
            raise SimulationError(f"unknown host {host!r} in activity tracker")

    def _sync(self, host: str) -> None:
        now = self.env.now
        elapsed = now - self._last_sync[host]
        if elapsed > 0:
            rate = min(1.0, self._active_share[host])
            self._accumulated[host] += rate * elapsed
        self._last_sync[host] = now

    def set_share(self, host: str, delta: float) -> None:
        """Adjust the host's active CPU share by *delta* (can be negative)."""
        self._check(host)
        self._sync(host)
        self._active_share[host] = max(0.0, self._active_share[host] + delta)

    def busy_seconds(self, host: str) -> float:
        """Cumulative CPU-busy seconds up to now."""
        self._check(host)
        self._sync(host)
        return self._accumulated[host]

    def current_utilization(self, host: str) -> float:
        """Instantaneous CPU utilization in [0, 1]."""
        self._check(host)
        return min(1.0, self._active_share[host])

    def active_share(self, host: str) -> float:
        """Raw sum of active job shares (may exceed 1 when oversubscribed).

        A new job arriving now gets ``1 / (1 + active_share)`` of the CPU
        under fair time-sharing — the slowdown model the Fx runtime uses.
        """
        self._check(host)
        return self._active_share[host]


class ComputeLoad:
    """A synthetic CPU hog occupying *share* of a host's CPU.

    Stands in for "computation load ... on network nodes" (§1) from other
    users of a shared workstation pool.
    """

    def __init__(
        self,
        activity: HostActivity,
        host: str,
        share: float = 1.0,
        start: float = 0.0,
        duration: float = float("inf"),
    ):
        if not 0.0 < share <= 1.0:
            raise ConfigurationError(f"CPU share must be in (0,1], got {share}")
        if start < 0 or duration <= 0:
            raise ConfigurationError("start must be >= 0 and duration positive")
        self.activity = activity
        self.host = host
        self.share = share
        self.start = start
        self.duration = duration
        self.done: Process = activity.env.process(self._run(), name=f"load:{host}")

    def _run(self):
        env = self.activity.env
        engaged = False
        try:
            if self.start > 0:
                yield env.timeout(self.start)
            self.activity.set_share(self.host, +self.share)
            engaged = True
            if self.duration == float("inf"):
                yield env.event()
            else:
                yield env.timeout(self.duration)
        except Interrupt:
            pass
        finally:
            if engaged:
                self.activity.set_share(self.host, -self.share)

    def stop(self) -> None:
        """Terminate the load early (idempotent)."""
        if self.done.is_alive:
            self.done.interrupt("stop")
