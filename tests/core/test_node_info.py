"""node_info queries: the computation/memory resource interface (§2)."""

import pytest

from repro.core import Timeframe
from repro.netsim.hostload import ComputeLoad
from repro.testbed import build_cmu_testbed
from repro.util.errors import QueryError


@pytest.fixture
def monitored_world():
    world = build_cmu_testbed(poll_interval=1.0, monitor_hosts=True)
    return world


class TestNodeInfo:
    def test_static_attributes(self, monitored_world):
        remos = monitored_world.start_monitoring(warmup=5.0)
        answer = remos.node_info("m-1")
        assert answer.name == "m-1"
        assert answer.compute_speed == 4e7
        assert answer.memory_bytes == 256e6

    def test_idle_host_reports_zero_load(self, monitored_world):
        remos = monitored_world.start_monitoring(warmup=5.0)
        answer = remos.node_info("m-1")
        assert answer.cpu_load.median == pytest.approx(0.0, abs=1e-6)
        assert answer.cpu_available.median == pytest.approx(1.0, abs=1e-6)
        assert answer.effective_speed == pytest.approx(4e7)

    def test_loaded_host_measured(self, monitored_world):
        world = monitored_world
        ComputeLoad(world.net.host_activity, "m-3", share=0.7)
        remos = world.start_monitoring(warmup=20.0)
        answer = remos.node_info("m-3", Timeframe.history(15.0))
        assert answer.cpu_load.median == pytest.approx(0.7, rel=0.05)
        assert answer.effective_speed == pytest.approx(4e7 * 0.3, rel=0.1)

    def test_router_rejected(self, monitored_world):
        remos = monitored_world.start_monitoring(warmup=5.0)
        with pytest.raises(QueryError, match="compute nodes"):
            remos.node_info("aspen")

    def test_unmonitored_host_assumed_idle_low_accuracy(self):
        world = build_cmu_testbed(poll_interval=1.0)  # routers only
        remos = world.start_monitoring(warmup=5.0)
        answer = remos.node_info("m-1")
        assert answer.cpu_load.median == 0.0
        assert answer.cpu_load.accuracy <= 0.3

    def test_static_timeframe_ignores_load(self, monitored_world):
        world = monitored_world
        ComputeLoad(world.net.host_activity, "m-3", share=1.0)
        remos = world.start_monitoring(warmup=20.0)
        answer = remos.node_info("m-3", Timeframe.static())
        assert answer.cpu_load.median == 0.0

    def test_application_shows_up_in_load(self, monitored_world):
        from repro.apps import SyntheticApp

        world = monitored_world
        remos = world.start_monitoring(warmup=5.0)
        app = SyntheticApp(flops_per_rank=4e8, comm_bytes=1e3, iterations=3)
        world.env.run(until=world.runtime().launch(app, ["m-1", "m-2"]))
        world.settle(3.0)
        answer = remos.node_info("m-1", Timeframe.history(20.0))
        assert answer.cpu_load.maximum > 0.5
