"""Differential suite: the TimeframeEvaluator vs the frozen pre-refactor oracle.

The tentpole refactor's acceptance criterion, executable:

* STATIC / CURRENT / HISTORY bandwidth answers are **bit-identical** to
  the pre-refactor branch ladder (``_oracle_timeframe.py``, frozen);
* CPU answers keep identical quartiles everywhere, and identical accuracy
  except CURRENT — where the refactor deliberately replaced the CPU
  path's hard-coded ``.degraded(0.9)`` with the sample-derived rule the
  bandwidth path always used (one CURRENT rule for every series);
* FUTURE answers keep the oracle's quartiles, with accuracy switching
  from the predictor's fixed prior to the backtester's *measured*
  accuracy once enough past predictions have been scored.
"""

import random

import pytest

from repro.collector import MetricsStore
from repro.collector.base import NetworkView
from repro.core import Timeframe
from repro.core.evaluator import TimeframeEvaluator, current_window_width
from repro.core.modeler import Modeler
from repro.stats import StatMeasure
from repro.util import mbps

from tests.core._oracle_timeframe import oracle_cpu_load, oracle_used_bandwidth
from tests.core.conftest import line_topology


def noisy_view(seed=7, samples=40, cpu_hosts=("h1", "h3")):
    """Every direction measured with its own noisy level; CPU on two hosts."""
    rng = random.Random(seed)
    topology = line_topology()
    metrics = MetricsStore()
    for direction in topology.iter_directions():
        level = rng.uniform(0.0, mbps(80))
        for i in range(samples):
            metrics.record(
                direction.link.name,
                direction.src,
                float(i),
                max(0.0, level + rng.gauss(0.0, mbps(5))),
            )
    for host in cpu_hosts:
        base = rng.uniform(0.1, 0.7)
        for i in range(samples):
            metrics.record_cpu(host, float(i), base + rng.gauss(0.0, 0.05))
    return NetworkView(topology=topology, metrics=metrics)


def assert_identical(actual: StatMeasure, expected: StatMeasure):
    assert actual.minimum == expected.minimum
    assert actual.q1 == expected.q1
    assert actual.median == expected.median
    assert actual.q3 == expected.q3
    assert actual.maximum == expected.maximum
    assert actual.mean == expected.mean
    assert actual.n_samples == expected.n_samples
    assert actual.accuracy == expected.accuracy


def assert_same_quartiles(actual: StatMeasure, expected: StatMeasure):
    assert actual.minimum == expected.minimum
    assert actual.q1 == expected.q1
    assert actual.median == expected.median
    assert actual.q3 == expected.q3
    assert actual.maximum == expected.maximum
    assert actual.mean == expected.mean


PAST_TIMEFRAMES = [
    Timeframe.static(),
    Timeframe.current(),
    Timeframe.history(5.0),
    Timeframe.history(30.0),
    Timeframe.history(1000.0),
]


class TestBandwidthBitIdentical:
    @pytest.mark.parametrize("timeframe", PAST_TIMEFRAMES, ids=str)
    def test_every_direction_matches_oracle(self, timeframe):
        view = noisy_view()
        modeler = Modeler(view)
        for direction in view.topology.iter_directions():
            assert_identical(
                modeler.used_bandwidth(direction, timeframe),
                oracle_used_bandwidth(view, direction, timeframe),
            )

    @pytest.mark.parametrize("timeframe", PAST_TIMEFRAMES, ids=str)
    def test_unmeasured_direction_matches_oracle(self, timeframe):
        view = NetworkView(topology=line_topology(), metrics=MetricsStore())
        modeler = Modeler(view)
        direction = view.topology.link("t12").direction("r1", "r2")
        assert_identical(
            modeler.used_bandwidth(direction, timeframe),
            oracle_used_bandwidth(view, direction, timeframe),
        )

    def test_history_window_past_samples_matches_oracle(self):
        # HISTORY window that retains nothing falls back to latest @ 0.5.
        view = noisy_view(samples=10)
        modeler = Modeler(view)
        # Advance now far beyond the samples by touching another series.
        view.metrics.record("t12", "r1", 500.0, mbps(1))
        timeframe = Timeframe.history(3.0)
        direction = view.topology.link("t23").direction("r2", "r3")
        assert_identical(
            modeler.used_bandwidth(direction, timeframe),
            oracle_used_bandwidth(view, direction, timeframe),
        )

    def test_future_quartiles_match_oracle(self):
        view = noisy_view()
        modeler = Modeler(view)
        timeframe = Timeframe.future(10.0, predictor="ewma", window=30.0)
        for direction in view.topology.iter_directions():
            assert_same_quartiles(
                modeler.used_bandwidth(direction, timeframe),
                oracle_used_bandwidth(view, direction, timeframe),
            )


class TestCpuUnifiedCurrentRule:
    @pytest.mark.parametrize(
        "timeframe",
        [Timeframe.static(), Timeframe.history(5.0), Timeframe.history(1000.0)],
        ids=str,
    )
    def test_static_history_identical(self, timeframe):
        view = noisy_view()
        modeler = Modeler(view)
        for host in ("h1", "h3", "h4"):  # h4 has no CPU series
            assert_identical(
                modeler.cpu_load(host, timeframe),
                oracle_cpu_load(view, host, timeframe),
            )

    def test_current_same_quartiles_sample_derived_accuracy(self):
        """The lock-in for the unified CURRENT rule.

        Quartiles still collapse onto the latest sample (as the oracle's),
        but accuracy is now derived from the trailing window — the rule the
        bandwidth path always used — not the CPU path's blind 0.9.
        """
        view = noisy_view()
        modeler = Modeler(view)
        for host in ("h1", "h3"):
            actual = modeler.cpu_load(host, Timeframe.current())
            expected = oracle_cpu_load(view, host, Timeframe.current())
            assert_same_quartiles(actual, expected)
            assert expected.accuracy == 0.9  # the old hard-coded rule
            series = view.metrics.cpu_series(host)
            now = view.metrics.latest_timestamp()
            recent = series.window(now - current_window_width(series), now)
            derived = min(1.0, StatMeasure.from_samples(recent).accuracy)
            assert actual.accuracy == derived
            assert actual.accuracy != 0.9

    def test_current_rule_shared_with_bandwidth(self):
        """Same samples -> same CURRENT answer, whichever path serves them."""
        topology = line_topology()
        metrics = MetricsStore()
        for i in range(30):
            value = 0.3 + 0.01 * (i % 5)
            metrics.record("t12", "r1", float(i), value)
            metrics.record_cpu("h1", float(i), value)
        view = NetworkView(topology=topology, metrics=metrics)
        modeler = Modeler(view)
        bandwidth = modeler.used_bandwidth(
            topology.link("t12").direction("r1", "r2"), Timeframe.current()
        )
        cpu = modeler.cpu_load("h1", Timeframe.current())
        assert_identical(cpu, bandwidth)


class TestFutureMeasuredAccuracy:
    def test_prior_until_enough_settled_then_measured(self):
        """FUTURE accuracy: fixed prior first, earned measurement later."""
        topology = line_topology()
        metrics = MetricsStore()
        direction = topology.link("t12").direction("r1", "r2")
        for i in range(30):
            metrics.record("t12", "r1", float(i), mbps(40))
        view = NetworkView(topology=topology, metrics=metrics)
        evaluator = TimeframeEvaluator()
        timeframe = Timeframe.future(5.0, predictor="ewma", window=60.0)

        modeler = Modeler(view, evaluator=evaluator)
        first = modeler.used_bandwidth(direction, timeframe)
        # Nothing settled yet: the oracle's fixed-prior accuracy verbatim.
        oracle = oracle_used_bandwidth(view, direction, timeframe)
        assert first.accuracy == oracle.accuracy

        # Advance time past several horizons, keeping the series flat; each
        # epoch gets a fresh Modeler sharing the evaluator (as fork() does).
        now = 29.0
        for _ in range(5):
            for step in range(1, 7):
                metrics.record("t12", "r1", now + step, mbps(40))
            now += 6.0
            modeler = Modeler(view, evaluator=evaluator)
            answer = modeler.used_bandwidth(direction, timeframe)

        key = ("t12", "r1")
        measured = evaluator.backtester.accuracy(key, "ewma", 5.0)
        assert measured is not None
        assert answer.accuracy == pytest.approx(min(1.0, measured))
        # A flat series is perfectly predictable: the earned accuracy beats
        # the fixed PREDICTION_DISCOUNT prior.
        assert answer.accuracy > first.accuracy

    def test_auto_builds_shadow_records(self):
        """'auto' queries accrue backtest cells for every candidate."""
        from repro.stats.predictors import AutoPredictor

        topology = line_topology()
        metrics = MetricsStore()
        direction = topology.link("t12").direction("r1", "r2")
        for i in range(30):
            metrics.record("t12", "r1", float(i), mbps(10) + mbps(1) * i)
        view = NetworkView(topology=topology, metrics=metrics)
        evaluator = TimeframeEvaluator()
        timeframe = Timeframe.future(5.0, predictor="auto", window=120.0)

        Modeler(view, evaluator=evaluator).used_bandwidth(direction, timeframe)
        for name in AutoPredictor.CANDIDATES:
            report = evaluator.backtester.cell_report(("t12", "r1"), name, 5.0)
            assert report is not None and report["pending"] >= 1

    def test_fork_shares_backtester(self):
        view = noisy_view()
        modeler = Modeler(view)
        child = modeler.fork(view)
        assert child.evaluator is not modeler.evaluator
        assert child.evaluator.backtester is modeler.evaluator.backtester
