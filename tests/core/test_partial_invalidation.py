"""Fine-grained cache invalidation: partial evictions stay bit-exact.

The contract under test (docs/PERFORMANCE.md, "Invalidation model"): a
metrics-only sweep evicts exactly the entries it touched; everything that
survives — per-direction estimates, logical graphs, routing tables — must
answer **bit-identically** to a full recompute, including the subtle case
where advancing the evaluation clock ages samples out of an *untouched*
direction's summary window.
"""

import random

import pytest

from repro.collector import CollectorMaster, MetricsStore
from repro.collector.base import NetworkView
from repro.core import Flow, Remos, Timeframe
from repro.util import mbps

from tests.collector.test_master_incremental import ScriptedCollector
from tests.core.conftest import line_topology, measured_view


def _flows(remos, timeframe):
    return remos.flow_info(
        variable_flows=[Flow("h1", "h3"), Flow("h2", "h4")], timeframe=timeframe
    )


class TestPartialEviction:
    def test_metrics_only_sweep_evicts_only_touched_entries(self):
        view = measured_view(line_topology(), {("t23", "r2"): mbps(20)})
        remos = Remos(view)
        timeframe = Timeframe.history(30.0)
        before = _flows(remos, timeframe)
        stats = remos.cache_stats
        misses_before = stats.per_cache["bandwidth"]["misses"]
        # Enough heavy samples to move the 30 s-window median, at times
        # close enough that nothing ages out of the untouched windows.
        for i in range(25):
            view.metrics.record("t23", "r2", 20.0 + 0.4 * i, mbps(80))
        view.record_sweep({("t23", "r2")})
        after = _flows(remos, timeframe)
        assert after != before
        assert after.variable[0].bandwidth.median < before.variable[0].bandwidth.median
        assert stats.invalidations == 0
        assert stats.partial_invalidations == 1
        # Exactly the touched direction was recomputed; the other eleven
        # directions of the line network were served from cache.
        assert stats.per_cache["bandwidth"]["misses"] == misses_before + 1

    def test_graph_cache_survives_sweeps_off_its_links(self):
        view = measured_view(line_topology(), {})
        remos = Remos(view)
        timeframe = Timeframe.history(30.0)
        first = remos.get_graph(["h1", "h2"], timeframe)  # h1-r1-h2: no trunk
        view.metrics.record("t23", "r2", 20.0, mbps(50))
        view.record_sweep({("t23", "r2")})
        assert remos.get_graph(["h1", "h2"], timeframe) is first
        # A sweep touching a link the graph *does* cross evicts it.
        link = view.topology.links_at("h1")[0].name
        view.metrics.record(link, "h1", 21.0, mbps(50))
        view.record_sweep({(link, "h1")})
        assert remos.get_graph(["h1", "h2"], timeframe) is not first

    def test_window_aging_of_untouched_direction_is_detected(self):
        # t12 has only old samples; sweeping t23 alone jumps the evaluation
        # clock far enough that they age out of t12's 30 s history window.
        # The untouched cached entry is then stale and must be recomputed —
        # the cheap check is per-entry, not per-sweep.
        topology = line_topology()
        metrics = MetricsStore()
        for i in range(5):
            metrics.record("t12", "r1", float(i), mbps(50))
        metrics.record("t23", "r2", 0.0, mbps(10))
        view = NetworkView(topology=topology, metrics=metrics)
        cached = Remos(view)
        uncached = Remos(view, enable_cache=False)
        timeframe = Timeframe.history(30.0)
        assert _flows(cached, timeframe) == _flows(uncached, timeframe)
        metrics.record("t23", "r2", 40.0, mbps(10))
        view.record_sweep({("t23", "r2")})
        assert _flows(cached, timeframe) == _flows(uncached, timeframe)
        assert cached.cache_stats.partial_invalidations == 1

    def test_in_place_structure_change_revalidates_routing(self):
        view = measured_view(line_topology(), {})
        remos = Remos(view)
        remos.get_graph(["h1", "h3"])
        routing = remos._modeler().routing
        # Identical rebuild: the table survives, rebased onto the new object.
        view.topology = line_topology()
        view.record_structure_change()
        remos.get_graph(["h1", "h3"])
        assert remos._modeler().routing is routing
        assert remos._modeler().routing.topology is view.topology
        assert remos.cache_stats.routing_rebuilds == 0
        # A genuinely different structure forces a rebuild.
        grown = line_topology()
        grown.add_compute_node("h5")
        grown.add_link("h5", "r1", mbps(100), 1e-4, name="l-h5")
        view.topology = grown
        view.record_structure_change()
        remos.get_graph(["h1", "h5"])
        assert remos._modeler().routing is not routing
        assert remos.cache_stats.routing_rebuilds == 1


class TestIncrementalMatchesFullRebuild:
    """Randomized sweep sequences: incremental == full-rebuild, bit for bit."""

    @pytest.mark.parametrize("seed", [7, 1998])
    def test_randomized_sweeps_differential(self, seed):
        rng = random.Random(seed)
        child1, child2 = self._children()
        collectors = [child1, child2]
        incremental = CollectorMaster(None, [c for c in collectors])
        rebuild = CollectorMaster(None, [c for c in collectors], full_rebuild=True)
        remos_inc = Remos(incremental)
        remos_ref = Remos(rebuild, enable_cache=False)
        keys = {child1: self._keys(child1, "h1", "h2"), child2: self._keys(child2, "h3", "h4")}
        keys[child2][0] = ("t12", "r1")  # deliberate series conflict with child1
        timeframes = (Timeframe.current(), Timeframe.history(15.0), Timeframe.future(20.0))
        for round_no in range(20):
            time = 5.0 * (round_no + 1)
            for child in collectors:
                touched = set()
                for key in keys[child]:
                    if rng.random() < 0.5:
                        self._sample(child, key, time, rng)
                        touched.add(key)
                if round_no == 8 and child is child1:
                    child.view().bump_generation()  # journal gap
                elif round_no == 13 and child is child2:
                    # Identical rebuild: structural stamp, same structure.
                    view = child.view()
                    view.topology = self._line()
                    view.record_structure_change()
                else:
                    child.view().record_sweep(touched)
            incremental.refresh()
            rebuild.refresh()
            for timeframe in timeframes:
                assert _flows(remos_inc, timeframe) == _flows(remos_ref, timeframe)
            graph_inc = remos_inc.get_graph(["h1", "h3", "h4"], Timeframe.history(15.0))
            graph_ref = remos_ref.get_graph(["h1", "h3", "h4"], Timeframe.history(15.0))
            assert graph_inc.to_dict() == graph_ref.to_dict()
            assert remos_inc.node_info("h1") == remos_ref.node_info("h1")
            assert remos_inc.node_info("h3") == remos_ref.node_info("h3")
        # The point of the exercise: most refreshes really were incremental.
        assert incremental.delta_merges >= 10
        assert rebuild.delta_merges == 0

    @staticmethod
    def _line():
        return line_topology()

    def _children(self):
        return (
            ScriptedCollector(NetworkView(topology=self._line(), metrics=MetricsStore())),
            ScriptedCollector(NetworkView(topology=self._line(), metrics=MetricsStore())),
        )

    @staticmethod
    def _keys(child, *hosts):
        topo = child.view().topology
        keys = [("t12", "r1"), ("t12", "r2"), ("t23", "r2"), ("t23", "r3")]
        for host in hosts:
            keys.append((topo.links_at(host)[0].name, host))
            keys.append(("cpu", host))
        return keys

    @staticmethod
    def _sample(child, key, time, rng):
        link, src = key
        metrics = child.view().metrics
        if link == "cpu":
            metrics.record_cpu(src, time + rng.random(), rng.uniform(0.1, 0.9))
        else:
            metrics.record(link, src, time + rng.random(), rng.uniform(0.0, mbps(80)))
