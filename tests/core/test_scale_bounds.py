"""Tier-1 perf bound: small queries on big networks stay small.

A 256-host network must not pay all-pairs routing to answer a get_graph
over 5 nodes — the lazy per-source tables bound the Dijkstra runs to the
handful of sources the queried routes actually touch.
"""

from benchmarks.bench_ablation_scale import build_tree
from repro.collector import MetricsStore
from repro.collector.base import NetworkView
from repro.core import Remos, Timeframe

QUERY_HOSTS = ["h0", "h5", "h100", "h200", "h255"]


def make_remos(n_hosts: int = 256) -> Remos:
    topology, _ = build_tree(n_hosts)
    return Remos(NetworkView(topology=topology, metrics=MetricsStore()))


class TestGetGraphRoutingBound:
    def test_few_node_get_graph_never_triggers_all_pairs(self):
        remos = make_remos(256)
        remos.get_graph(QUERY_HOSTS, Timeframe.static())
        routing = remos._modeler().routing
        n_nodes = len(routing.topology.nodes)
        assert n_nodes > 300  # 256 hosts + 64 leaf routers + core
        # Sources touched: the 5 queried hosts, their leaf routers, and the
        # core — far below all-pairs over every node.
        assert routing.source_builds <= 32
        assert routing.source_builds < n_nodes / 8

    def test_repeat_query_builds_nothing_new(self):
        remos = make_remos(256)
        remos.get_graph(QUERY_HOSTS, Timeframe.static())
        routing = remos._modeler().routing
        builds = routing.source_builds
        remos.get_graph(QUERY_HOSTS, Timeframe.static())
        assert routing.source_builds == builds
        # A reordered query may promote a host that was only ever a route
        # destination into a source — at most a couple of new tables, never
        # a broad rebuild.
        remos.get_graph(list(reversed(QUERY_HOSTS)), Timeframe.static())
        assert routing.source_builds <= builds + 2

    def test_flow_query_shares_the_lazy_tables(self):
        from repro.core import Flow

        remos = make_remos(256)
        remos.get_graph(QUERY_HOSTS, Timeframe.static())
        routing = remos._modeler().routing
        builds = routing.source_builds
        remos.flow_info(
            variable_flows=[Flow("h0", "h5"), Flow("h100", "h200")],
            timeframe=Timeframe.static(),
        )
        # Flow queries over already-routed endpoints reuse the same tables.
        assert routing.source_builds == builds
