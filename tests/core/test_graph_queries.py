"""remos_get_graph: logical topology construction."""

import pytest

from repro.core import Remos, Timeframe, remos_get_graph
from repro.net import NodeKind, TopologyBuilder
from repro.util import mbps
from repro.util.errors import QueryError

from tests.core.conftest import measured_view


class TestPruning:
    def test_irrelevant_parts_dropped(self, idle_remos):
        graph = idle_remos.get_graph(["h1", "h2"])
        names = {n.name for n in graph.nodes}
        # h1 and h2 talk through r1 only: r2, r3, h3, h4 are pruned.
        assert names == {"h1", "h2", "r1"}

    def test_single_node_graph(self, idle_remos):
        graph = idle_remos.get_graph(["h1"])
        assert {n.name for n in graph.nodes} == {"h1"}
        assert graph.edges == []

    def test_unknown_node_rejected(self, idle_remos):
        with pytest.raises(QueryError, match="unknown node"):
            idle_remos.get_graph(["h1", "nope"])

    def test_router_in_query_rejected(self, idle_remos):
        with pytest.raises(QueryError, match="compute nodes"):
            idle_remos.get_graph(["h1", "r1"])

    def test_empty_query_rejected(self, idle_remos):
        with pytest.raises(QueryError, match="at least one node"):
            idle_remos.get_graph([])


class TestChainCollapse:
    def test_degree2_router_chain_collapses(self, idle_remos):
        # h1 -- r1 -- r2 -- r3 -- h3: r2 is a pass-through degree-2 router
        # between anchors r1 and r3 and must vanish into one logical link.
        graph = idle_remos.get_graph(["h1", "h3"])
        names = {n.name for n in graph.nodes}
        assert "r2" not in names
        assert names == {"h1", "h3", "r1", "r3"}
        edge = next(e for e in graph.edges if {e.a, e.b} == {"r1", "r3"})
        assert edge.capacity == mbps(100)
        assert edge.latency == pytest.approx(2e-3)  # 1ms + 1ms
        assert set(edge.physical_links) == {"t12", "t23"}

    def test_collapse_keeps_finite_crossbar_router(self):
        topo = (
            TopologyBuilder()
            .hosts(["a", "b"])
            .router("r1")
            .router("rmid", internal_bandwidth="50Mbps")
            .router("r2")
            .link("a", "r1", "100Mbps", "0.1ms")
            .link("r1", "rmid", "100Mbps", "1ms")
            .link("rmid", "r2", "100Mbps", "1ms")
            .link("r2", "b", "100Mbps", "0.1ms")
            .build()
        )
        remos = Remos(measured_view(topo, {}))
        graph = remos.get_graph(["a", "b"])
        # rmid's finite crossbar is behaviour the app can observe: keep it.
        assert graph.has_node("rmid")

    def test_availability_is_chain_bottleneck(self, loaded_remos):
        graph = loaded_remos.get_graph(["h1", "h3"], Timeframe.history(30.0))
        edge = next(e for e in graph.edges if {e.a, e.b} == {"r1", "r3"})
        # Eastbound r1->r3 is limited by the loaded t23 (40 available).
        assert edge.available_from("r1").median == pytest.approx(mbps(40))
        # Westbound both hops idle.
        assert edge.available_from("r3").median == pytest.approx(mbps(100))


class TestAnnotations:
    def test_node_kinds_preserved(self, idle_remos):
        graph = idle_remos.get_graph(["h1", "h3"])
        assert graph.node("h1").kind is NodeKind.COMPUTE
        assert graph.node("r1").kind is NodeKind.NETWORK
        assert graph.node("h1").is_compute

    def test_static_timeframe_availability_equals_capacity(self, loaded_remos):
        graph = loaded_remos.get_graph(["h1", "h3"], Timeframe.static())
        for edge in graph.edges:
            for endpoint in (edge.a, edge.b):
                assert edge.available_from(endpoint).median == pytest.approx(edge.capacity)

    def test_path_available(self, loaded_remos):
        graph = loaded_remos.get_graph(["h1", "h3"], Timeframe.history(30.0))
        assert graph.path_available("h1", "h3").median == pytest.approx(mbps(40))
        assert graph.path_available("h3", "h1").median == pytest.approx(mbps(100))

    def test_path_latency(self, idle_remos):
        graph = idle_remos.get_graph(["h1", "h3"])
        assert graph.path_latency("h1", "h3") == pytest.approx(2.2e-3)

    def test_distance_matrix(self, loaded_remos):
        graph = loaded_remos.get_graph(
            ["h1", "h2", "h3", "h4"], Timeframe.history(30.0)
        )
        names, matrix = graph.distance_matrix(["h1", "h2", "h3"])
        assert names == ["h1", "h2", "h3"]
        assert matrix[0, 0] == 0.0
        # h1-h2 same router (100 available) is closer than h1-h3 (40).
        assert matrix[0, 1] < matrix[0, 2]

    def test_to_networkx(self, idle_remos):
        graph = idle_remos.get_graph(["h1", "h3"]).to_networkx()
        assert "h1" in graph
        assert graph.number_of_edges() == 3  # h1-r1, r1~r3, r3-h3

    def test_procedural_wrapper(self, idle_remos):
        graph = remos_get_graph(idle_remos, ["h1", "h2"])
        assert graph.has_node("r1")


class TestFigure1Interpretations:
    """The two readings of the paper's Fig. 1 network (see §4.3)."""

    @staticmethod
    def build(internal_bandwidth):
        builder = (
            TopologyBuilder("fig1")
            .router("A", internal_bandwidth=internal_bandwidth)
            .router("B", internal_bandwidth=internal_bandwidth)
        )
        for i in range(1, 5):
            builder.host(f"n{i}")
        for i in range(5, 9):
            builder.host(f"n{i}")
        for i in range(1, 5):
            builder.link(f"n{i}", "A", "10Mbps", "0.1ms")
        for i in range(5, 9):
            builder.link(f"n{i}", "B", "10Mbps", "0.1ms")
        builder.link("A", "B", "100Mbps", "0.1ms")
        return builder.build()

    def test_fast_routers_access_links_bottleneck(self):
        remos = Remos(measured_view(self.build(float("inf")), {}))
        from repro.core import Flow

        result = remos.flow_info(
            variable_flows=[Flow(f"n{i}", f"n{i + 4}") for i in range(1, 5)]
        )
        # All four concurrent flows get their full 10Mbps access rate.
        for answer in result.variable:
            assert answer.bandwidth.median == pytest.approx(mbps(10))

    def test_slow_routers_crossbar_bottleneck(self):
        from repro.util.units import parse_bandwidth

        remos = Remos(measured_view(self.build(parse_bandwidth("10Mbps")), {}))
        from repro.core import Flow

        result = remos.flow_info(
            variable_flows=[Flow(f"n{i}", f"n{i + 4}") for i in range(1, 5)]
        )
        # Aggregate through each router is capped at 10Mbps: 2.5 each.
        for answer in result.variable:
            assert answer.bandwidth.median == pytest.approx(mbps(2.5))
