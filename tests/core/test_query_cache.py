"""The generation-stamped query cache: correctness, invalidation, stats.

The staleness contract under test (docs/PERFORMANCE.md): a cached answer
is exact for its generation and is never served across generations —
identical queries against one generation are pure cache hits with equal
answers, and any collector sweep that changes utilization must change the
answers.
"""

import pytest

from repro.collector import MetricsStore, SNMPCollector
from repro.collector.base import NetworkView
from repro.core import Flow, Remos, Timeframe
from repro.net import RoutingTable
from repro.testbed import World
from repro.util import mbps

from tests.core.conftest import line_topology, measured_view


def _query(remos):
    return remos.flow_info(
        variable_flows=[Flow("h1", "h3"), Flow("h2", "h4")],
        timeframe=Timeframe.history(30.0),
    )


class TestCachedEqualsUncached:
    def test_flow_info_identical_with_and_without_cache(self):
        view = measured_view(line_topology(), {("t23", "r2"): mbps(60)})
        cached = Remos(view)
        uncached = Remos(view, enable_cache=False)
        assert _query(cached) == _query(uncached)
        # A second pass through the warm cache still matches the cold path.
        assert _query(cached) == _query(uncached)
        assert cached.cache_stats.hits > 0
        assert uncached.cache_stats.hits == 0 and uncached.cache_stats.misses == 0

    def test_get_graph_identical_with_and_without_cache(self):
        view = measured_view(line_topology(), {("t12", "r1"): mbps(30)})
        cached = Remos(view)
        uncached = Remos(view, enable_cache=False)
        nodes = ["h1", "h3", "h4"]
        timeframe = Timeframe.history(30.0)
        warm = cached.get_graph(nodes, timeframe)
        warm_again = cached.get_graph(nodes, timeframe)
        cold = uncached.get_graph(nodes, timeframe)
        assert warm.to_dict() == cold.to_dict()
        assert warm_again is warm  # second query is the cached object

    def test_node_info_identical_with_and_without_cache(self):
        topology = line_topology()
        metrics = MetricsStore()
        for i in range(10):
            metrics.record_cpu("h1", float(i), 0.25 + 0.01 * i)
        view = NetworkView(topology=topology, metrics=metrics)
        cached, uncached = Remos(view), Remos(view, enable_cache=False)
        assert cached.node_info("h1") == uncached.node_info("h1")


class TestPureHitsWithinGeneration:
    def test_second_identical_flow_query_is_pure_hit(self):
        view = measured_view(line_topology(), {("t23", "r2"): mbps(40)})
        remos = Remos(view)
        first = _query(remos)
        misses_after_first = remos.cache_stats.misses
        hits_after_first = remos.cache_stats.hits
        second = _query(remos)
        assert first == second
        # Pure hit: no new misses, only hits, no invalidation.
        assert remos.cache_stats.misses == misses_after_first
        assert remos.cache_stats.hits > hits_after_first
        assert remos.cache_stats.invalidations == 0

    def test_graph_cache_respects_query_order(self):
        view = measured_view(line_topology(), {})
        remos = Remos(view)
        timeframe = Timeframe.current()
        forward = remos.get_graph(["h1", "h3"], timeframe)
        backward = remos.get_graph(["h3", "h1"], timeframe)
        assert forward.query_nodes == ["h1", "h3"]
        assert backward.query_nodes == ["h3", "h1"]

    def test_query_stats_are_recorded(self):
        remos = Remos(measured_view(line_topology(), {}))
        _query(remos)
        remos.get_graph(["h1", "h4"])
        stats = remos.cache_stats
        assert stats.queries == 2
        assert stats.query_time > 0.0
        assert 0.0 <= stats.hit_rate <= 1.0
        assert set(stats.to_dict()) >= {"hits", "misses", "invalidations", "queries"}


class TestGenerationInvalidation:
    def test_bumped_generation_drops_cached_answers(self):
        topology = line_topology()
        view = measured_view(topology, {("t23", "r2"): mbps(20)})
        remos = Remos(view)
        before = _query(remos)
        # New sweep: heavier load on t23 eastbound, stamped as a new
        # generation exactly like a collector would.
        for i in range(20, 40):
            view.metrics.record("t23", "r2", float(i), mbps(80))
        view.bump_generation()
        after = _query(remos)
        assert remos.cache_stats.invalidations >= 1
        assert after != before
        assert (
            after.variable[0].bandwidth.median < before.variable[0].bandwidth.median
        )

    def test_collector_sweep_changes_flow_info_answers(self):
        """End to end: SNMP sweeps bump generations; answers track traffic."""
        world = World.from_topology(line_topology(), poll_interval=1.0)
        remos = world.start_monitoring(warmup=3.0)
        idle = remos.flow_info(
            variable_flows=[Flow("h1", "h3")], timeframe=Timeframe.current()
        )
        generation_idle = world.collector.view().generation
        # External traffic crossing the backbone, then more sweeps.
        world.net.open_flow("h2", "h4", demand=mbps(60), weight=1000.0)
        world.settle(5.0)
        loaded = remos.flow_info(
            variable_flows=[Flow("h1", "h3")], timeframe=Timeframe.current()
        )
        assert world.collector.view().generation > generation_idle
        assert (
            loaded.variable[0].bandwidth.median < idle.variable[0].bandwidth.median
        )
        # Since the incremental rework a sweep that enumerates what it
        # touched is applied as a partial invalidation; either way the
        # stale entries must have been dropped.
        assert (
            remos.cache_stats.invalidations + remos.cache_stats.partial_invalidations
            >= 1
        )

    def test_generation_monotone_per_sweep(self):
        world = World.from_topology(line_topology(), poll_interval=1.0)
        world.start_monitoring()
        view = world.collector.view()
        first = view.generation
        world.settle(3.0)
        assert view.generation > first
        assert view.generation - first == pytest.approx(3, abs=1)


class TestFutureCacheInvalidation:
    def test_future_entry_not_served_across_time_shift(self):
        """A FUTURE answer never survives an advancing evaluation clock.

        The metrics-only sweep touches *only* h4's access link — every
        series on the queried h1->h3 path is untouched, so their version
        stamps still match — yet ``Modeler.now`` (the latest timestamp
        across the whole store) has advanced, which moves the forecast
        origin.  The cached FUTURE entries must be recomputed, not served
        stale.
        """
        topology = line_topology()
        view = measured_view(topology, {("t23", "r2"): mbps(30)})
        remos = Remos(view)
        timeframe = Timeframe.future(10.0, predictor="ewma", window=60.0)

        def query():
            return remos.flow_info(
                variable_flows=[Flow("h1", "h3")], timeframe=timeframe
            )

        query()
        backtester = remos._modeler().evaluator.backtester
        recorded_first = backtester.recorded
        assert recorded_first > 0

        # Partial sweep off the queried path, advancing the clock 19 -> 100.
        view.metrics.record("h4--r3", "h4", 100.0, 0.0)
        view.record_sweep({("h4--r3", "h4")})

        misses_before = remos.cache_stats.per_cache["bandwidth"]["misses"]
        query()
        # Recomputed (bandwidth misses grew beyond the one touched entry),
        # and the evaluator filed fresh predictions at the new origin
        # (recording is deduped per made_at, so stale reuse records nothing).
        assert remos.cache_stats.per_cache["bandwidth"]["misses"] > misses_before
        assert backtester.recorded > recorded_first
        assert remos.cache_stats.invalidations == 0  # partial path, not a flush

    def test_history_entry_survives_the_same_time_shift(self):
        """Contrast: a HISTORY window that provably did not move survives
        the identical sweep — only FUTURE is time-origin-bound
        unconditionally."""
        topology = line_topology()
        view = measured_view(topology, {("t23", "r2"): mbps(30)})
        remos = Remos(view)

        def query():
            return remos.flow_info(
                variable_flows=[Flow("h1", "h3")],
                timeframe=Timeframe.history(1000.0),
            )

        before = query()
        view.metrics.record("h4--r3", "h4", 100.0, 0.0)
        view.record_sweep({("h4--r3", "h4")})
        misses_before = remos.cache_stats.per_cache["bandwidth"]["misses"]
        after = query()
        assert after == before
        # No sample ages out of the 1000 s windows: every path entry
        # revalidates; only the swept (off-path) direction could miss.
        assert (
            remos.cache_stats.per_cache["bandwidth"]["misses"] == misses_before
        )


class TestModelerReuseAcrossRefreshes:
    def test_routing_table_survives_in_place_refresh(self):
        world = World.from_topology(line_topology(), poll_interval=1.0)
        remos = world.start_monitoring(warmup=2.0)
        remos.get_graph(["h1", "h3"])
        modeler = remos._modeler()
        routing = modeler.routing
        world.settle(3.0)  # more sweeps, same topology object
        remos.get_graph(["h1", "h3"])
        # Snapshot publication forks a fresh Modeler per epoch, but the
        # routing table (topology unchanged) is shared across the fork.
        assert remos._modeler().routing is routing
        assert remos.cache_stats.routing_rebuilds == 0

    def test_routing_validity_check(self):
        topo_a = line_topology()
        topo_b = line_topology()  # structurally identical, distinct object
        routing = RoutingTable(topo_a)
        assert routing.is_valid_for(topo_a)
        assert routing.is_valid_for(topo_b)
        # A structural change (different latency) invalidates the table.
        from repro.net import TopologyBuilder

        different = (
            TopologyBuilder("line")
            .hosts(["h1", "h2", "h3", "h4"])
            .router("r1")
            .router("r2")
            .router("r3")
            .link("h1", "r1", "100Mbps", "0.1ms")
            .link("h2", "r1", "100Mbps", "0.1ms")
            .link("r1", "r2", "100Mbps", "5ms", name="t12")
            .link("r2", "r3", "100Mbps", "1ms", name="t23")
            .link("h3", "r3", "100Mbps", "0.1ms")
            .link("h4", "r3", "100Mbps", "0.1ms")
            .build()
        )
        assert not routing.is_valid_for(different)


class TestMetricsStoreTimestamp:
    def test_latest_timestamp_tracks_all_series(self):
        metrics = MetricsStore()
        assert metrics.latest_timestamp() == 0.0
        metrics.record("l1", "a", 5.0, 1.0)
        metrics.record("l2", "b", 9.0, 1.0)
        metrics.record("l1", "a", 7.0, 1.0)
        assert metrics.latest_timestamp() == 9.0

    def test_latest_timestamp_after_merge(self):
        left, right = MetricsStore(), MetricsStore()
        left.record("l1", "a", 3.0, 1.0)
        right.record("l2", "b", 11.0, 1.0)
        left.merge_from(right)
        assert left.latest_timestamp() == 11.0

    def test_modeler_now_matches_store(self):
        view = measured_view(line_topology(), {}, samples=5)
        from repro.core import Modeler

        assert Modeler(view).now == view.metrics.latest_timestamp() == 4.0
