"""Modeler unit tests: availability estimation per timeframe."""

import pytest

from repro.collector import MetricsStore
from repro.collector.base import NetworkView
from repro.core import Timeframe
from repro.core.modeler import Modeler, UNMEASURED_ACCURACY
from repro.net import TopologyBuilder
from repro.util import mbps


def two_host_topo():
    return (
        TopologyBuilder()
        .hosts(["a", "b"])
        .router("r")
        .link("a", "r", "100Mbps", "0.1ms")
        .link("r", "b", "100Mbps", "0.1ms")
        .build()
    )


def view_with_series(samples):
    """View where a->r carries the given (t, bits/s) samples."""
    topo = two_host_topo()
    metrics = MetricsStore()
    for t, value in samples:
        metrics.record("a--r", "a", t, value)
    return NetworkView(topology=topo, metrics=metrics)


def direction(view):
    link = view.topology.link("a--r")
    return link.direction("a", "r")


class TestUsedBandwidth:
    def test_static_is_zero(self):
        view = view_with_series([(float(t), mbps(50)) for t in range(10)])
        modeler = Modeler(view)
        used = modeler.used_bandwidth(direction(view), Timeframe.static())
        assert used.median == 0.0
        assert used.accuracy == 1.0

    def test_current_uses_latest(self):
        samples = [(float(t), mbps(10)) for t in range(9)] + [(9.0, mbps(70))]
        view = view_with_series(samples)
        modeler = Modeler(view)
        used = modeler.used_bandwidth(direction(view), Timeframe.current())
        assert used.median == pytest.approx(mbps(70))

    def test_history_quartiles(self):
        samples = [(float(t), mbps(v)) for t, v in enumerate([10, 20, 30, 40, 50])]
        view = view_with_series(samples)
        modeler = Modeler(view)
        used = modeler.used_bandwidth(direction(view), Timeframe.history(10.0))
        assert used.minimum == pytest.approx(mbps(10))
        assert used.maximum == pytest.approx(mbps(50))
        assert used.median == pytest.approx(mbps(30))

    def test_history_window_excludes_old_samples(self):
        samples = [(0.0, mbps(90))] + [(float(t), mbps(10)) for t in range(50, 60)]
        view = view_with_series(samples)
        modeler = Modeler(view)
        used = modeler.used_bandwidth(direction(view), Timeframe.history(15.0))
        assert used.maximum == pytest.approx(mbps(10))

    def test_future_prediction(self):
        samples = [(float(t), mbps(40)) for t in range(60)]
        view = view_with_series(samples)
        modeler = Modeler(view)
        used = modeler.used_bandwidth(
            direction(view), Timeframe.future(horizon=10.0, window=30.0)
        )
        assert used.median == pytest.approx(mbps(40), rel=1e-6)
        # Predictions carry reduced accuracy.
        history = modeler.used_bandwidth(direction(view), Timeframe.history(30.0))
        assert used.accuracy < history.accuracy

    def test_unmeasured_direction_assumed_idle(self):
        view = view_with_series([(1.0, mbps(50))])
        modeler = Modeler(view)
        reverse = view.topology.link("a--r").direction("r", "a")
        used = modeler.used_bandwidth(reverse, Timeframe.current())
        assert used.median == 0.0
        assert used.accuracy <= UNMEASURED_ACCURACY

    def test_available_is_complement(self):
        view = view_with_series([(float(t), mbps(30)) for t in range(10)])
        modeler = Modeler(view)
        available = modeler.available_bandwidth(direction(view), Timeframe.history(20.0))
        assert available.median == pytest.approx(mbps(70))

    def test_overload_clamps_to_zero(self):
        # Measurement glitches can exceed capacity; availability clamps.
        view = view_with_series([(float(t), mbps(140)) for t in range(5)])
        modeler = Modeler(view)
        available = modeler.available_bandwidth(direction(view), Timeframe.history(20.0))
        assert available.median == 0.0

    def test_modeler_now_is_newest_sample(self):
        view = view_with_series([(3.0, 1.0), (17.5, 2.0)])
        assert Modeler(view).now == 17.5

    def test_modeler_now_empty_metrics(self):
        view = NetworkView(topology=two_host_topo(), metrics=MetricsStore())
        assert Modeler(view).now == 0.0


class TestRemosViewRefresh:
    def test_remos_rebuilds_modeler_on_view_change(self):
        from repro.core import Remos

        class FakeCollector:
            """Duck-typed collector whose view object changes."""

            def __init__(self):
                self._views = [
                    view_with_series([(1.0, mbps(10))]),
                    view_with_series([(1.0, mbps(10)), (2.0, mbps(90))]),
                ]
                self.calls = 0

            def view(self):
                view = self._views[min(self.calls, 1)]
                self.calls += 1
                return view

        from repro.collector.base import Collector

        collector = FakeCollector()
        Collector.register(FakeCollector)
        remos = Remos(collector)
        first = remos.get_graph(["a", "b"], Timeframe.current())
        second = remos.get_graph(["a", "b"], Timeframe.current())
        edge = next(e for e in second.edges if "a" in (e.a, e.b))
        assert edge.available_from("a").median == pytest.approx(mbps(10))
